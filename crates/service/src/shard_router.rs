//! The scatter-gather shard router: per-shard snapshot stores, a fan-out
//! worker pool, and the two-round distributed greedy over them.
//!
//! [`ShardRouter`] is the sharded sibling of
//! [`NetClusService`](crate::executor::NetClusService). It owns one
//! [`SnapshotStore`] per shard of a
//! [`netclus::ShardedNetClusIndex`] (all
//! sharing the same `Arc`-held road network) and answers each query by
//!
//! 1. **scattering** one round-1 task per shard onto its worker pool —
//!    each worker pins that shard's snapshot, builds the τ-provider with
//!    its reusable scratch and runs the local arena-backed Inc-Greedy for
//!    `k` local candidates;
//! 2. **gathering** the candidate union and running the exact round-2
//!    greedy on the merged coverage view (see `netclus::shard` for the
//!    approximation contract).
//!
//! ## Epoch lockstep
//!
//! Updates are routed: a trajectory add is assigned a **global** id by the
//! router and shipped only to the shards it touches
//! ([`RoutedOp::AddTrajectoryAt`]), while every other shard publishes an
//! empty batch — so all shard stores advance epochs in lockstep and a
//! gather never mixes epochs. Queries hold a shared read guard against the
//! router's update lock for the duration of one fan-out; updates take the
//! write side, so a scatter observes either all-old or all-new shards,
//! never a torn mix (asserted at gather time).
//!
//! ## Round-1 caches (the warm path)
//!
//! Dashboard traffic repeats `(k, τ)` shapes, and rebuilding each shard's
//! [`ClusteredProvider`] per query is what
//! kept the router ~350× slower than the monolithic executor. Two caches,
//! both epoch-invalidated and shared by every router worker, close that
//! gap:
//!
//! * a per-shard **provider cache** keyed `(epoch, shard, instance,
//!   quantized τ)` with **single-flight** builds — concurrent misses on
//!   one key coalesce onto one builder ([`crate::provider_cache`]);
//! * a round-1 **candidate memo** keyed `(epoch, shard, quantized τ, ψ)`
//!   holding the largest-`k` [`ShardRoundOne`] seen: by the greedy prefix
//!   property any `k' ≤ k` repeat is answered by slicing — candidates
//!   *with their coverage rows*, so a memo hit skips the provider lookup
//!   entirely and round 2 needs no shard re-contact.
//!
//! Both caches key on the lockstep epoch and are purged on every epoch
//! advance, so a cached answer can never cross an update: the hot path is
//! bit-identical to the cold path (proptested in
//! `crates/service/tests/router_equivalence.rs`). Setting a capacity to 0
//! disables that cache (the cold reference configuration).
//!
//! ## Metrics
//!
//! [`ShardRouter::metrics_report`] returns the standard
//! [`MetricsReport`] with the scatter-gather section filled: per-shard
//! round-1 latency lanes, round-2 merge latency, fan-out counts, the
//! trajectory replication gauges, provider-cache and candidate-memo
//! counters (hits, misses, coalesced waits, evictions, invalidations)
//! and **hot/cold latency lanes** — a fan-out is *hot* when every shard
//! answered from a cache, *cold* when any shard built a provider.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use netclus::shard::{
    local_candidates, local_candidates_on, merge_candidates_timed, ShardRoundOne,
};
use netclus::{
    ClusteredProvider, NetClusShard, ProviderScratch, ReplicationStats, ShardedNetClusIndex,
    TopsQuery,
};
use netclus_roadnet::{NodeId, RegionPartition, RoadNetwork};
use netclus_trajectory::TrajId;

use crate::executor::{validate_query, SubmitError};
use crate::metrics::{LatencyHistogram, MetricsClock, MetricsReport, ShardLaneReport, ShardReport};
use crate::provider_cache::{
    quantize_tau, CacheOutcome, RoundKey, RoundOneCache, ShardProviderCache, ShardProviderKey,
};
use crate::snapshot::{RoutedOp, SnapshotStore, UpdateBatch, UpdateOp, UpdateReceipt};
use crate::trace::{LoadGauge, Round1Source, Stage, TraceConfig, TraceMeta, Tracer};

/// Router configuration.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouterConfig {
    /// Worker threads executing round-1 shard tasks; 0 (the default)
    /// means one lane per shard.
    pub workers: usize,
    /// Per-shard provider-cache capacity in built providers (shared by
    /// all workers, keyed per shard); **0 disables** the cache — every
    /// round-1 task rebuilds its provider, the cold reference path.
    pub provider_cache_capacity: usize,
    /// Round-1 candidate-memo capacity in memoized rounds; **0 disables**
    /// the memo.
    pub round_memo_capacity: usize,
    /// Threads used to build one shard provider on a cache miss. Router
    /// workers already parallelize across shards, so the default of 1
    /// avoids oversubscription.
    pub provider_build_threads: usize,
    /// Query-path tracing + tail-sampling configuration (on by default;
    /// see [`TraceConfig`]).
    pub trace: TraceConfig,
}

impl Default for ShardRouterConfig {
    fn default() -> Self {
        ShardRouterConfig {
            workers: 0,
            provider_cache_capacity: 32,
            round_memo_capacity: 128,
            provider_build_threads: 1,
            trace: TraceConfig::default(),
        }
    }
}

impl ShardRouterConfig {
    /// The cold reference configuration: both round-1 caches disabled, so
    /// every query takes the full rebuild path (what the equivalence
    /// proptests compare the cached router against).
    pub fn uncached() -> Self {
        ShardRouterConfig {
            provider_cache_capacity: 0,
            round_memo_capacity: 0,
            ..Default::default()
        }
    }
}

/// A scatter-gather answer: the merged round-2 solution plus per-shard
/// round-1 timings, all computed against one epoch across every shard.
#[derive(Clone, Debug)]
pub struct ShardedServiceAnswer {
    /// The (lockstep) epoch every shard snapshot was pinned at.
    pub epoch: u64,
    /// Selected sites, in round-2 selection order.
    pub sites: Vec<NodeId>,
    /// Round-2 utility under the estimated detours `d̂r`.
    pub utility: f64,
    /// Trajectories with positive utility in the merged view.
    pub covered: usize,
    /// Index instance that served the query.
    pub instance: usize,
    /// Size of the round-2 candidate union (≤ shards × k).
    pub candidates: usize,
    /// Round-1 wall-clock per shard, microseconds, in shard order.
    pub shard_micros: Vec<u64>,
    /// Round-2 (merge + solve) wall-clock, microseconds.
    pub merge_micros: u64,
    /// End-to-end scatter-gather wall-clock, microseconds.
    pub total_micros: u64,
}

/// One round-1 unit of work handed to the pool.
struct ShardTask {
    shard: u32,
    query: TopsQuery,
    /// `(shard, epoch, traj_id_bound, source, round)` — the bound rides
    /// along because shard bounds can differ (a shard that never received
    /// a trajectory keeps the shorter id space) and the merge must size
    /// its inversion to the largest; `source` reports where the round-1
    /// answer came from (memo, provider hit, coalesced wait, or build),
    /// which drives the hot/cold lane split and the trace span detail.
    reply: Sender<(u32, u64, usize, Round1Source, ShardRoundOne)>,
}

struct RouterQueue {
    tasks: VecDeque<ShardTask>,
    shutdown: bool,
}

/// Mutable update-side state, serialized by the update lock's write side.
struct UpdateState {
    /// Next global trajectory id to assign.
    next_id: u64,
    /// Live replication bookkeeping (kept in sync with routed updates).
    replication: ReplicationStats,
}

struct RouterInner {
    net: Arc<RoadNetwork>,
    partition: RegionPartition,
    stores: Vec<SnapshotStore>,
    /// Queries take `read`, updates take `write`: a fan-out observes every
    /// shard at one lockstep epoch.
    update_lock: RwLock<UpdateState>,
    queue: Mutex<RouterQueue>,
    queue_cv: Condvar,
    stopping: AtomicBool,
    clock: MetricsClock,
    /// Shared per-shard provider cache with single-flight builds; `None`
    /// when disabled (capacity 0).
    providers: Option<ShardProviderCache>,
    /// Round-1 candidate memo; `None` when disabled (capacity 0).
    rounds: Option<RoundOneCache>,
    /// Threads per provider build on a cache miss.
    build_threads: usize,
    /// Round-1 latency per shard lane.
    shard_latency: Vec<LatencyHistogram>,
    /// Round-1 tasks executed per shard lane.
    shard_tasks: Vec<AtomicU64>,
    /// Round-2 merge latency.
    merge_latency: LatencyHistogram,
    /// End-to-end latency of fan-outs where every shard answered from a
    /// cache (no provider build anywhere).
    hot_latency: LatencyHistogram,
    /// End-to-end latency of fan-outs where at least one shard built (or
    /// waited on) a provider.
    cold_latency: LatencyHistogram,
    /// Fan-out queries completed.
    fanout_queries: AtomicU64,
    /// Query-path tracer: per-stage histograms + tail-sampled slow log.
    tracer: Tracer,
    /// Per-shard load/heat gauges (qps EWMA, cache heat, cold fraction).
    gauges: Vec<LoadGauge>,
}

/// The sharded in-process query server. See the module docs.
pub struct ShardRouter {
    inner: Arc<RouterInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ShardRouter {
    /// Consumes a built [`ShardedNetClusIndex`], publishes each shard as
    /// epoch 0 of its own snapshot store and starts the worker pool.
    pub fn start(
        net: Arc<RoadNetwork>,
        sharded: ShardedNetClusIndex,
        cfg: ShardRouterConfig,
    ) -> Self {
        let next_id = sharded.traj_id_bound() as u64;
        let (partition, shards, replication) = sharded.into_parts();
        let stores: Vec<SnapshotStore> = shards
            .into_iter()
            .map(|NetClusShard { trajs, index, .. }| {
                SnapshotStore::with_shared_net(Arc::clone(&net), trajs, index)
            })
            .collect();
        let lanes = stores.len();
        let workers = if cfg.workers == 0 { lanes } else { cfg.workers }.max(1);
        let inner = Arc::new(RouterInner {
            net,
            partition,
            stores,
            update_lock: RwLock::new(UpdateState {
                next_id,
                replication,
            }),
            queue: Mutex::new(RouterQueue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            stopping: AtomicBool::new(false),
            clock: MetricsClock::default(),
            providers: (cfg.provider_cache_capacity > 0)
                .then(|| ShardProviderCache::new(cfg.provider_cache_capacity)),
            rounds: (cfg.round_memo_capacity > 0)
                .then(|| RoundOneCache::new(cfg.round_memo_capacity)),
            build_threads: cfg.provider_build_threads.max(1),
            shard_latency: (0..lanes).map(|_| LatencyHistogram::default()).collect(),
            shard_tasks: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            merge_latency: LatencyHistogram::default(),
            hot_latency: LatencyHistogram::default(),
            cold_latency: LatencyHistogram::default(),
            fanout_queries: AtomicU64::new(0),
            tracer: Tracer::new(cfg.trace),
            gauges: (0..lanes).map(|_| LoadGauge::default()).collect(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("netclus-shard-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardRouter {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Number of shards served.
    pub fn shard_count(&self) -> usize {
        self.inner.stores.len()
    }

    /// The (lockstep) epoch currently published by every shard store.
    pub fn epoch(&self) -> u64 {
        self.inner.stores[0].epoch()
    }

    /// The node partition queries are routed by.
    pub fn partition(&self) -> &RegionPartition {
        &self.inner.partition
    }

    /// Answers one TOPS query with the two-round scatter-gather protocol,
    /// blocking until the merged answer is ready.
    pub fn query_blocking(
        &self,
        mut query: TopsQuery,
    ) -> Result<Arc<ShardedServiceAnswer>, SubmitError> {
        query.tau = quantize_tau(query.tau);
        validate_query(&query)?;
        let inner = &*self.inner;
        if inner.stopping.load(Ordering::Acquire) {
            inner.clock.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        inner
            .clock
            .metrics
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        // Span recorder: stack-held, zero-allocation; `finish` discards it
        // unless the query lands in the sampled tail.
        let mut spans = inner.tracer.begin();

        // Shared read guard: updates (write side) cannot interleave with
        // the fan-out, so every shard is pinned at one lockstep epoch.
        let _fanout = inner.update_lock.read().expect("update lock poisoned");
        let lanes = inner.stores.len();
        let (tx, rx) = channel();
        {
            let mut queue = inner.queue.lock().expect("router queue poisoned");
            if queue.shutdown {
                inner.clock.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::ShuttingDown);
            }
            for shard in 0..lanes as u32 {
                queue.tasks.push_back(ShardTask {
                    shard,
                    query,
                    reply: tx.clone(),
                });
                inner.clock.metrics.queue_enter();
            }
        }
        inner.queue_cv.notify_all();
        drop(tx);
        let mut cursor = spans.stage(Stage::Admission, spans.started());
        let round1_off = cursor
            .saturating_duration_since(spans.started())
            .as_micros() as u64;

        let mut rounds: Vec<Option<(u64, usize, Round1Source, ShardRoundOne)>> =
            (0..lanes).map(|_| None).collect();
        for _ in 0..lanes {
            let Ok((shard, epoch, bound, source, round)) = rx.recv() else {
                return Err(SubmitError::ShuttingDown);
            };
            rounds[shard as usize] = Some((epoch, bound, source, round));
        }
        cursor = spans.stage(Stage::Round1, cursor);
        let merge_start = Instant::now();
        let mut epoch = 0u64;
        let mut bound = 0usize;
        let mut all_hot = true;
        let mut shard_micros = Vec::with_capacity(lanes);
        let mut candidates = Vec::new();
        let mut instance = 0usize;
        for (shard, slot) in rounds.into_iter().enumerate() {
            let (e, b, source, round) = slot.expect("every shard replied");
            if shard == 0 {
                epoch = e;
                instance = round.instance;
            } else {
                assert_eq!(e, epoch, "scatter mixed epochs {e} vs {epoch}");
            }
            bound = bound.max(b);
            all_hot &= source.is_hot();
            shard_micros.push(round.elapsed.as_micros() as u64);
            // Child span: this shard's round-1 greedy solve (zero for memo
            // prefix hits — no solve ran), tagged with the answer source.
            spans.child(
                Stage::Solve,
                shard as i32,
                source.name(),
                round1_off,
                round.solve_us,
            );
            candidates.extend(round.candidates);
        }
        let (solution, candidate_count, merge_timing) =
            merge_candidates_timed(candidates, &query, bound);
        let merge_off = cursor
            .saturating_duration_since(spans.started())
            .as_micros() as u64;
        cursor = spans.stage(Stage::Merge, cursor);
        // Child span: the exact round-2 greedy inside the merge (the rest
        // of the merge span is candidate union + coverage-view build).
        spans.child(
            Stage::Solve,
            -1,
            "merge",
            merge_off + merge_timing.build_us,
            merge_timing.solve_us,
        );
        inner.merge_latency.record(merge_start.elapsed());
        inner.fanout_queries.fetch_add(1, Ordering::Relaxed);
        inner
            .clock
            .metrics
            .completed
            .fetch_add(1, Ordering::Relaxed);
        let total = start.elapsed();
        inner.clock.metrics.latency.record(total);
        // Hot/cold lanes: a fan-out that never built a provider is warm
        // traffic; one build anywhere makes the whole gather cold.
        if all_hot {
            inner.hot_latency.record(total);
        } else {
            inner.cold_latency.record(total);
        }
        spans.stage(Stage::Reply, cursor);
        inner.tracer.finish(
            &spans,
            TraceMeta {
                epoch,
                k: query.k,
                tau: query.tau,
                hot: all_hot,
            },
        );

        Ok(Arc::new(ShardedServiceAnswer {
            epoch,
            covered: solution.covered,
            utility: solution.utility,
            sites: solution.sites,
            instance,
            candidates: candidate_count,
            shard_micros,
            merge_micros: merge_start.elapsed().as_micros() as u64,
            total_micros: start.elapsed().as_micros() as u64,
        }))
    }

    /// Applies an update batch: trajectory adds receive router-assigned
    /// global ids and are shipped to exactly the shards they touch; every
    /// shard store publishes the next epoch (possibly from an empty batch)
    /// so epochs stay in lockstep. Returns the aggregate receipt under the
    /// new epoch.
    pub fn apply_updates(&self, batch: UpdateBatch) -> UpdateReceipt {
        let inner = &*self.inner;
        let t = Instant::now();
        let mut state = inner.update_lock.write().expect("update lock poisoned");
        let lanes = inner.stores.len();
        let snaps: Vec<_> = inner.stores.iter().map(SnapshotStore::load).collect();
        let mut routed: Vec<Vec<RoutedOp>> = (0..lanes).map(|_| Vec::new()).collect();
        let mut applied = 0usize;
        let mut rejected = 0usize;
        // Within-batch overlay so sequenced ops (remove site, re-add it)
        // validate against the state earlier ops in this batch produced,
        // matching the monolithic store's sequential semantics.
        let mut site_overlay: std::collections::HashMap<u32, bool> =
            std::collections::HashMap::new();
        let mut removed_trajs: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut added_owners: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for op in batch {
            match op {
                UpdateOp::AddTrajectory(traj) => {
                    if traj
                        .nodes()
                        .iter()
                        .any(|v| v.index() >= inner.net.node_count())
                    {
                        rejected += 1;
                        continue;
                    }
                    let owners = netclus::shards_of_trajectory(&inner.partition, &traj);
                    let id = TrajId(state.next_id as u32);
                    state.next_id += 1;
                    state.replication.trajectories += 1;
                    state.replication.replicas += owners.len();
                    if owners.len() >= 2 {
                        state.replication.boundary += 1;
                    }
                    for &s in &owners {
                        state.replication.per_shard[s as usize] += 1;
                        routed[s as usize].push(RoutedOp::AddTrajectoryAt(id, traj.clone()));
                    }
                    added_owners.insert(id.0, owners);
                    applied += 1;
                }
                UpdateOp::RemoveTrajectory(id) => {
                    // A trajectory added earlier in this same batch is
                    // removable — per-shard ops stay sequenced, matching
                    // the monolithic store's semantics.
                    let owners: Vec<u32> = match added_owners.get(&id.0) {
                        Some(owners) => owners.clone(),
                        None => (0..lanes as u32)
                            .filter(|&s| snaps[s as usize].trajs().get(id).is_some())
                            .collect(),
                    };
                    if owners.is_empty() || !removed_trajs.insert(id.0) {
                        rejected += 1;
                        continue;
                    }
                    state.replication.trajectories -= 1;
                    state.replication.replicas -= owners.len();
                    if owners.len() >= 2 {
                        state.replication.boundary -= 1;
                    }
                    for &s in &owners {
                        state.replication.per_shard[s as usize] -= 1;
                        routed[s as usize].push(RoutedOp::RemoveTrajectory(id));
                    }
                    applied += 1;
                }
                UpdateOp::AddSite(v) => {
                    if v.index() >= inner.net.node_count() {
                        rejected += 1;
                        continue;
                    }
                    let s = inner.partition.shard_of(v) as usize;
                    let is_site = site_overlay
                        .get(&v.0)
                        .copied()
                        .unwrap_or_else(|| snaps[s].index().is_site(v));
                    if is_site {
                        rejected += 1;
                    } else {
                        site_overlay.insert(v.0, true);
                        routed[s].push(RoutedOp::AddSite(v));
                        applied += 1;
                    }
                }
                UpdateOp::RemoveSite(v) => {
                    if v.index() >= inner.net.node_count() {
                        rejected += 1;
                        continue;
                    }
                    let s = inner.partition.shard_of(v) as usize;
                    let is_site = site_overlay
                        .get(&v.0)
                        .copied()
                        .unwrap_or_else(|| snaps[s].index().is_site(v));
                    if is_site {
                        site_overlay.insert(v.0, false);
                        routed[s].push(RoutedOp::RemoveSite(v));
                        applied += 1;
                    } else {
                        rejected += 1;
                    }
                }
            }
        }
        let mut epoch = 0;
        for (store, ops) in inner.stores.iter().zip(&routed) {
            epoch = store.apply_routed(ops).epoch;
        }
        // The new lockstep epoch makes every older cache key unreachable;
        // purge eagerly so stale providers/rounds release their memory.
        if let Some(providers) = &inner.providers {
            providers.invalidate_before(epoch);
        }
        if let Some(rounds) = &inner.rounds {
            rounds.invalidate_before(epoch);
        }
        let metrics = &inner.clock.metrics;
        metrics.update_latency.record(t.elapsed());
        metrics.epoch_advances.fetch_add(1, Ordering::Relaxed);
        metrics
            .updates_applied
            .fetch_add(applied as u64, Ordering::Relaxed);
        UpdateReceipt {
            epoch,
            applied,
            rejected,
        }
    }

    /// Pins shard `s`'s current snapshot (out-of-band inspection).
    pub fn shard_snapshot(&self, s: usize) -> Arc<crate::snapshot::Snapshot> {
        self.inner.stores[s].load()
    }

    /// A point-in-time report with the scatter-gather section filled.
    pub fn metrics_report(&self) -> MetricsReport {
        let inner = &*self.inner;
        let state = inner.update_lock.read().expect("update lock poisoned");
        let replication = state.replication.clone();
        drop(state);
        let provider_stats = inner
            .providers
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default();
        let round_stats = inner.rounds.as_ref().map(|r| r.stats()).unwrap_or_default();
        let mut report = inner.clock.metrics.report(
            inner.clock.uptime(),
            self.epoch(),
            self.workers.lock().map(|w| w.len()).unwrap_or(0).max(1),
            Default::default(),
            // The router's shared provider cache reports through the
            // standard provider slot so `provider_hit_rate()` and the
            // provider_* JSON fields work for router reports too.
            provider_stats,
        );
        report.shards = Some(ShardReport {
            lanes: inner
                .shard_latency
                .iter()
                .zip(&inner.shard_tasks)
                .enumerate()
                .map(|(s, (hist, tasks))| {
                    let gauge = inner.gauges[s].snapshot();
                    ShardLaneReport {
                        shard: s as u32,
                        queries: tasks.load(Ordering::Relaxed),
                        latency: hist.summary(),
                        replicated_trajs: replication.per_shard.get(s).copied().unwrap_or(0) as u64,
                        qps_ewma: gauge.qps_ewma,
                        cache_heat: gauge.cache_heat,
                        cold_fraction: gauge.cold_fraction,
                    }
                })
                .collect(),
            merge: inner.merge_latency.summary(),
            fanout_queries: inner.fanout_queries.load(Ordering::Relaxed),
            providers: provider_stats,
            rounds: round_stats,
            hot: inner.hot_latency.summary(),
            cold: inner.cold_latency.summary(),
            trajectories: replication.trajectories as u64,
            boundary_trajs: replication.boundary as u64,
            replicas: replication.replicas as u64,
        });
        report.process.arena_resident_bytes = Some(
            inner
                .stores
                .iter()
                .map(|s| s.load().index().heap_size_bytes() as u64)
                .sum(),
        );
        report
    }

    /// The full metrics surface flattened into flight-recorder samples
    /// (metrics report incl. per-shard lanes + stage/trace counters) —
    /// plug this into [`crate::flight::FlightSampler::start`].
    pub fn flight_sample(&self) -> Vec<(String, f64)> {
        let mut sample = crate::flight::flatten_json(&self.metrics_report().to_json_line());
        sample.extend(crate::flight::flatten_json(
            &self.inner.tracer.stats_json_line(),
        ));
        sample
    }

    /// The query-path tracer (per-stage histograms + slow-query log).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Stops the workers and joins them. Idempotent; also run by `Drop`.
    pub fn shutdown(&self) {
        self.inner.stopping.store(true, Ordering::Release);
        {
            let mut queue = self.inner.queue.lock().expect("router queue poisoned");
            queue.shutdown = true;
        }
        self.inner.queue_cv.notify_all();
        let mut workers = self.workers.lock().expect("workers lock poisoned");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Worker loop: pop a shard task, pin that shard's snapshot, run round 1.
/// Each worker owns one [`ProviderScratch`] reused across tasks.
///
/// Round-1 resolution order, cheapest first:
///
/// 1. **candidate memo** — `(epoch, shard, τ, ψ)` with a memoized `k ≥`
///    the request: answer by prefix slicing, no provider touched;
/// 2. **provider cache** — single-flight `get_or_build` per
///    `(epoch, shard, instance, τ)`, then the lazy local greedy on it;
/// 3. **cold build** — caches disabled: the original rebuild-per-query
///    path.
///
/// A task is *hot* when it performed no provider build (paths 1, and 2 on
/// a hit; a coalesced wait rides a build, so it counts cold).
fn worker_loop(inner: &RouterInner) {
    let mut scratch = ProviderScratch::default();
    loop {
        let task = {
            let mut queue = inner.queue.lock().expect("router queue poisoned");
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    return;
                }
                queue = inner.queue_cv.wait(queue).expect("router queue poisoned");
            }
        };
        inner.clock.metrics.queue_exit(1);
        let snap = inner.stores[task.shard as usize].load();
        let epoch = snap.epoch();
        let bound = snap.trajs().id_bound();
        let query = &task.query;
        let t = Instant::now();
        let memo_key = inner
            .rounds
            .as_ref()
            .map(|_| RoundKey::new(epoch, task.shard, query.tau, &query.preference));
        let memoized = match (&inner.rounds, &memo_key) {
            (Some(rounds), Some(key)) => rounds.lookup(key, query.k),
            _ => None,
        };
        let (round, source) = match memoized {
            Some(round) => (round, Round1Source::Memo),
            None => {
                let (round, source) = match &inner.providers {
                    Some(providers) => {
                        let p = snap.index().instance_for(query.tau);
                        let key = ShardProviderKey::new(epoch, task.shard, p, query.tau);
                        let (provider, outcome) = providers.get_or_build(key, || {
                            let build_start = Instant::now();
                            let built = ClusteredProvider::build_with(
                                snap.index().instance(p),
                                query.tau,
                                bound,
                                inner.build_threads,
                                &mut scratch,
                            );
                            inner
                                .clock
                                .metrics
                                .provider_build
                                .record(build_start.elapsed());
                            built
                        });
                        let source = match outcome {
                            CacheOutcome::Hit => Round1Source::ProviderHit,
                            CacheOutcome::Coalesced => Round1Source::Coalesced,
                            CacheOutcome::Miss => Round1Source::Built,
                        };
                        (local_candidates_on(&provider, p, query), source)
                    }
                    None => (
                        local_candidates(snap.index(), query, bound, &mut scratch),
                        Round1Source::Cold,
                    ),
                };
                if let (Some(rounds), Some(key)) = (&inner.rounds, memo_key) {
                    rounds.insert(key, round.clone());
                }
                (round, source)
            }
        };
        inner.shard_latency[task.shard as usize].record(t.elapsed());
        inner.shard_tasks[task.shard as usize].fetch_add(1, Ordering::Relaxed);
        inner.gauges[task.shard as usize].observe(source);
        // A gather that vanished (client gone) is fine to ignore.
        let _ = task.reply.send((task.shard, epoch, bound, source, round));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclus::prelude::*;
    use netclus_roadnet::{Point, RoadNetworkBuilder};
    use netclus_trajectory::{Trajectory, TrajectorySet};

    /// Two far-separated 12-node lines; trajectories confined per region.
    fn fixture() -> (
        Arc<RoadNetwork>,
        TrajectorySet,
        Vec<NodeId>,
        RegionPartition,
    ) {
        let mut b = RoadNetworkBuilder::new();
        for region in 0..2 {
            let x0 = region as f64 * 1_000_000.0;
            let base = b.node_count() as u32;
            for i in 0..12 {
                b.add_node(Point::new(x0 + i as f64 * 100.0, 0.0));
            }
            for i in 0..11u32 {
                b.add_two_way(NodeId(base + i), NodeId(base + i + 1), 100.0)
                    .unwrap();
            }
        }
        let net = Arc::new(b.build().unwrap());
        let mut trajs = TrajectorySet::for_network(&net);
        for s in 0..5u32 {
            trajs.add(Trajectory::new((s..s + 6).map(NodeId).collect()));
        }
        for s in 0..3u32 {
            trajs.add(Trajectory::new((12 + s..12 + s + 5).map(NodeId).collect()));
        }
        let sites: Vec<NodeId> = net.nodes().collect();
        let partition = RegionPartition::build(&net, 2);
        (net, trajs, sites, partition)
    }

    fn router(workers: usize) -> (ShardRouter, Arc<RoadNetwork>, TrajectorySet, Vec<NodeId>) {
        let (net, trajs, sites, partition) = fixture();
        let cfg = NetClusConfig {
            tau_min: 200.0,
            tau_max: 3_000.0,
            threads: 1,
            ..Default::default()
        };
        let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, cfg);
        let router = ShardRouter::start(
            Arc::clone(&net),
            sharded,
            ShardRouterConfig {
                workers,
                ..Default::default()
            },
        );
        (router, net, trajs, sites)
    }

    #[test]
    fn scatter_gather_matches_direct_sharded_query() {
        let (router, net, trajs, sites) = router(2);
        let cfg = NetClusConfig {
            tau_min: 200.0,
            tau_max: 3_000.0,
            threads: 1,
            ..Default::default()
        };
        let partition = RegionPartition::build(&net, 2);
        let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, cfg);
        for (k, tau) in [(1, 400.0), (2, 800.0), (3, 1_200.0)] {
            let q = TopsQuery::binary(k, tau);
            let served = router.query_blocking(q).unwrap();
            let direct = sharded.query(&q);
            assert_eq!(served.sites, direct.solution.sites, "k={k} τ={tau}");
            assert_eq!(served.epoch, 0);
            assert_eq!(served.shard_micros.len(), 2);
        }
        let report = router.metrics_report();
        assert_eq!(report.completed, 3);
        let shards = report.shards.expect("router report carries shards");
        assert_eq!(shards.fanout_queries, 3);
        assert_eq!(shards.lanes.len(), 2);
        assert_eq!(shards.lanes[0].queries, 3);
        assert_eq!(shards.lanes[1].queries, 3);
        assert_eq!(shards.trajectories, 8);
        router.shutdown();
    }

    #[test]
    fn routed_updates_keep_epochs_lockstep_and_ids_global() {
        let (router, ..) = router(2);
        assert_eq!(router.epoch(), 0);
        // A trajectory in region 1 only: shard 1 gets the op, shard 0 an
        // empty batch; both advance.
        let receipt = router.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
            (14..19).map(NodeId).collect(),
        ))]);
        assert_eq!(receipt.epoch, 1);
        assert_eq!((receipt.applied, receipt.rejected), (1, 0));
        assert_eq!(router.shard_snapshot(0).epoch(), 1);
        assert_eq!(router.shard_snapshot(1).epoch(), 1);
        // Global id 8 was assigned; shard 0 must have a tombstone-aligned
        // bound even though it never saw the trajectory.
        assert_eq!(router.shard_snapshot(1).trajs().id_bound(), 9);
        assert!(router.shard_snapshot(1).trajs().get(TrajId(8)).is_some());
        assert!(router.shard_snapshot(0).trajs().get(TrajId(8)).is_none());
        // The next add lands on id 9 in *both* shards' id space.
        let receipt = router.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
            (2..6).map(NodeId).collect(),
        ))]);
        assert_eq!(receipt.epoch, 2);
        assert!(router.shard_snapshot(0).trajs().get(TrajId(9)).is_some());
        assert_eq!(router.shard_snapshot(0).trajs().id_bound(), 10);
        // Queries see the new demand.
        let q = TopsQuery::binary(1, 600.0);
        let answer = router.query_blocking(q).unwrap();
        assert_eq!(answer.epoch, 2);
        router.shutdown();
    }

    #[test]
    fn update_replication_counters_track_adds_and_removes() {
        let (router, ..) = router(1);
        let before = router.metrics_report().shards.unwrap();
        assert_eq!(before.trajectories, 8);
        assert_eq!(before.boundary_trajs, 0);
        router.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
            (0..4).map(NodeId).collect(),
        ))]);
        let after = router.metrics_report().shards.unwrap();
        assert_eq!(after.trajectories, 9);
        assert_eq!(after.replicas, 9);
        router.apply_updates(vec![UpdateOp::RemoveTrajectory(TrajId(8))]);
        let removed = router.metrics_report().shards.unwrap();
        assert_eq!(removed.trajectories, 8);
        // Site ops route to the owning shard; a duplicate add is rejected.
        let r = router.apply_updates(vec![
            UpdateOp::RemoveSite(NodeId(3)),
            UpdateOp::AddSite(NodeId(3)),
            UpdateOp::AddSite(NodeId(4)),
        ]);
        assert_eq!((r.applied, r.rejected), (2, 1));
        router.shutdown();
    }

    #[test]
    fn in_batch_add_then_remove_matches_sequential_semantics() {
        let (router, ..) = router(1);
        // Initial corpus bound is 8, so the add receives global id 8; the
        // remove later in the same batch must see it, like the monolithic
        // store's sequential apply would.
        let r = router.apply_updates(vec![
            UpdateOp::AddTrajectory(Trajectory::new((0..4).map(NodeId).collect())),
            UpdateOp::RemoveTrajectory(TrajId(8)),
            UpdateOp::RemoveTrajectory(TrajId(8)), // double remove: no-op
        ]);
        assert_eq!((r.applied, r.rejected), (2, 1));
        assert!(router.shard_snapshot(0).trajs().get(TrajId(8)).is_none());
        let rep = router.metrics_report().shards.unwrap();
        assert_eq!(rep.trajectories, 8, "replication gauge must unwind");
        assert_eq!(rep.replicas, 8);
        router.shutdown();
    }

    #[test]
    fn warm_queries_hit_caches_and_fill_the_hot_lane() {
        let (router, net, trajs, sites) = router(2);
        let cold = {
            let cfg = NetClusConfig {
                tau_min: 200.0,
                tau_max: 3_000.0,
                threads: 1,
                ..Default::default()
            };
            let partition = RegionPartition::build(&net, 2);
            let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, cfg);
            ShardRouter::start(Arc::clone(&net), sharded, ShardRouterConfig::uncached())
        };
        // Query 1 (k=3): cold — both shards build providers.
        // Query 2 (k=3, same τ): memo hit on both shards.
        // Query 3 (k=2, same τ): prefix hit (k' < memoized k).
        // Query 4 (k=5, same τ): memo miss, provider-cache hit, upgrade.
        for k in [3usize, 3, 2, 5] {
            let q = TopsQuery::binary(k, 800.0);
            let warm = router.query_blocking(q).unwrap();
            let reference = cold.query_blocking(q).unwrap();
            assert_eq!(warm.sites, reference.sites, "k={k}");
            assert_eq!(warm.utility.to_bits(), reference.utility.to_bits());
        }
        let report = router.metrics_report();
        let shards = report.shards.clone().expect("shard section");
        assert_eq!(shards.providers.misses, 2, "one build per shard, once");
        assert_eq!(shards.providers.hits, 2, "k=5 re-ran on cached providers");
        assert_eq!(shards.rounds.misses, 4, "{:?}", shards.rounds);
        assert_eq!(shards.rounds.hits, 4, "{:?}", shards.rounds);
        assert_eq!(shards.hot.count, 3, "three warm fan-outs");
        assert_eq!(shards.cold.count, 1, "one cold fan-out");
        assert!(report.provider_hit_rate() > 0.0);
        // The cold reference router never touched a cache.
        let creport = cold.metrics_report();
        let cshards = creport.shards.expect("shard section");
        assert_eq!(cshards.providers.hits + cshards.providers.misses, 0);
        assert_eq!(cshards.hot.count, 0);
        assert_eq!(cshards.cold.count, 4);
        router.shutdown();
        cold.shutdown();
    }

    #[test]
    fn epoch_advance_invalidates_router_caches() {
        let (router, ..) = router(1);
        let q = TopsQuery::binary(2, 700.0);
        router.query_blocking(q).unwrap();
        router.query_blocking(q).unwrap();
        let warm = router.metrics_report().shards.unwrap();
        assert!(warm.providers.entries > 0);
        assert!(warm.rounds.entries > 0);
        assert_eq!(warm.rounds.hits, 2, "one memo hit per shard");
        // An update advances the lockstep epoch and purges both caches.
        router.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
            (0..4).map(NodeId).collect(),
        ))]);
        let purged = router.metrics_report().shards.unwrap();
        assert_eq!(purged.providers.entries, 0, "stale provider survived");
        assert_eq!(purged.rounds.entries, 0, "stale round survived");
        assert!(purged.providers.invalidated > 0);
        assert!(purged.rounds.invalidated > 0);
        // The next query rebuilds against the new epoch (a cold fan-out).
        let fresh = router.query_blocking(q).unwrap();
        assert_eq!(fresh.epoch, 1);
        let after = router.metrics_report().shards.unwrap();
        assert_eq!(after.cold.count, 2);
        router.shutdown();
    }

    #[test]
    fn invalid_queries_fail_fast_and_shutdown_is_terminal() {
        let (router, ..) = router(1);
        assert!(matches!(
            router.query_blocking(TopsQuery::binary(0, 500.0)),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            router.query_blocking(TopsQuery::binary(1, -4.0)),
            Err(SubmitError::Invalid(_))
        ));
        router.shutdown();
        router.shutdown();
        assert!(matches!(
            router.query_blocking(TopsQuery::binary(1, 500.0)),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn concurrent_queries_and_updates_never_tear() {
        let (router, ..) = router(3);
        let router = Arc::new(router);
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let r = Arc::clone(&router);
            let s = Arc::clone(&stop);
            scope.spawn(move || {
                for i in 0..20 {
                    r.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
                        ((i % 6)..(i % 6) + 4).map(NodeId).collect(),
                    ))]);
                }
                s.store(true, Ordering::Release);
            });
            for _ in 0..2 {
                let r = Arc::clone(&router);
                let s = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut n = 0u32;
                    while !s.load(Ordering::Acquire) || n == 0 {
                        let a = r.query_blocking(TopsQuery::binary(2, 700.0)).unwrap();
                        // The gather asserts lockstep internally; the
                        // answer must also be self-consistent.
                        assert!(a.epoch <= 20);
                        n += 1;
                    }
                });
            }
        });
        assert_eq!(router.epoch(), 20);
        router.shutdown();
    }
}
