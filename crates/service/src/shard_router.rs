//! The scatter-gather shard router: per-shard transports, a fan-out
//! worker pool, and the two-round distributed greedy over them.
//!
//! [`ShardRouter`] is the sharded sibling of
//! [`NetClusService`](crate::executor::NetClusService). It owns one
//! [`ShardTransport`] per shard of a
//! [`netclus::ShardedNetClusIndex`] (all
//! sharing the same `Arc`-held road network) and answers each query by
//!
//! 1. **scattering** one round-1 task per shard onto its worker pool —
//!    each worker pins that shard's snapshot, builds the τ-provider with
//!    its reusable scratch and runs the local arena-backed Inc-Greedy for
//!    `k` local candidates;
//! 2. **gathering** the candidate union and running the exact round-2
//!    greedy on the merged coverage view (see `netclus::shard` for the
//!    approximation contract).
//!
//! ## Transports
//!
//! Where a shard's data lives is abstracted behind [`ShardTransport`]:
//!
//! * [`InProcessShard`] — the shard's [`SnapshotStore`] lives in the
//!   router process; round 1 runs on the router's worker threads against
//!   the router-shared caches (bit-identical to the pre-transport
//!   router). Built by [`ShardRouter::start`].
//! * [`RemoteShard`] — the shard is a `netclus-shardd` process reached
//!   over the framed TCP protocol ([`crate::shard_proto`]): one
//!   persistent connection per shard with reconnect-and-backoff, a
//!   versioned hello handshake, and per-RPC timeouts clamped to the
//!   query deadline. Built by [`ShardRouter::connect`]. Every
//!   socket-level failure — connect refusal, read timeout, CRC mismatch,
//!   version skew, mid-frame disconnect — maps onto the same
//!   [`ShardFailure`] taxonomy the in-process path uses, so breakers,
//!   deadline budgets, degraded merges and the stale fallback work
//!   unchanged over TCP.
//!
//! ## Epoch lockstep
//!
//! Updates are routed: a trajectory add is assigned a **global** id by the
//! router and shipped only to the shards it touches
//! ([`RoutedOp::AddTrajectoryAt`]), while every other shard publishes an
//! empty batch — so all shard stores advance epochs in lockstep and a
//! gather never mixes epochs. Queries hold a shared read guard against the
//! router's update lock for the duration of one fan-out; updates take the
//! write side, so a scatter observes either all-old or all-new shards,
//! never a torn mix. A shard that answers at an epoch behind the
//! router's lockstep epoch — possible only for a remote shard that
//! missed an apply — is demoted to [`ShardFailure::EpochSkew`] at gather
//! time and the answer degrades with a sound utility bound instead of
//! tearing.
//!
//! ## Round-1 caches (the warm path)
//!
//! Dashboard traffic repeats `(k, τ)` shapes, and rebuilding each shard's
//! [`ClusteredProvider`] per query is what
//! kept the router ~350× slower than the monolithic executor. Two caches,
//! both epoch-invalidated and shared by every router worker, close that
//! gap:
//!
//! * a per-shard **provider cache** keyed `(epoch, shard, instance,
//!   quantized τ)` with **single-flight** builds — concurrent misses on
//!   one key coalesce onto one builder ([`crate::provider_cache`]);
//! * a round-1 **candidate memo** keyed `(epoch, shard, quantized τ, ψ)`
//!   holding the largest-`k` [`ShardRoundOne`] seen: by the greedy prefix
//!   property any `k' ≤ k` repeat is answered by slicing — candidates
//!   *with their coverage rows*, so a memo hit skips the provider lookup
//!   entirely and round 2 needs no shard re-contact.
//!
//! Both caches key on the lockstep epoch and are purged on every epoch
//! advance, so a cached answer can never cross an update: the hot path is
//! bit-identical to the cold path (proptested in
//! `crates/service/tests/router_equivalence.rs`). Setting a capacity to 0
//! disables that cache (the cold reference configuration).
//!
//! ## Metrics
//!
//! [`ShardRouter::metrics_report`] returns the standard
//! [`MetricsReport`] with the scatter-gather section filled: per-shard
//! round-1 latency lanes, round-2 merge latency, fan-out counts, the
//! trajectory replication gauges, provider-cache and candidate-memo
//! counters (hits, misses, coalesced waits, evictions, invalidations)
//! and **hot/cold latency lanes** — a fan-out is *hot* when every shard
//! answered from a cache, *cold* when any shard built a provider.
//!
//! ## Fault tolerance
//!
//! The fan-out survives a slow, failing, or crashed shard
//! (see [`crate::fault`] for the primitives):
//!
//! * **Deadlines** — [`QueryOptions::deadline`] budgets the fan-out:
//!   round 1 gets [`ROUND1_BUDGET_FRACTION`] of it, round 2 the
//!   remainder; a blown budget is a typed
//!   [`QueryError::DeadlineExceeded`], never an unbounded wait.
//! * **Circuit breakers** — one [`CircuitBreaker`] per shard: repeated
//!   failures open it, open shards are skipped at scatter time, and a
//!   half-open probe closes it once the shard recovers.
//! * **Degraded answers** — when some-but-not-all shards fail, round 2
//!   merges the surviving candidate sets; the answer is marked
//!   [`degraded`](ShardedServiceAnswer::degraded), lists
//!   [`shards_missing`](ShardedServiceAnswer::shards_missing) and
//!   carries a conservative
//!   [`utility_bound`](ShardedServiceAnswer::utility_bound) (see
//!   [`netclus::shard::degraded_utility_bound`]). A fully-failed fan-out
//!   falls back to the last full answer for the same `(k, τ, ψ)` served
//!   with a [`stale`](ShardedServiceAnswer::stale) marker, before
//!   erroring with [`QueryError::Unavailable`].
//! * **Supervision** — a panicked worker converts its in-flight task
//!   into a typed [`ShardFailure::Panicked`] reply (no hung gather) and
//!   the pool respawns the worker; panic/respawn counts land in the
//!   [`FaultReport`] section of the metrics, alongside every other
//!   fault counter, so flight-recorder SLO rules can fire on them.
//! * **Chaos hook** — [`ShardRouter::set_fault_plan`] installs a seeded
//!   deterministic [`FaultPlan`] consulted per round-1 task (one relaxed
//!   atomic load when disabled), the query-path sibling of the ingest
//!   publisher stall.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use netclus::shard::{
    local_candidates, local_candidates_on, merge_candidates_subset, merge_candidates_timed,
    ShardRoundOne,
};
use netclus::{
    ClusteredProvider, NetClusIndex, NetClusShard, ProviderScratch, ReplicationStats,
    ShardedNetClusIndex, TopsQuery,
};
use netclus_roadnet::{NodeId, RegionPartition, RoadNetwork};
use netclus_trajectory::{TrajId, TrajectorySet};

use crate::executor::{validate_query, SubmitError};
use crate::fault::{
    BreakerAdmit, BreakerConfig, BreakerSnapshot, CircuitBreaker, FaultPlan, QueryError,
    ShardFailure,
};
use crate::framing::{read_frame, write_frame};
use crate::metrics::{
    FaultReport, LatencyHistogram, LatencySummary, MetricsClock, MetricsReport, ShardLaneReport,
    ShardReport,
};
use crate::provider_cache::{
    quantize_tau, CacheOutcome, RoundKey, RoundOneCache, ShardProviderCache, ShardProviderKey,
};
use crate::shard_proto::{
    round1_request, Request, RespError, Response, ResyncSnapshot, SHARD_PROTOCOL_VERSION,
};
use crate::snapshot::{
    RoutedOp, Snapshot, SnapshotStore, UpdateBatch, UpdateOp, UpdateReceipt, UpdateSink,
};
use crate::trace::{LoadGauge, Round1Source, Stage, TraceConfig, TraceMeta, Tracer};
use crate::wire::{MAX_RESYNC_BLOB, MAX_SHARD_RESPONSE};

/// Router configuration.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouterConfig {
    /// Worker threads executing round-1 shard tasks; 0 (the default)
    /// means one lane per shard.
    pub workers: usize,
    /// Per-shard provider-cache capacity in built providers (shared by
    /// all workers, keyed per shard); **0 disables** the cache — every
    /// round-1 task rebuilds its provider, the cold reference path.
    pub provider_cache_capacity: usize,
    /// Round-1 candidate-memo capacity in memoized rounds; **0 disables**
    /// the memo.
    pub round_memo_capacity: usize,
    /// Threads used to build one shard provider on a cache miss. Router
    /// workers already parallelize across shards, so the default of 1
    /// avoids oversubscription.
    pub provider_build_threads: usize,
    /// Query-path tracing + tail-sampling configuration (on by default;
    /// see [`TraceConfig`]).
    pub trace: TraceConfig,
    /// Per-shard circuit-breaker tuning (failure threshold, cooldown).
    pub breaker: BreakerConfig,
    /// Capacity of the stale-answer fallback cache (last full answer per
    /// `(k, τ, ψ)`, served with a `stale` marker when every shard fails);
    /// **0 disables** the fallback.
    pub stale_cache_capacity: usize,
}

impl Default for ShardRouterConfig {
    fn default() -> Self {
        ShardRouterConfig {
            workers: 0,
            provider_cache_capacity: 32,
            round_memo_capacity: 128,
            provider_build_threads: 1,
            trace: TraceConfig::default(),
            breaker: BreakerConfig::default(),
            stale_cache_capacity: 256,
        }
    }
}

impl ShardRouterConfig {
    /// The cold reference configuration: every cache disabled (round-1
    /// caches *and* the stale-answer fallback), so every query takes the
    /// full rebuild path (what the equivalence proptests compare the
    /// cached router against).
    pub fn uncached() -> Self {
        ShardRouterConfig {
            provider_cache_capacity: 0,
            round_memo_capacity: 0,
            stale_cache_capacity: 0,
            ..Default::default()
        }
    }
}

/// Fraction of a query's deadline budgeted to the round-1 scatter-gather;
/// the remainder is reserved for the round-2 merge, so a slow shard
/// cannot starve the merge of the surviving candidates.
pub const ROUND1_BUDGET_FRACTION: f64 = 0.75;

/// Fraction of the round-1 budget the gather waits before **hedging**: a
/// shard that has not answered by then gets a second round-1 request on
/// its next healthy replica, and the first bit-identical answer wins.
/// Replicas pin the same lockstep epoch, so either answer is the answer;
/// hedging trades one redundant RPC for tail latency only when round 1
/// is already slower than the typical reply.
pub const HEDGE_DELAY_FRACTION: f64 = 0.25;

/// Hedge delay for queries without a deadline (no round-1 budget to take
/// a fraction of): comfortably above a healthy round-1 reply, far below
/// a human-visible stall.
const DEFAULT_HEDGE_DELAY: Duration = Duration::from_millis(20);

/// Per-query execution options for [`ShardRouter::query`].
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryOptions {
    /// Optional end-to-end deadline. Round 1 gets
    /// [`ROUND1_BUDGET_FRACTION`] of it (shards that miss the budget are
    /// treated as failed and the answer degrades), round 2 the remainder;
    /// if nothing survives in budget the query fails with a typed
    /// [`QueryError::DeadlineExceeded`]. `None` (the default) waits
    /// indefinitely.
    pub deadline: Option<Duration>,
}

impl QueryOptions {
    /// Options carrying an end-to-end deadline.
    pub fn with_deadline(deadline: Duration) -> QueryOptions {
        QueryOptions {
            deadline: Some(deadline),
        }
    }
}

/// A scatter-gather answer: the merged round-2 solution plus per-shard
/// round-1 timings, all computed against one epoch across every shard.
#[derive(Clone, Debug)]
pub struct ShardedServiceAnswer {
    /// The (lockstep) epoch every shard snapshot was pinned at.
    pub epoch: u64,
    /// Selected sites, in round-2 selection order.
    pub sites: Vec<NodeId>,
    /// Round-2 utility under the estimated detours `d̂r`.
    pub utility: f64,
    /// Trajectories with positive utility in the merged view.
    pub covered: usize,
    /// Index instance that served the query.
    pub instance: usize,
    /// Size of the round-2 candidate union (≤ shards × k).
    pub candidates: usize,
    /// Round-1 wall-clock per shard, microseconds, in shard order.
    pub shard_micros: Vec<u64>,
    /// Round-2 (merge + solve) wall-clock, microseconds.
    pub merge_micros: u64,
    /// End-to-end scatter-gather wall-clock, microseconds.
    pub total_micros: u64,
    /// True when at least one shard's round-1 answer is missing from the
    /// merge (failed, timed out, or skipped by an open breaker).
    pub degraded: bool,
    /// The shards missing from the merge, ascending (empty when not
    /// degraded).
    pub shards_missing: Vec<u32>,
    /// Conservative lower bound on `utility / U_full` where `U_full` is
    /// what the full fan-out would have achieved — `1.0` for complete
    /// answers, computed by [`netclus::shard::degraded_utility_bound`]
    /// from the surviving shards' coverage mass otherwise. For a
    /// [`stale`](Self::stale) answer the bound refers to the stale epoch
    /// it was computed at.
    pub utility_bound: f64,
    /// True when this is a stale-epoch fallback served because every
    /// shard failed; [`epoch`](Self::epoch) is the epoch the answer was
    /// originally computed at.
    pub stale: bool,
}

/// A successful round-1 shard reply — what a [`ShardTransport`] returns.
/// The trajectory-id bound rides along because shard bounds can differ
/// (a shard that never received a trajectory keeps the shorter id space)
/// and the merge must size its inversion to the largest; `source`
/// reports where the round-1 answer came from (memo, provider hit,
/// coalesced wait, or build), which drives the hot/cold lane split and
/// the trace span detail.
#[derive(Clone, Debug)]
pub struct Round1Ok {
    /// Epoch the shard snapshot was pinned at.
    pub epoch: u64,
    /// The shard's trajectory-id bound (merge inversion sizing).
    pub bound: usize,
    /// Which cache lane served the answer.
    pub source: Round1Source,
    /// The candidates with coverage rows plus round-1 timings.
    pub round: ShardRoundOne,
}

/// What one shard did with its routed slice of an update batch.
#[derive(Clone, Debug)]
pub struct ShardApplyOutcome {
    /// The epoch the shard published after the batch.
    pub epoch: u64,
    /// Per-op outcome in routed order (`true` = applied).
    pub results: Vec<bool>,
}

/// Borrowed router-side context for one round-1 task. The in-process
/// transport runs the full memo → provider → cold resolution against the
/// router-shared caches; the remote transport only reads `shard` and
/// `deadline` (the shard server keeps its own caches).
pub struct Round1Ctx<'a> {
    /// Shard lane being served.
    pub shard: u32,
    /// Round-1 budget deadline, if any.
    pub deadline: Option<Instant>,
    /// Router-shared provider cache (`None` = disabled).
    pub providers: Option<&'a ShardProviderCache>,
    /// Router-shared round-1 candidate memo (`None` = disabled).
    pub rounds: Option<&'a RoundOneCache>,
    /// Threads per provider build on a cache miss.
    pub build_threads: usize,
    /// The calling worker's reusable provider-build scratch.
    pub scratch: &'a mut ProviderScratch,
    /// Provider-build latency sink (one sample per actual build).
    pub provider_build: &'a LatencyHistogram,
}

/// Where one shard's data lives and how to talk to it. The router is
/// transport-agnostic: [`InProcessShard`] serves from a local
/// [`SnapshotStore`] on the router's own worker threads, [`RemoteShard`]
/// speaks the framed TCP protocol to a `netclus-shardd` process.
/// Failures surface as [`ShardFailure`] either way, so the fault
/// machinery (breakers, budgets, degraded merges, stale fallback) is
/// shared between both.
pub trait ShardTransport: Send + Sync {
    /// Transport tag for the metrics report: `"in_process"` or
    /// `"remote"`.
    fn kind(&self) -> &'static str;
    /// Answers one round-1 scatter task.
    fn round1(&self, query: &TopsQuery, ctx: &mut Round1Ctx<'_>) -> Result<Round1Ok, ShardFailure>;
    /// Applies this shard's routed slice of an update batch (possibly
    /// empty — lockstep epochs advance on every batch) and reports the
    /// published epoch plus per-op acks.
    fn apply(&self, ops: &[RoutedOp]) -> Result<ShardApplyOutcome, ShardFailure>;
    /// The shard's current (local) or last-observed (remote) epoch.
    fn epoch(&self) -> u64;
    /// The local snapshot store, when the shard lives in this process.
    fn local_store(&self) -> Option<&SnapshotStore> {
        None
    }
    /// RPC counters, when the transport issues RPCs.
    fn counters(&self) -> Option<&TransportCounters> {
        None
    }
    /// Captures this replica's full corpus snapshot so a lagging sibling
    /// can catch up. Transports that cannot serve a snapshot return
    /// [`ShardFailure::Unreachable`].
    fn fetch_resync(&self) -> Result<ResyncSnapshot, ShardFailure> {
        Err(ShardFailure::Unreachable)
    }
    /// Installs a corpus snapshot fetched from a healthy sibling,
    /// replacing this replica's corpus and index wholesale and adopting
    /// the snapshot's epoch. Transports that cannot install (a remote
    /// replica rejoins via `netclus-shardd --join` instead) return
    /// [`ShardFailure::Unreachable`].
    fn install_resync(&self, snap: &ResyncSnapshot) -> Result<(), ShardFailure> {
        let _ = snap;
        Err(ShardFailure::Unreachable)
    }
}

/// The in-process transport: the shard's [`SnapshotStore`] lives in the
/// router process and round 1 runs on the router's worker threads
/// against the router-shared caches — bit-identical to the
/// pre-transport router.
pub struct InProcessShard {
    store: SnapshotStore,
}

impl InProcessShard {
    /// Wraps one shard's snapshot store.
    pub fn new(store: SnapshotStore) -> InProcessShard {
        InProcessShard { store }
    }
}

impl ShardTransport for InProcessShard {
    fn kind(&self) -> &'static str {
        "in_process"
    }

    fn round1(&self, query: &TopsQuery, ctx: &mut Round1Ctx<'_>) -> Result<Round1Ok, ShardFailure> {
        let snap = self.store.load();
        Ok(resolve_round1(
            &snap,
            ctx.shard,
            query,
            ctx.providers,
            ctx.rounds,
            ctx.build_threads,
            ctx.scratch,
            ctx.provider_build,
        ))
    }

    fn apply(&self, ops: &[RoutedOp]) -> Result<ShardApplyOutcome, ShardFailure> {
        let (receipt, results) = self.store.apply_routed_results(ops);
        Ok(ShardApplyOutcome {
            epoch: receipt.epoch,
            results,
        })
    }

    fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    fn local_store(&self) -> Option<&SnapshotStore> {
        Some(&self.store)
    }

    fn fetch_resync(&self) -> Result<ResyncSnapshot, ShardFailure> {
        Ok(ResyncSnapshot::capture(&self.store.load()))
    }

    fn install_resync(&self, snap: &ResyncSnapshot) -> Result<(), ShardFailure> {
        install_resync_snapshot(&self.store, snap)
    }
}

/// Validates `snap` against `store`'s (fixed) road network, rebuilds the
/// shard corpus and index from it, and publishes the result wholesale at
/// `snap.epoch` — the receiving half of a resync transfer. Any
/// out-of-network node or duplicate trajectory id rejects the whole
/// snapshot as [`ShardFailure::CorruptReply`] without touching the
/// published state. Shared by the in-process transport's resync path and
/// `netclus-shardd --join`.
pub fn install_resync_snapshot(
    store: &SnapshotStore,
    snap: &ResyncSnapshot,
) -> Result<(), ShardFailure> {
    let cur = store.load();
    let net = cur.net_shared();
    let nodes = net.node_count();
    let mut trajs = TrajectorySet::for_network(&net);
    for (id, traj) in &snap.trajs {
        if traj.nodes().iter().any(|v| v.0 as usize >= nodes) || !trajs.insert_at(*id, traj.clone())
        {
            return Err(ShardFailure::CorruptReply);
        }
    }
    trajs.align_id_bound(snap.id_bound as usize);
    if snap.sites.iter().any(|v| v.0 as usize >= nodes) {
        return Err(ShardFailure::CorruptReply);
    }
    let index = NetClusIndex::build(&net, &trajs, &snap.sites, *cur.index().config());
    store.install(snap.epoch, trajs, index);
    Ok(())
}

/// The shared round-1 resolution, cheapest lane first: candidate memo →
/// provider cache (single-flight build on a miss) → cold rebuild. Used
/// by [`InProcessShard`] against the router's caches and by the shard
/// server against its own.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve_round1(
    snap: &Snapshot,
    shard: u32,
    query: &TopsQuery,
    providers: Option<&ShardProviderCache>,
    rounds: Option<&RoundOneCache>,
    build_threads: usize,
    scratch: &mut ProviderScratch,
    provider_build: &LatencyHistogram,
) -> Round1Ok {
    let epoch = snap.epoch();
    let bound = snap.trajs().id_bound();
    let memo_key = rounds.map(|_| RoundKey::new(epoch, shard, query.tau, &query.preference));
    let memoized = match (rounds, &memo_key) {
        (Some(rounds), Some(key)) => rounds.lookup(key, query.k),
        _ => None,
    };
    let (round, source) = match memoized {
        Some(round) => (round, Round1Source::Memo),
        None => {
            let (round, source) = match providers {
                Some(providers) => {
                    let p = snap.index().instance_for(query.tau);
                    let key = ShardProviderKey::new(epoch, shard, p, query.tau);
                    let (provider, outcome) = providers.get_or_build(key, || {
                        let build_start = Instant::now();
                        let built = ClusteredProvider::build_with(
                            snap.index().instance(p),
                            query.tau,
                            bound,
                            build_threads,
                            scratch,
                        );
                        provider_build.record(build_start.elapsed());
                        built
                    });
                    let source = match outcome {
                        CacheOutcome::Hit => Round1Source::ProviderHit,
                        CacheOutcome::Coalesced => Round1Source::Coalesced,
                        CacheOutcome::Miss => Round1Source::Built,
                    };
                    (local_candidates_on(&provider, p, query), source)
                }
                None => (
                    local_candidates(snap.index(), query, bound, scratch),
                    Round1Source::Cold,
                ),
            };
            if let (Some(rounds), Some(key)) = (rounds, memo_key) {
                rounds.insert(key, round.clone());
            }
            (round, source)
        }
    };
    Round1Ok {
        epoch,
        bound,
        source,
        round,
    }
}

/// RPC counters a remote transport maintains; summed into the
/// `transport_*` fields of [`ShardReport`].
#[derive(Debug, Default)]
pub struct TransportCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    reconnects: AtomicU64,
    rpc_latency: LatencyHistogram,
}

impl TransportCounters {
    /// Point-in-time view.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            rpc: self.rpc_latency.summary(),
        }
    }
}

/// Point-in-time [`TransportCounters`] view.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransportSnapshot {
    /// RPCs issued, including failed ones.
    pub requests: u64,
    /// RPCs that ended in a [`ShardFailure`].
    pub errors: u64,
    /// Successful (re)connect handshakes.
    pub reconnects: u64,
    /// Round-trip latency of completed RPCs.
    pub rpc: LatencySummary,
}

/// Tuning for one [`RemoteShard`] connection. All timeouts must be
/// nonzero.
#[derive(Clone, Copy, Debug)]
pub struct RemoteShardConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Per-RPC read/write timeout (clamped further by the query
    /// deadline).
    pub io_timeout: Duration,
    /// First reconnect backoff after a failed attempt; doubles per
    /// consecutive failure. While the backoff window is open, RPCs
    /// fast-fail [`ShardFailure::Unreachable`] without touching the
    /// socket.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for RemoteShardConfig {
    fn default() -> Self {
        RemoteShardConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(5),
            backoff: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

/// What the hello handshake learned about a shard server.
#[derive(Clone, Copy, Debug)]
pub struct ShardHello {
    /// Epoch the shard currently publishes.
    pub epoch: u64,
    /// The shard's trajectory-id bound (global ids assigned so far).
    pub traj_id_bound: u64,
    /// Live trajectories the shard holds.
    pub live_trajs: u64,
}

struct ConnState {
    stream: Option<TcpStream>,
    /// No reconnect attempt before this instant (backoff window).
    next_attempt: Option<Instant>,
    backoff: Duration,
}

/// The remote transport: one shard served by a `netclus-shardd` process
/// over the framed TCP protocol ([`crate::shard_proto`]). Keeps one
/// persistent connection guarded by a mutex (the router scatters at most
/// one round-1 task per shard at a time, so the lock is uncontended on
/// the query path) and reconnects with exponential backoff after any
/// transport-level failure.
pub struct RemoteShard {
    shard: u32,
    addr: SocketAddr,
    cfg: RemoteShardConfig,
    conn: Mutex<ConnState>,
    /// Last epoch observed in any response — the router's lockstep hint.
    last_epoch: AtomicU64,
    /// Failed reconnect attempts, ever — the per-attempt term of the
    /// backoff-jitter seed.
    reconnect_failures: AtomicU64,
    counters: TransportCounters,
}

impl RemoteShard {
    /// A transport for shard `shard` served at `addr`. Connects lazily:
    /// the first RPC performs the hello handshake.
    pub fn new(shard: u32, addr: SocketAddr, cfg: RemoteShardConfig) -> RemoteShard {
        RemoteShard {
            shard,
            addr,
            conn: Mutex::new(ConnState {
                stream: None,
                next_attempt: None,
                backoff: cfg.backoff,
            }),
            cfg,
            last_epoch: AtomicU64::new(0),
            reconnect_failures: AtomicU64::new(0),
            counters: TransportCounters::default(),
        }
    }

    /// The shard id this transport routes to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Asks the server for its hello summary (connecting first if
    /// needed) — what [`ShardRouter::connect`] seeds its global id space
    /// and replication gauges from.
    pub fn hello(&self) -> Result<ShardHello, ShardFailure> {
        let req = Request::Hello {
            version: SHARD_PROTOCOL_VERSION,
            shard: self.shard,
        };
        match self.call(&req, None)? {
            Response::HelloAck {
                epoch,
                traj_id_bound,
                live_trajs,
                ..
            } => Ok(ShardHello {
                epoch,
                traj_id_bound,
                live_trajs,
            }),
            _ => Err(ShardFailure::CorruptReply),
        }
    }

    /// One RPC: (re)connect if needed, clamp the io timeout to the
    /// remaining deadline, exchange one frame pair, classify failures.
    fn call(&self, req: &Request, deadline: Option<Instant>) -> Result<Response, ShardFailure> {
        let start = Instant::now();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let result = self.call_locked(req, deadline);
        match &result {
            Ok(_) => self.counters.rpc_latency.record(start.elapsed()),
            Err(_) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    fn call_locked(
        &self,
        req: &Request,
        deadline: Option<Instant>,
    ) -> Result<Response, ShardFailure> {
        let mut conn = lock_recover(&self.conn);
        if conn.stream.is_none() {
            self.reconnect_locked(&mut conn)?;
        }
        let stream = conn.stream.as_mut().expect("connected above");
        let mut timeout = self.cfg.io_timeout;
        if let Some(dl) = deadline {
            let left = dl.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ShardFailure::TimedOut);
            }
            timeout = timeout.min(left);
        }
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        let result = exchange(stream, req);
        match &result {
            Ok(resp) => {
                if let Some(epoch) = response_epoch(resp) {
                    self.last_epoch.store(epoch, Ordering::Relaxed);
                }
            }
            Err(_) => {
                // The stream may hold a half-written request or a
                // half-read reply; start fresh on the next call.
                conn.stream = None;
            }
        }
        result
    }

    fn reconnect_locked(&self, conn: &mut ConnState) -> Result<(), ShardFailure> {
        let now = Instant::now();
        if let Some(at) = conn.next_attempt {
            if now < at {
                return Err(ShardFailure::Unreachable);
            }
        }
        let attempt = (|| {
            let mut stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)
                .map_err(|_| ShardFailure::Unreachable)?;
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(self.cfg.io_timeout));
            let _ = stream.set_write_timeout(Some(self.cfg.io_timeout));
            let hello = Request::Hello {
                version: SHARD_PROTOCOL_VERSION,
                shard: self.shard,
            };
            match exchange(&mut stream, &hello)? {
                Response::HelloAck {
                    version,
                    shard,
                    epoch,
                    ..
                } => {
                    if version != SHARD_PROTOCOL_VERSION || shard != self.shard {
                        return Err(ShardFailure::VersionSkew);
                    }
                    self.last_epoch.store(epoch, Ordering::Relaxed);
                    Ok(stream)
                }
                _ => Err(ShardFailure::CorruptReply),
            }
        })();
        match attempt {
            Ok(stream) => {
                conn.stream = Some(stream);
                conn.next_attempt = None;
                conn.backoff = self.cfg.backoff;
                self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(failure) => {
                // Deterministic seeded jitter (±25%) against thundering
                // herd: when a shard server restarts, its clients' retry
                // clocks must not be phase-locked. Seeding from (shard,
                // port, failure ordinal) keeps each client's schedule
                // reproducible while decorrelating clients from each
                // other.
                let ordinal = self.reconnect_failures.fetch_add(1, Ordering::Relaxed);
                let seed = (u64::from(self.shard) << 32) ^ u64::from(self.addr.port()) ^ ordinal;
                let roll = crate::fault::splitmix64(seed);
                let factor = 0.75 + 0.5 * (roll as f64 / (u64::MAX as f64 + 1.0));
                conn.next_attempt = Some(now + conn.backoff.mul_f64(factor));
                conn.backoff = (conn.backoff * 2).min(self.cfg.backoff_max);
                Err(failure)
            }
        }
    }

    /// Fetches the server's full corpus snapshot over the chunked
    /// `Resync` exchange. The server pins the blob at the first chunk of
    /// a transfer, so sequential chunks are internally consistent; if an
    /// epoch change is observed mid-transfer (the pin was lost to a
    /// reconnect and the corpus moved), the transfer restarts from
    /// offset 0, a bounded number of times.
    fn fetch_resync_blob(&self) -> Result<ResyncSnapshot, ShardFailure> {
        const MAX_RESTARTS: u32 = 8;
        let mut restarts = 0;
        let mut blob: Vec<u8> = Vec::new();
        let mut pinned_epoch: Option<u64> = None;
        loop {
            let req = Request::Resync {
                shard: self.shard,
                offset: blob.len() as u64,
            };
            let (epoch, total_len, data) = match self.call(&req, None)? {
                Response::ResyncChunk {
                    epoch,
                    total_len,
                    data,
                } => (epoch, total_len, data),
                _ => return Err(ShardFailure::CorruptReply),
            };
            if total_len as usize > MAX_RESYNC_BLOB {
                return Err(ShardFailure::CorruptReply);
            }
            if pinned_epoch.is_some_and(|e| e != epoch) {
                restarts += 1;
                if restarts > MAX_RESTARTS {
                    return Err(ShardFailure::CorruptReply);
                }
                blob.clear();
                pinned_epoch = None;
                continue;
            }
            pinned_epoch = Some(epoch);
            if data.is_empty() && (blob.len() as u64) < total_len {
                // A non-final empty chunk would loop forever.
                return Err(ShardFailure::CorruptReply);
            }
            blob.extend_from_slice(&data);
            if blob.len() as u64 > total_len {
                return Err(ShardFailure::CorruptReply);
            }
            if blob.len() as u64 == total_len {
                return ResyncSnapshot::decode(&blob).map_err(|_| ShardFailure::CorruptReply);
            }
        }
    }
}

impl ShardTransport for RemoteShard {
    fn kind(&self) -> &'static str {
        "remote"
    }

    fn round1(&self, query: &TopsQuery, ctx: &mut Round1Ctx<'_>) -> Result<Round1Ok, ShardFailure> {
        let req = round1_request(self.epoch(), ctx.shard, query);
        match self.call(&req, ctx.deadline)? {
            Response::Round1Ok {
                epoch,
                bound,
                source,
                round,
            } => Ok(Round1Ok {
                epoch,
                bound: bound as usize,
                source,
                round,
            }),
            _ => Err(ShardFailure::CorruptReply),
        }
    }

    fn apply(&self, ops: &[RoutedOp]) -> Result<ShardApplyOutcome, ShardFailure> {
        let req = Request::Apply { ops: ops.to_vec() };
        match self.call(&req, None)? {
            Response::ApplyAck { epoch, results, .. } => Ok(ShardApplyOutcome { epoch, results }),
            _ => Err(ShardFailure::CorruptReply),
        }
    }

    fn epoch(&self) -> u64 {
        self.last_epoch.load(Ordering::Relaxed)
    }

    fn counters(&self) -> Option<&TransportCounters> {
        Some(&self.counters)
    }

    fn fetch_resync(&self) -> Result<ResyncSnapshot, ShardFailure> {
        self.fetch_resync_blob()
    }
}

/// One request/response exchange on an established stream; the request
/// is framed into one buffer so it leaves as a single write. Maps every
/// socket- and codec-level failure onto the [`ShardFailure`] taxonomy,
/// including the server's typed [`Response::Error`] refusals.
fn exchange(stream: &mut TcpStream, req: &Request) -> Result<Response, ShardFailure> {
    let payload = req.encode();
    let mut framed = Vec::with_capacity(payload.len() + 8);
    write_frame(&mut framed, &payload).map_err(|_| ShardFailure::CorruptReply)?;
    stream.write_all(&framed).map_err(|e| io_failure(&e))?;
    let frame = match read_frame(stream, MAX_SHARD_RESPONSE) {
        Ok(Some(frame)) => frame,
        Ok(None) => return Err(ShardFailure::Dropped),
        Err(e) => return Err(io_failure(&e)),
    };
    let resp = Response::decode(&frame).map_err(|_| ShardFailure::CorruptReply)?;
    if let Response::Error(e) = &resp {
        return Err(match e {
            RespError::VersionSkew => ShardFailure::VersionSkew,
            RespError::BadRequest => ShardFailure::CorruptReply,
            RespError::Injected => ShardFailure::Injected,
        });
    }
    Ok(resp)
}

/// Socket error → taxonomy: a timeout is [`ShardFailure::TimedOut`] (the
/// deadline machinery owns it), a CRC mismatch or oversize frame is
/// [`ShardFailure::CorruptReply`], anything else means the connection
/// died mid-exchange ([`ShardFailure::Dropped`]).
fn io_failure(e: &io::Error) -> ShardFailure {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ShardFailure::TimedOut,
        io::ErrorKind::InvalidData => ShardFailure::CorruptReply,
        _ => ShardFailure::Dropped,
    }
}

fn response_epoch(resp: &Response) -> Option<u64> {
    match resp {
        Response::HelloAck { epoch, .. }
        | Response::Round1Ok { epoch, .. }
        | Response::ApplyAck { epoch, .. }
        | Response::HeartbeatAck { epoch, .. } => Some(*epoch),
        _ => None,
    }
}

type ShardReplyMsg = (u32, u32, Result<Round1Ok, ShardFailure>);

/// One round-1 unit of work handed to the pool.
struct ShardTask {
    shard: u32,
    /// Replica within the shard's set that serves this attempt.
    replica: u32,
    query: TopsQuery,
    /// Round-1 budget: a worker popping the task after this instant sheds
    /// it with [`ShardFailure::TimedOut`] instead of computing an answer
    /// the gather has already given up on.
    deadline: Option<Instant>,
    reply: Sender<ShardReplyMsg>,
}

/// Key of the stale-answer fallback cache: `(k, τ bits, ψ identity)` —
/// deliberately epoch-free, the point is serving across epochs.
type StaleKey = (usize, u64, u8, u64);

fn stale_key(q: &TopsQuery) -> StaleKey {
    let (tag, param) = crate::cache::preference_key(&q.preference);
    (q.k, q.tau.to_bits(), tag, param)
}

/// Last full (non-degraded) answer per query shape, insertion-ordered
/// bounded map — the fallback of last resort when every shard fails.
struct StaleCache {
    cap: usize,
    map: HashMap<StaleKey, Arc<ShardedServiceAnswer>>,
    order: VecDeque<StaleKey>,
}

impl StaleCache {
    fn new(cap: usize) -> StaleCache {
        StaleCache {
            cap,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: &StaleKey) -> Option<Arc<ShardedServiceAnswer>> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: StaleKey, answer: Arc<ShardedServiceAnswer>) {
        if self.map.insert(key, answer).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.cap {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }
}

/// Central fault counters (breaker transition counts live on the
/// breakers themselves and are summed into the report).
#[derive(Default)]
struct FaultCounters {
    degraded_answers: AtomicU64,
    stale_answers: AtomicU64,
    shard_failures: AtomicU64,
    shard_timeouts: AtomicU64,
    deadline_exceeded: AtomicU64,
    breaker_skips: AtomicU64,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    abandoned_gathers: AtomicU64,
    unavailable_answers: AtomicU64,
    hedged_requests: AtomicU64,
    hedge_wins: AtomicU64,
    replica_failovers: AtomicU64,
    resyncs: AtomicU64,
}

/// Poison-recovering mutex lock: a worker that panicked mid-task cannot
/// take the serving path down with it — the protected state is either a
/// plain queue (panics never happen while it is held inconsistent) or
/// monotone counters, so inheriting the guard is always safe.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

struct RouterQueue {
    tasks: VecDeque<ShardTask>,
    shutdown: bool,
}

/// Mutable update-side state, serialized by the update lock's write side.
struct UpdateState {
    /// Next global trajectory id to assign.
    next_id: u64,
    /// The authoritative lockstep epoch. Every shard that is keeping up
    /// publishes this epoch; a gather demotes answers from any other
    /// epoch to [`ShardFailure::EpochSkew`].
    epoch: u64,
    /// Live replication bookkeeping (kept in sync with routed updates).
    replication: ReplicationStats,
}

struct RouterInner {
    net: Arc<RoadNetwork>,
    partition: RegionPartition,
    /// Replica sets, `transports[shard][replica]`. Every replica of a
    /// shard holds the same corpus at the same lockstep epoch (applies
    /// fan out to all of them), so any replica's round-1 answer is *the*
    /// answer — which is what makes hedged reads and failover safe.
    transports: Vec<Vec<Box<dyn ShardTransport>>>,
    /// Queries take `read`, updates take `write`: a fan-out observes every
    /// shard at one lockstep epoch.
    update_lock: RwLock<UpdateState>,
    queue: Mutex<RouterQueue>,
    queue_cv: Condvar,
    stopping: AtomicBool,
    clock: MetricsClock,
    /// Shared per-shard provider cache with single-flight builds; `None`
    /// when disabled (capacity 0).
    providers: Option<ShardProviderCache>,
    /// Round-1 candidate memo; `None` when disabled (capacity 0).
    rounds: Option<RoundOneCache>,
    /// Threads per provider build on a cache miss.
    build_threads: usize,
    /// Round-1 latency per shard lane.
    shard_latency: Vec<LatencyHistogram>,
    /// Round-1 tasks executed per shard lane.
    shard_tasks: Vec<AtomicU64>,
    /// Round-2 merge latency.
    merge_latency: LatencyHistogram,
    /// End-to-end latency of fan-outs where every shard answered from a
    /// cache (no provider build anywhere).
    hot_latency: LatencyHistogram,
    /// End-to-end latency of fan-outs where at least one shard built (or
    /// waited on) a provider.
    cold_latency: LatencyHistogram,
    /// Fan-out queries completed.
    fanout_queries: AtomicU64,
    /// Query-path tracer: per-stage histograms + tail-sampled slow log.
    tracer: Tracer,
    /// Per-shard load/heat gauges (qps EWMA, cache heat, cold fraction).
    gauges: Vec<LoadGauge>,
    /// Per-replica circuit breakers, `breakers[shard][replica]` (closed →
    /// open → half-open) — one replica's outage must not poison its
    /// healthy siblings.
    breakers: Vec<Vec<CircuitBreaker>>,
    /// Per-shard preferred-replica cursor: the last replica that won a
    /// round 1. The scatter starts its replica walk here, so a healthy
    /// primary stays sticky and a failed-over shard keeps preferring the
    /// replica that actually answered.
    preferred: Vec<AtomicUsize>,
    /// Fast-path flag for the fault-injection hook: workers check this
    /// one relaxed load per task and only read the plan when it is set.
    fault_on: AtomicBool,
    /// The installed fault plan, if any (see [`FaultPlan`]).
    fault_plan: RwLock<Option<Arc<FaultPlan>>>,
    /// Central fault counters (the `FaultReport` section).
    faultc: FaultCounters,
    /// Stale-answer fallback; `None` when disabled (capacity 0).
    stale: Option<Mutex<StaleCache>>,
}

/// The sharded in-process query server. See the module docs.
pub struct ShardRouter {
    inner: Arc<RouterInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ShardRouter {
    /// Consumes a built [`ShardedNetClusIndex`], publishes each shard as
    /// epoch 0 of its own snapshot store and starts the worker pool.
    ///
    /// # Errors
    /// Returns the OS error when a worker thread cannot be spawned;
    /// already-spawned workers are stopped and joined first.
    pub fn start(
        net: Arc<RoadNetwork>,
        sharded: ShardedNetClusIndex,
        cfg: ShardRouterConfig,
    ) -> std::io::Result<Self> {
        Self::start_replicated(net, sharded, 1, cfg)
    }

    /// Like [`ShardRouter::start`], but publishes `replicas` in-process
    /// copies of every shard (each with its own snapshot store, all at
    /// epoch 0). Round 1 prefers one replica per shard and **hedges** to
    /// a sibling when the preferred replica is slow or failing; updates
    /// fan out to every replica in lockstep. With `replicas == 1` this is
    /// exactly [`ShardRouter::start`].
    ///
    /// # Errors
    /// Returns the OS error when a worker thread cannot be spawned;
    /// already-spawned workers are stopped and joined first.
    pub fn start_replicated(
        net: Arc<RoadNetwork>,
        sharded: ShardedNetClusIndex,
        replicas: usize,
        cfg: ShardRouterConfig,
    ) -> std::io::Result<Self> {
        let replicas = replicas.max(1);
        let next_id = sharded.traj_id_bound() as u64;
        let (partition, shards, replication) = sharded.into_parts();
        let transports: Vec<Vec<Box<dyn ShardTransport>>> = shards
            .into_iter()
            .map(|NetClusShard { trajs, index, .. }| {
                (0..replicas)
                    .map(|_| {
                        Box::new(InProcessShard::new(SnapshotStore::with_shared_net(
                            Arc::clone(&net),
                            trajs.clone(),
                            index.clone(),
                        ))) as Box<dyn ShardTransport>
                    })
                    .collect()
            })
            .collect();
        Self::start_with_replica_transports(
            net,
            partition,
            transports,
            next_id,
            0,
            replication,
            cfg,
        )
    }

    /// Connects to `netclus-shardd` servers at `addrs` (one per shard, in
    /// shard order) and starts a router whose every lane is a
    /// [`RemoteShard`]. Every hello handshake must succeed; the global id
    /// space is seeded from the largest per-shard trajectory-id bound and
    /// the lockstep epoch from the largest reported epoch (a shard behind
    /// it is demoted to [`ShardFailure::EpochSkew`] at query time until
    /// it catches up).
    ///
    /// Replication seeding is best-effort: the per-shard live-trajectory
    /// counts — the only figures the degraded-answer utility bound uses —
    /// are exact from the handshakes, while the global trajectory and
    /// boundary gauges assume a partition-respecting corpus (no
    /// cross-shard trajectories), which holds for corpora built by
    /// `netclus-shardd` itself.
    ///
    /// # Errors
    /// An [`io::Error`] when any shard cannot be reached or refuses the
    /// handshake, or when worker threads cannot spawn.
    pub fn connect(
        net: Arc<RoadNetwork>,
        partition: RegionPartition,
        addrs: &[SocketAddr],
        cfg: ShardRouterConfig,
        remote: RemoteShardConfig,
    ) -> std::io::Result<Self> {
        let addr_sets: Vec<Vec<SocketAddr>> = addrs.iter().map(|&a| vec![a]).collect();
        Self::connect_replicated(net, partition, &addr_sets, cfg, remote)
    }

    /// Like [`ShardRouter::connect`], but each shard is served by a
    /// **replica set** of `netclus-shardd` processes (`addr_sets[shard]`
    /// lists that shard's replicas). Every replica's hello must succeed;
    /// the id space and lockstep epoch are seeded from the largest
    /// reported values, and a replica behind the lockstep epoch is
    /// avoided at scatter time until it catches up (via
    /// `netclus-shardd --join` or [`ShardRouter::resync_replica`]).
    ///
    /// # Errors
    /// An [`io::Error`] when any replica cannot be reached or refuses the
    /// handshake, when a shard has no replicas, or when worker threads
    /// cannot spawn.
    pub fn connect_replicated(
        net: Arc<RoadNetwork>,
        partition: RegionPartition,
        addr_sets: &[Vec<SocketAddr>],
        cfg: ShardRouterConfig,
        remote: RemoteShardConfig,
    ) -> std::io::Result<Self> {
        let mut transports: Vec<Vec<Box<dyn ShardTransport>>> = Vec::with_capacity(addr_sets.len());
        let mut next_id = 0u64;
        let mut epoch = 0u64;
        let mut per_shard = Vec::with_capacity(addr_sets.len());
        for (s, addrs) in addr_sets.iter().enumerate() {
            if addrs.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("shard {s} has no replica addresses"),
                ));
            }
            let mut set: Vec<Box<dyn ShardTransport>> = Vec::with_capacity(addrs.len());
            let mut live = 0u64;
            for &addr in addrs {
                let shard = RemoteShard::new(s as u32, addr, remote);
                let info = shard.hello().map_err(|failure| {
                    io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!("shard {s} at {addr}: {failure}"),
                    )
                })?;
                next_id = next_id.max(info.traj_id_bound);
                epoch = epoch.max(info.epoch);
                live = live.max(info.live_trajs);
                set.push(Box::new(shard));
            }
            per_shard.push(live as usize);
            transports.push(set);
        }
        let total: usize = per_shard.iter().sum();
        let replication = ReplicationStats {
            trajectories: total,
            boundary: 0,
            replicas: total,
            per_shard,
        };
        Self::start_with_replica_transports(
            net,
            partition,
            transports,
            next_id,
            epoch,
            replication,
            cfg,
        )
    }

    /// Starts a router over an explicit transport mix (the constructor
    /// [`ShardRouter::start`] and [`ShardRouter::connect`] both lower
    /// into). `next_id`, `epoch` and `replication` seed the update-side
    /// state and must describe the shards' current contents.
    ///
    /// # Errors
    /// Returns the OS error when a worker thread cannot be spawned;
    /// already-spawned workers are stopped and joined first.
    pub fn start_with_transports(
        net: Arc<RoadNetwork>,
        partition: RegionPartition,
        transports: Vec<Box<dyn ShardTransport>>,
        next_id: u64,
        epoch: u64,
        replication: ReplicationStats,
        cfg: ShardRouterConfig,
    ) -> std::io::Result<Self> {
        let transports = transports.into_iter().map(|t| vec![t]).collect();
        Self::start_with_replica_transports(
            net,
            partition,
            transports,
            next_id,
            epoch,
            replication,
            cfg,
        )
    }

    /// The core constructor every other one lowers into: an explicit
    /// replica-set transport mix, `transports[shard][replica]`. Every
    /// replica of a shard must hold the same corpus at the same epoch
    /// (the hedged scatter treats their answers as interchangeable).
    ///
    /// # Errors
    /// Returns the OS error when a worker thread cannot be spawned;
    /// already-spawned workers are stopped and joined first.
    pub fn start_with_replica_transports(
        net: Arc<RoadNetwork>,
        partition: RegionPartition,
        transports: Vec<Vec<Box<dyn ShardTransport>>>,
        next_id: u64,
        epoch: u64,
        replication: ReplicationStats,
        cfg: ShardRouterConfig,
    ) -> std::io::Result<Self> {
        assert!(
            transports.iter().all(|set| !set.is_empty()),
            "every shard needs at least one replica transport"
        );
        let lanes = transports.len();
        // Default worker count: one lane per *replica*, so a hedged
        // second attempt never queues behind the slow primary it is
        // meant to overtake. With single-replica shards this is the old
        // one-worker-per-shard default.
        let total_replicas: usize = transports.iter().map(Vec::len).sum();
        let workers = if cfg.workers == 0 {
            total_replicas
        } else {
            cfg.workers
        }
        .max(1);
        let replica_counts: Vec<usize> = transports.iter().map(Vec::len).collect();
        let inner = Arc::new(RouterInner {
            net,
            partition,
            transports,
            update_lock: RwLock::new(UpdateState {
                next_id,
                epoch,
                replication,
            }),
            queue: Mutex::new(RouterQueue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            stopping: AtomicBool::new(false),
            clock: MetricsClock::default(),
            providers: (cfg.provider_cache_capacity > 0)
                .then(|| ShardProviderCache::new(cfg.provider_cache_capacity)),
            rounds: (cfg.round_memo_capacity > 0)
                .then(|| RoundOneCache::new(cfg.round_memo_capacity)),
            build_threads: cfg.provider_build_threads.max(1),
            shard_latency: (0..lanes).map(|_| LatencyHistogram::default()).collect(),
            shard_tasks: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            merge_latency: LatencyHistogram::default(),
            hot_latency: LatencyHistogram::default(),
            cold_latency: LatencyHistogram::default(),
            fanout_queries: AtomicU64::new(0),
            tracer: Tracer::new(cfg.trace),
            gauges: (0..lanes).map(|_| LoadGauge::default()).collect(),
            breakers: replica_counts
                .iter()
                .map(|&n| (0..n).map(|_| CircuitBreaker::new(cfg.breaker)).collect())
                .collect(),
            preferred: (0..lanes).map(|_| AtomicUsize::new(0)).collect(),
            fault_on: AtomicBool::new(false),
            fault_plan: RwLock::new(None),
            faultc: FaultCounters::default(),
            stale: (cfg.stale_cache_capacity > 0)
                .then(|| Mutex::new(StaleCache::new(cfg.stale_cache_capacity))),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let worker_inner = Arc::clone(&inner);
            let spawned = std::thread::Builder::new()
                .name(format!("netclus-shard-worker-{i}"))
                .spawn(move || worker_entry(&worker_inner));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Unwind the partial pool before surfacing the error.
                    inner.stopping.store(true, Ordering::Release);
                    lock_recover(&inner.queue).shutdown = true;
                    inner.queue_cv.notify_all();
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ShardRouter {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// Number of shards served.
    pub fn shard_count(&self) -> usize {
        self.inner.transports.len()
    }

    /// The authoritative lockstep epoch (what every keeping-up shard
    /// publishes).
    pub fn epoch(&self) -> u64 {
        read_recover(&self.inner.update_lock).epoch
    }

    /// Transport tags in shard order (`"in_process"` / `"remote"`),
    /// reported from each shard's first replica.
    pub fn transport_kinds(&self) -> Vec<&'static str> {
        self.inner.transports.iter().map(|t| t[0].kind()).collect()
    }

    /// The node partition queries are routed by.
    pub fn partition(&self) -> &RegionPartition {
        &self.inner.partition
    }

    /// Answers one TOPS query with the two-round scatter-gather protocol,
    /// blocking until the merged answer is ready. Equivalent to
    /// [`ShardRouter::query`] with default options; kept for callers that
    /// predate deadlines and degraded answers.
    pub fn query_blocking(
        &self,
        query: TopsQuery,
    ) -> Result<Arc<ShardedServiceAnswer>, SubmitError> {
        match self.query(query, &QueryOptions::default()) {
            Ok(answer) => Ok(answer),
            Err(QueryError::Submit(e)) => Err(e),
            // Without a deadline the only residual failure is total shard
            // loss with no stale fallback — serving is effectively down.
            Err(_) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Answers one TOPS query with the two-round scatter-gather protocol.
    ///
    /// Fault behavior (see the module docs): shards skipped by an open
    /// breaker or failing round 1 degrade the answer instead of failing
    /// the query, as long as at least one shard survives; a fully-failed
    /// fan-out is served from the stale-answer fallback when possible;
    /// [`QueryOptions::deadline`] bounds the total wait.
    ///
    /// # Errors
    /// [`QueryError::Submit`] for invalid queries or shutdown,
    /// [`QueryError::DeadlineExceeded`] when the budget elapsed first,
    /// [`QueryError::Unavailable`] when every shard failed and no stale
    /// answer was cached.
    pub fn query(
        &self,
        mut query: TopsQuery,
        opts: &QueryOptions,
    ) -> Result<Arc<ShardedServiceAnswer>, QueryError> {
        query.tau = quantize_tau(query.tau);
        validate_query(&query)?;
        let inner = &*self.inner;
        if inner.stopping.load(Ordering::Acquire) {
            inner.clock.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown.into());
        }
        inner
            .clock
            .metrics
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let deadline = opts.deadline.map(|d| start + d);
        let round1_deadline = opts
            .deadline
            .map(|d| start + d.mul_f64(ROUND1_BUDGET_FRACTION));
        // Span recorder: stack-held, zero-allocation; `finish` discards it
        // unless the query lands in the sampled tail.
        let mut spans = inner.tracer.begin();

        // Shared read guard: updates (write side) cannot interleave with
        // the fan-out, so every shard is pinned at one lockstep epoch. The
        // guard also exposes the live per-shard trajectory counts the
        // degraded-answer bound needs.
        let state = read_recover(&inner.update_lock);
        let lockstep_epoch = state.epoch;
        let lanes = inner.transports.len();
        let (tx, rx) = channel();
        let mut outcomes: Vec<Option<Result<Round1Ok, ShardFailure>>> =
            (0..lanes).map(|_| None).collect();
        // Per-shard hedged-gather state. `fired` lists every attempt as
        // `(replica, fired-as-probe, replied)` in fire order; `hedge_idx`
        // marks the one attempt launched by the hedge wave (a win by it
        // is a hedge win — failover-fired attempts are counted as
        // failovers, not hedges). `backups` holds admitted replicas not
        // yet fired, in cursor order.
        struct GatherLane {
            fired: Vec<(u32, bool, bool)>,
            hedge_idx: Option<usize>,
            backups: VecDeque<u32>,
        }
        /// Fires one backup attempt for `shard`; false when the pool is
        /// shutting down (nothing was enqueued).
        fn fire_backup(
            inner: &RouterInner,
            lane: &mut GatherLane,
            shard: u32,
            replica: u32,
            query: TopsQuery,
            deadline: Option<Instant>,
            reply: &Sender<ShardReplyMsg>,
        ) -> bool {
            let mut queue = lock_recover(&inner.queue);
            if queue.shutdown {
                return false;
            }
            lane.fired.push((replica, false, false));
            queue.tasks.push_back(ShardTask {
                shard,
                replica,
                query,
                deadline,
                reply: reply.clone(),
            });
            inner.clock.metrics.queue_enter();
            drop(queue);
            inner.queue_cv.notify_all();
            true
        }
        let mut gathers: Vec<GatherLane> = Vec::with_capacity(lanes);
        let mut pending = 0usize;
        let mut any_backups = false;
        {
            let mut queue = lock_recover(&inner.queue);
            if queue.shutdown {
                inner.clock.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::ShuttingDown.into());
            }
            for shard in 0..lanes as u32 {
                let s = shard as usize;
                let set = &inner.transports[s];
                let n = set.len();
                let pref = inner.preferred[s].load(Ordering::Relaxed) % n;
                // Walk the replica set from the preferred cursor.
                // Healthy replicas at the lockstep epoch become the
                // primary plus the backup pool; lagging replicas hedge
                // last (their answers demote to EpochSkew — still better
                // than nothing once every caught-up replica is gone); a
                // half-open breaker fires its probe *in addition to* the
                // primary, so a recovering replica never steals the
                // healthy replica's slot.
                let mut fired: Vec<(u32, bool, bool)> = Vec::new();
                let mut backups: VecDeque<u32> = VecDeque::new();
                let mut lagging: VecDeque<u32> = VecDeque::new();
                let mut primary: Option<u32> = None;
                for j in 0..n {
                    let r = (pref + j) % n;
                    match inner.breakers[s][r].admit(start) {
                        BreakerAdmit::Yes => {
                            if set[r].epoch() != lockstep_epoch {
                                lagging.push_back(r as u32);
                            } else if primary.is_none() {
                                primary = Some(r as u32);
                            } else {
                                backups.push_back(r as u32);
                            }
                        }
                        BreakerAdmit::Probe => fired.push((r as u32, true, false)),
                        BreakerAdmit::Skip => {}
                    }
                }
                if primary.is_none() {
                    primary = lagging.pop_front();
                }
                backups.extend(lagging);
                if let Some(p) = primary {
                    fired.insert(0, (p, false, false));
                }
                if fired.is_empty() && backups.is_empty() {
                    // Every replica's breaker is open: the whole shard is
                    // skipped this query.
                    outcomes[s] = Some(Err(ShardFailure::BreakerOpen));
                    inner.faultc.breaker_skips.fetch_add(1, Ordering::Relaxed);
                    gathers.push(GatherLane {
                        fired,
                        hedge_idx: None,
                        backups,
                    });
                    continue;
                }
                for &(replica, _, _) in &fired {
                    queue.tasks.push_back(ShardTask {
                        shard,
                        replica,
                        query,
                        deadline: round1_deadline,
                        reply: tx.clone(),
                    });
                    inner.clock.metrics.queue_enter();
                }
                pending += 1;
                any_backups |= !backups.is_empty();
                gathers.push(GatherLane {
                    fired,
                    hedge_idx: None,
                    backups,
                });
            }
        }
        inner.queue_cv.notify_all();
        // Keep one spare sender only while unfired backups remain; once
        // it is gone the channel disconnects when the last in-flight
        // attempt resolves, which is what un-hangs a no-deadline gather
        // over a dying pool.
        let mut spare_tx = any_backups.then_some(tx);
        let mut cursor = spans.stage(Stage::Admission, spans.started());
        let round1_off = cursor
            .saturating_duration_since(spans.started())
            .as_micros() as u64;

        // Gather within the round-1 budget, hedging slow shards onto
        // their backup replicas after the hedge delay and failing over
        // immediately on a typed failure. Every scattered task holds a
        // reply-sender clone, so a worker dropping its reply (injected
        // drop, or a panicking pool during shutdown) disconnects the
        // channel once the other shards answered — never a hang.
        let mut timed_out = false;
        let hedge_delay = opts
            .deadline
            .map(|d| d.mul_f64(ROUND1_BUDGET_FRACTION * HEDGE_DELAY_FRACTION))
            .unwrap_or(DEFAULT_HEDGE_DELAY);
        let mut hedge_at = any_backups.then(|| start + hedge_delay);
        while pending > 0 {
            let now = Instant::now();
            if let Some(dl) = round1_deadline {
                if now >= dl {
                    timed_out = true;
                    break;
                }
            }
            if let Some(at) = hedge_at {
                if now >= at {
                    // Hedge wave (once per query): every unresolved shard
                    // with a spare replica fires one more attempt.
                    hedge_at = None;
                    for s in 0..lanes {
                        if outcomes[s].is_some() {
                            continue;
                        }
                        let lane = &mut gathers[s];
                        let Some(replica) = lane.backups.pop_front() else {
                            continue;
                        };
                        let Some(reply) = spare_tx.as_ref() else {
                            break;
                        };
                        if fire_backup(
                            inner,
                            lane,
                            s as u32,
                            replica,
                            query,
                            round1_deadline,
                            reply,
                        ) {
                            lane.hedge_idx = Some(lane.fired.len() - 1);
                            inner.faultc.hedged_requests.fetch_add(1, Ordering::Relaxed);
                        } else {
                            lane.backups.clear();
                        }
                    }
                    if gathers.iter().all(|l| l.backups.is_empty()) {
                        spare_tx = None;
                    }
                    continue;
                }
            }
            let wait_until = match (round1_deadline, hedge_at) {
                (Some(dl), Some(h)) => Some(dl.min(h)),
                (Some(dl), None) => Some(dl),
                (None, h) => h,
            };
            let msg = match wait_until {
                None => match rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => break,
                },
                Some(until) => match rx.recv_timeout(until.saturating_duration_since(now)) {
                    Ok(msg) => msg,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                },
            };
            let (shard, replica, result) = msg;
            let s = shard as usize;
            let lane = &mut gathers[s];
            let Some(idx) = lane
                .fired
                .iter()
                .position(|&(r, _, replied)| r == replica && !replied)
            else {
                continue;
            };
            lane.fired[idx].2 = true;
            let probe = lane.fired[idx].1;
            let resolved = outcomes[s].is_some();
            match result {
                Ok(ok) if ok.epoch == lockstep_epoch => {
                    inner.breakers[s][replica as usize].record_success(probe);
                    if !resolved {
                        if lane.hedge_idx == Some(idx) {
                            inner.faultc.hedge_wins.fetch_add(1, Ordering::Relaxed);
                        }
                        inner.preferred[s].store(replica as usize, Ordering::Relaxed);
                        lane.backups.clear();
                        outcomes[s] = Some(Ok(ok));
                        pending -= 1;
                    }
                }
                other => {
                    // An answer at a skewed epoch (a replica that missed
                    // an apply) cannot merge without tearing the answer:
                    // demote it to a typed failure so the breaker backs
                    // off the lagging replica too.
                    let failure = match other {
                        Ok(_) => ShardFailure::EpochSkew,
                        Err(f) => f,
                    };
                    if failure == ShardFailure::TimedOut {
                        inner.faultc.shard_timeouts.fetch_add(1, Ordering::Relaxed);
                    } else {
                        inner.faultc.shard_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    inner.breakers[s][replica as usize].record_failure(Instant::now(), probe);
                    if !resolved {
                        // Fail over to the next replica immediately; once
                        // none is left and nothing is in flight, the
                        // shard has failed for real.
                        let mut fired_over = false;
                        while let Some(next) = lane.backups.pop_front() {
                            let Some(reply) = spare_tx.as_ref() else {
                                break;
                            };
                            if fire_backup(inner, lane, shard, next, query, round1_deadline, reply)
                            {
                                inner
                                    .faultc
                                    .replica_failovers
                                    .fetch_add(1, Ordering::Relaxed);
                                fired_over = true;
                                break;
                            }
                            lane.backups.clear();
                        }
                        let outstanding = lane.fired.iter().any(|&(_, _, replied)| !replied);
                        if !fired_over && !outstanding {
                            outcomes[s] = Some(Err(failure));
                            pending -= 1;
                        }
                    }
                }
            }
            if spare_tx.is_some() && gathers.iter().all(|l| l.backups.is_empty()) {
                spare_tx = None;
            }
        }
        // Shards that never resolved: late (budget blown) or lost. Their
        // still-unanswered attempts are charged to their breakers;
        // attempts racing a shard that already resolved are cancelled
        // losers and cost their replicas nothing.
        let verdict_at = Instant::now();
        for (s, slot) in outcomes.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let failure = if timed_out {
                ShardFailure::TimedOut
            } else {
                ShardFailure::Dropped
            };
            for &(replica, probe, replied) in &gathers[s].fired {
                if !replied {
                    if failure == ShardFailure::TimedOut {
                        inner.faultc.shard_timeouts.fetch_add(1, Ordering::Relaxed);
                    } else {
                        inner.faultc.shard_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    inner.breakers[s][replica as usize].record_failure(verdict_at, probe);
                }
            }
            *slot = Some(Err(failure));
        }
        cursor = spans.stage(Stage::Round1, cursor);

        let merge_start = Instant::now();
        let mut epoch = 0u64;
        let mut bound = 0usize;
        let mut all_hot = true;
        let mut shard_micros = vec![0u64; lanes];
        let mut candidates = Vec::new();
        let mut instance = 0usize;
        let mut survivor_utility = 0.0f64;
        let mut missing: Vec<u32> = Vec::new();
        let mut failures: Vec<(u32, ShardFailure)> = Vec::new();
        let mut first_survivor = true;
        for (shard, slot) in outcomes.into_iter().enumerate() {
            match slot.expect("outcome classified") {
                Ok(ok) => {
                    debug_assert_eq!(ok.epoch, lockstep_epoch, "skewed epochs demoted above");
                    if first_survivor {
                        epoch = ok.epoch;
                        instance = ok.round.instance;
                        first_survivor = false;
                    }
                    bound = bound.max(ok.bound);
                    all_hot &= ok.source.is_hot();
                    shard_micros[shard] = ok.round.elapsed.as_micros() as u64;
                    // Child span: this shard's round-1 greedy solve (zero
                    // for memo prefix hits — no solve ran), tagged with
                    // the answer source.
                    spans.child(
                        Stage::Solve,
                        shard as i32,
                        ok.source.name(),
                        round1_off,
                        ok.round.solve_us,
                    );
                    survivor_utility += ok.round.local_utility;
                    candidates.extend(ok.round.candidates);
                }
                Err(failure) => {
                    missing.push(shard as u32);
                    failures.push((shard as u32, failure));
                }
            }
        }

        let key = stale_key(&query);
        if first_survivor {
            // Nothing survived: stale fallback, then a typed error.
            drop(state);
            if let Some(stale) = &inner.stale {
                if let Some(prev) = lock_recover(stale).get(&key) {
                    inner.faultc.stale_answers.fetch_add(1, Ordering::Relaxed);
                    inner
                        .clock
                        .metrics
                        .completed
                        .fetch_add(1, Ordering::Relaxed);
                    inner.clock.metrics.latency.record(start.elapsed());
                    let mut answer = (*prev).clone();
                    answer.stale = true;
                    answer.degraded = true;
                    answer.shards_missing = missing;
                    answer.total_micros = start.elapsed().as_micros() as u64;
                    return Ok(Arc::new(answer));
                }
            }
            if timed_out {
                inner
                    .faultc
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                return Err(QueryError::DeadlineExceeded {
                    deadline: opts.deadline.expect("timeout implies a deadline"),
                });
            }
            inner
                .faultc
                .unavailable_answers
                .fetch_add(1, Ordering::Relaxed);
            return Err(QueryError::Unavailable { failures });
        }
        // Round 2 runs on the remaining budget; if nothing remains the
        // query is already late — fail typed instead of merging anyway.
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                inner
                    .faultc
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                return Err(QueryError::DeadlineExceeded {
                    deadline: opts.deadline.expect("deadline present"),
                });
            }
        }

        let degraded = !missing.is_empty();
        let (solution, candidate_count, merge_timing, utility_bound) = if degraded {
            // Upper-bound each missing shard's lost utility by its live
            // trajectory mass (every ψ score is in [0, 1]); the per-shard
            // counts come from the replication gauges under the same read
            // guard the fan-out holds, so they match the pinned epoch.
            let missing_mass: f64 = missing
                .iter()
                .map(|&s| {
                    state
                        .replication
                        .per_shard
                        .get(s as usize)
                        .copied()
                        .unwrap_or(0) as f64
                })
                .sum();
            inner
                .faultc
                .degraded_answers
                .fetch_add(1, Ordering::Relaxed);
            let m =
                merge_candidates_subset(candidates, &query, bound, survivor_utility, missing_mass);
            (m.solution, m.candidates, m.timing, m.utility_bound)
        } else {
            let (solution, n, timing) = merge_candidates_timed(candidates, &query, bound);
            (solution, n, timing, 1.0)
        };
        let merge_off = cursor
            .saturating_duration_since(spans.started())
            .as_micros() as u64;
        cursor = spans.stage(Stage::Merge, cursor);
        // Child span: the exact round-2 greedy inside the merge (the rest
        // of the merge span is candidate union + coverage-view build).
        spans.child(
            Stage::Solve,
            -1,
            "merge",
            merge_off + merge_timing.build_us,
            merge_timing.solve_us,
        );
        inner.merge_latency.record(merge_start.elapsed());
        inner.fanout_queries.fetch_add(1, Ordering::Relaxed);
        inner
            .clock
            .metrics
            .completed
            .fetch_add(1, Ordering::Relaxed);
        let total = start.elapsed();
        inner.clock.metrics.latency.record(total);
        // Hot/cold lanes: a fan-out that never built a provider is warm
        // traffic; one build anywhere makes the whole gather cold.
        if all_hot {
            inner.hot_latency.record(total);
        } else {
            inner.cold_latency.record(total);
        }
        spans.stage(Stage::Reply, cursor);
        inner.tracer.finish(
            &spans,
            TraceMeta {
                epoch,
                k: query.k,
                tau: query.tau,
                hot: all_hot,
            },
        );

        let answer = Arc::new(ShardedServiceAnswer {
            epoch,
            covered: solution.covered,
            utility: solution.utility,
            sites: solution.sites,
            instance,
            candidates: candidate_count,
            shard_micros,
            merge_micros: merge_start.elapsed().as_micros() as u64,
            total_micros: start.elapsed().as_micros() as u64,
            degraded,
            shards_missing: missing,
            utility_bound,
            stale: false,
        });
        // Only full answers refresh the stale fallback — a degraded
        // answer must not mask a better earlier one.
        if !degraded {
            if let Some(stale) = &inner.stale {
                lock_recover(stale).insert(key, Arc::clone(&answer));
            }
        }
        Ok(answer)
    }

    /// Installs (or clears, with `None`) the fault-injection plan the
    /// workers consult per round-1 task. Zero-cost when cleared: workers
    /// check one relaxed atomic before touching the plan. The query-path
    /// sibling of the ingest publisher's `set_publish_stall`.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        let mut slot = self
            .inner
            .fault_plan
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        self.inner.fault_on.store(plan.is_some(), Ordering::Release);
        *slot = plan.map(Arc::new);
    }

    /// Point-in-time per-shard breaker snapshots, in shard order: each
    /// shard reports its **preferred replica's** breaker (with one
    /// replica per shard that is *the* breaker, as before replication).
    pub fn breaker_snapshots(&self) -> Vec<BreakerSnapshot> {
        self.inner
            .breakers
            .iter()
            .enumerate()
            .map(|(s, set)| {
                let pref = self.inner.preferred[s].load(Ordering::Relaxed) % set.len();
                set[pref].snapshot()
            })
            .collect()
    }

    /// Point-in-time breaker snapshots of every replica of shard `s`, in
    /// replica order.
    pub fn replica_breaker_snapshots(&self, s: usize) -> Vec<BreakerSnapshot> {
        self.inner.breakers[s]
            .iter()
            .map(CircuitBreaker::snapshot)
            .collect()
    }

    /// Per-shard replica-set sizes, in shard order.
    pub fn replica_counts(&self) -> Vec<usize> {
        self.inner.transports.iter().map(Vec::len).collect()
    }

    /// Single-line JSON of every shard's breaker state — the payload of
    /// the telemetry `breakers` command.
    pub fn breakers_json(&self) -> String {
        let snaps = self.breaker_snapshots();
        let mut s = String::from("{");
        let push_u64 = |s: &mut String, key: &str, v: u64| {
            s.push('"');
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&v.to_string());
            s.push(',');
        };
        push_u64(&mut s, "shards", snaps.len() as u64);
        let open = snaps
            .iter()
            .filter(|b| b.state == crate::fault::BreakerState::Open)
            .count();
        push_u64(&mut s, "open", open as u64);
        for (i, snap) in snaps.iter().enumerate() {
            s.push_str(&format!("\"breaker{i}_state\":\"{}\",", snap.state.name()));
            push_u64(
                &mut s,
                &format!("breaker{i}_consecutive_failures"),
                u64::from(snap.consecutive_failures),
            );
            push_u64(&mut s, &format!("breaker{i}_opens"), snap.opens);
            push_u64(&mut s, &format!("breaker{i}_probes"), snap.probes);
            push_u64(&mut s, &format!("breaker{i}_closes"), snap.closes);
        }
        s.pop();
        s.push('}');
        s
    }

    /// Applies an update batch: trajectory adds receive router-assigned
    /// global ids and are shipped to exactly the shards they touch,
    /// removes are broadcast (ownership lives shard-side — a remote
    /// shard's corpus is not visible here); every shard publishes the
    /// next epoch (possibly from an empty batch) so epochs stay in
    /// lockstep. Receipts and replication bookkeeping are reconstructed
    /// from the per-op acks each shard returns, so they are exact over
    /// both transports. A shard whose apply RPC fails outright misses
    /// the batch and falls behind the lockstep epoch; its answers are
    /// demoted to [`ShardFailure::EpochSkew`] until it catches up.
    pub fn apply_updates(&self, batch: UpdateBatch) -> UpdateReceipt {
        let inner = &*self.inner;
        let t = Instant::now();
        let mut state = inner
            .update_lock
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let lanes = inner.transports.len();
        let mut routed: Vec<Vec<RoutedOp>> = (0..lanes).map(|_| Vec::new()).collect();
        // Where each batch op's routed copies landed — `(shard, index in
        // that shard's slice)` — so shard acks map back to per-op
        // outcomes. Per-shard slices stay in batch order, so sequenced
        // semantics (remove a site, re-add it; add a trajectory, remove
        // it) match the monolithic store's.
        enum Placed {
            /// Failed router-side validation (off-network node).
            Rejected,
            Add {
                slots: Vec<(usize, usize)>,
            },
            Remove {
                slots: Vec<(usize, usize)>,
            },
            Site {
                slot: (usize, usize),
            },
        }
        let mut placements: Vec<Placed> = Vec::new();
        for op in batch {
            match op {
                UpdateOp::AddTrajectory(traj) => {
                    if traj
                        .nodes()
                        .iter()
                        .any(|v| v.index() >= inner.net.node_count())
                    {
                        placements.push(Placed::Rejected);
                        continue;
                    }
                    let owners = netclus::shards_of_trajectory(&inner.partition, &traj);
                    let id = TrajId(state.next_id as u32);
                    state.next_id += 1;
                    let mut slots = Vec::with_capacity(owners.len());
                    for &s in &owners {
                        slots.push((s as usize, routed[s as usize].len()));
                        routed[s as usize].push(RoutedOp::AddTrajectoryAt(id, traj.clone()));
                    }
                    placements.push(Placed::Add { slots });
                }
                UpdateOp::RemoveTrajectory(id) => {
                    let mut slots = Vec::with_capacity(lanes);
                    for (s, ops) in routed.iter_mut().enumerate() {
                        slots.push((s, ops.len()));
                        ops.push(RoutedOp::RemoveTrajectory(id));
                    }
                    placements.push(Placed::Remove { slots });
                }
                UpdateOp::AddSite(v) => {
                    if v.index() >= inner.net.node_count() {
                        placements.push(Placed::Rejected);
                        continue;
                    }
                    let s = inner.partition.shard_of(v) as usize;
                    let slot = (s, routed[s].len());
                    routed[s].push(RoutedOp::AddSite(v));
                    placements.push(Placed::Site { slot });
                }
                UpdateOp::RemoveSite(v) => {
                    if v.index() >= inner.net.node_count() {
                        placements.push(Placed::Rejected);
                        continue;
                    }
                    let s = inner.partition.shard_of(v) as usize;
                    let slot = (s, routed[s].len());
                    routed[s].push(RoutedOp::RemoveSite(v));
                    placements.push(Placed::Site { slot });
                }
            }
        }
        // Ship every slice — empty ones too, lockstep epochs advance on
        // every batch — to **every replica** of every shard, and collect
        // the per-op acks. Replicas hold bit-identical corpora, so the
        // first successful replica's ack vector is authoritative for the
        // receipt; a replica whose apply fails misses the batch and falls
        // behind the lockstep epoch, which excludes it from primary
        // selection until it resyncs ([`ShardRouter::resync_replica`] or
        // `netclus-shardd --join`).
        let mut epoch = state.epoch;
        let mut acks: Vec<Vec<bool>> = Vec::with_capacity(lanes);
        for (set, ops) in inner.transports.iter().zip(&routed) {
            let mut shard_acks: Option<Vec<bool>> = None;
            for transport in set {
                match transport.apply(ops) {
                    Ok(outcome) => {
                        epoch = epoch.max(outcome.epoch);
                        if shard_acks.is_none() {
                            let mut results = outcome.results;
                            // Defensive against a short remote ack
                            // vector: a missing ack reads as "not
                            // applied".
                            results.resize(ops.len(), false);
                            shard_acks = Some(results);
                        }
                    }
                    Err(_) => {
                        inner.faultc.shard_failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            acks.push(shard_acks.unwrap_or_else(|| vec![false; ops.len()]));
        }
        state.epoch = epoch;
        // Reconstruct the receipt and replication gauges from the acks.
        // The per-shard counts stay exact under partial failure (they
        // track actual acks — what the degraded-answer bound needs); the
        // global trajectory/boundary figures are exact whenever every
        // owner acked, which is always the case in-process.
        let mut applied = 0usize;
        let mut rejected = 0usize;
        for placed in placements {
            match placed {
                Placed::Rejected => rejected += 1,
                Placed::Add { slots } => {
                    let acked: Vec<usize> = slots
                        .iter()
                        .filter(|&&(s, i)| acks[s][i])
                        .map(|&(s, _)| s)
                        .collect();
                    if !acked.is_empty() && acked.len() == slots.len() {
                        applied += 1;
                    } else {
                        rejected += 1;
                    }
                    if !acked.is_empty() {
                        state.replication.trajectories += 1;
                        state.replication.replicas += acked.len();
                        if acked.len() >= 2 {
                            state.replication.boundary += 1;
                        }
                        for s in acked {
                            state.replication.per_shard[s] += 1;
                        }
                    }
                }
                Placed::Remove { slots } => {
                    let acked: Vec<usize> = slots
                        .iter()
                        .filter(|&&(s, i)| acks[s][i])
                        .map(|&(s, _)| s)
                        .collect();
                    if acked.is_empty() {
                        rejected += 1;
                    } else {
                        applied += 1;
                        // Saturating: a remote-connected router seeds the
                        // global gauges from hello handshakes, which carry
                        // per-shard live counts but not the boundary
                        // split — removing a cross-shard trajectory must
                        // not underflow the best-effort figures.
                        let r = &mut state.replication;
                        r.trajectories = r.trajectories.saturating_sub(1);
                        r.replicas = r.replicas.saturating_sub(acked.len());
                        if acked.len() >= 2 {
                            r.boundary = r.boundary.saturating_sub(1);
                        }
                        for s in acked {
                            r.per_shard[s] = r.per_shard[s].saturating_sub(1);
                        }
                    }
                }
                Placed::Site { slot: (s, i) } => {
                    if acks[s][i] {
                        applied += 1;
                    } else {
                        rejected += 1;
                    }
                }
            }
        }
        // The new lockstep epoch makes every older cache key unreachable;
        // purge eagerly so stale providers/rounds release their memory.
        if let Some(providers) = &inner.providers {
            providers.invalidate_before(epoch);
        }
        if let Some(rounds) = &inner.rounds {
            rounds.invalidate_before(epoch);
        }
        let metrics = &inner.clock.metrics;
        metrics.update_latency.record(t.elapsed());
        metrics.epoch_advances.fetch_add(1, Ordering::Relaxed);
        metrics
            .updates_applied
            .fetch_add(applied as u64, Ordering::Relaxed);
        UpdateReceipt {
            epoch,
            applied,
            rejected,
        }
    }

    /// Pins shard `s`'s current snapshot (out-of-band inspection; with
    /// replicas, the preferred replica's).
    ///
    /// # Panics
    /// When shard `s` is served by a remote transport — a remote shard's
    /// snapshot is not addressable from the router process.
    pub fn shard_snapshot(&self, s: usize) -> Arc<crate::snapshot::Snapshot> {
        let set = &self.inner.transports[s];
        let pref = self.inner.preferred[s].load(Ordering::Relaxed) % set.len();
        set[pref]
            .local_store()
            .expect("shard_snapshot requires an in-process shard")
            .load()
    }

    /// Catches replica `replica` of shard `s` up to the live lockstep
    /// epoch: under the update write lock (no applies or queries can
    /// interleave), a healthy sibling at the lockstep epoch serves its
    /// full corpus snapshot and the lagging replica installs it
    /// wholesale, adopting the snapshot's epoch. Index construction is
    /// deterministic in the corpus, so the rejoined replica serves
    /// **bit-identical** round-1 answers from the first query after the
    /// resync. Returns the epoch the replica was synced to.
    ///
    /// # Errors
    /// [`ShardFailure::Unreachable`] when no healthy sibling at the
    /// lockstep epoch exists (or the target transport cannot install —
    /// remote replicas rejoin via `netclus-shardd --join` instead), or
    /// the sibling's fetch failure.
    ///
    /// # Panics
    /// When `s` or `replica` is out of range.
    pub fn resync_replica(&self, s: usize, replica: usize) -> Result<u64, ShardFailure> {
        let inner = &*self.inner;
        let state = inner
            .update_lock
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let set = &inner.transports[s];
        let n = set.len();
        let pref = inner.preferred[s].load(Ordering::Relaxed) % n;
        let mut last = ShardFailure::Unreachable;
        for j in 0..n {
            let src = (pref + j) % n;
            if src == replica || set[src].epoch() != state.epoch {
                continue;
            }
            match set[src].fetch_resync() {
                Ok(snap) => {
                    debug_assert_eq!(snap.epoch, state.epoch, "source pinned under write lock");
                    set[replica].install_resync(&snap)?;
                    inner.faultc.resyncs.fetch_add(1, Ordering::Relaxed);
                    return Ok(snap.epoch);
                }
                Err(failure) => last = failure,
            }
        }
        Err(last)
    }

    /// The replica-divergence gauge: the largest number of epochs any
    /// replica lags the lockstep epoch by, across every shard. Zero when
    /// every replica of every shard is caught up — the steady state; a
    /// persistent positive lag means a replica is missing applies and
    /// needs a resync.
    pub fn replica_lag_max(&self) -> u64 {
        let inner = &*self.inner;
        let state = read_recover(&inner.update_lock);
        let epoch = state.epoch;
        drop(state);
        inner
            .transports
            .iter()
            .flat_map(|set| set.iter())
            .map(|t| epoch.saturating_sub(t.epoch()))
            .max()
            .unwrap_or(0)
    }

    /// A point-in-time report with the scatter-gather section filled.
    pub fn metrics_report(&self) -> MetricsReport {
        let inner = &*self.inner;
        let state = read_recover(&inner.update_lock);
        let replication = state.replication.clone();
        let epoch = state.epoch;
        drop(state);
        let provider_stats = inner
            .providers
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default();
        let round_stats = inner.rounds.as_ref().map(|r| r.stats()).unwrap_or_default();
        let mut report = inner.clock.metrics.report(
            inner.clock.uptime(),
            epoch,
            self.workers.lock().map(|w| w.len()).unwrap_or(0).max(1),
            Default::default(),
            // The router's shared provider cache reports through the
            // standard provider slot so `provider_hit_rate()` and the
            // provider_* JSON fields work for router reports too.
            provider_stats,
        );
        // Transport RPC rollup across remote lanes: counts sum; the
        // latency percentiles take the worst lane (conservative — exact
        // cross-lane percentiles would need histogram merging) while the
        // mean is count-weighted.
        let mut transport_requests = 0u64;
        let mut transport_errors = 0u64;
        let mut transport_reconnects = 0u64;
        let mut transport_rpc = LatencySummary::default();
        let mut rpc_mean_acc = 0.0f64;
        for transport in inner.transports.iter().flat_map(|set| set.iter()) {
            if let Some(counters) = transport.counters() {
                let snap = counters.snapshot();
                transport_requests += snap.requests;
                transport_errors += snap.errors;
                transport_reconnects += snap.reconnects;
                rpc_mean_acc += snap.rpc.mean_micros as f64 * snap.rpc.count as f64;
                transport_rpc.count += snap.rpc.count;
                transport_rpc.p50_micros = transport_rpc.p50_micros.max(snap.rpc.p50_micros);
                transport_rpc.p95_micros = transport_rpc.p95_micros.max(snap.rpc.p95_micros);
                transport_rpc.p99_micros = transport_rpc.p99_micros.max(snap.rpc.p99_micros);
                transport_rpc.max_micros = transport_rpc.max_micros.max(snap.rpc.max_micros);
            }
        }
        if transport_rpc.count > 0 {
            transport_rpc.mean_micros = (rpc_mean_acc / transport_rpc.count as f64) as u64;
        }
        report.shards = Some(ShardReport {
            lanes: inner
                .shard_latency
                .iter()
                .zip(&inner.shard_tasks)
                .enumerate()
                .map(|(s, (hist, tasks))| {
                    let gauge = inner.gauges[s].snapshot();
                    ShardLaneReport {
                        shard: s as u32,
                        queries: tasks.load(Ordering::Relaxed),
                        latency: hist.summary(),
                        replicated_trajs: replication.per_shard.get(s).copied().unwrap_or(0) as u64,
                        qps_ewma: gauge.qps_ewma,
                        cache_heat: gauge.cache_heat,
                        cold_fraction: gauge.cold_fraction,
                        transport: inner.transports[s][0].kind(),
                    }
                })
                .collect(),
            merge: inner.merge_latency.summary(),
            fanout_queries: inner.fanout_queries.load(Ordering::Relaxed),
            providers: provider_stats,
            rounds: round_stats,
            hot: inner.hot_latency.summary(),
            cold: inner.cold_latency.summary(),
            trajectories: replication.trajectories as u64,
            boundary_trajs: replication.boundary as u64,
            replicas: replication.replicas as u64,
            replica_lag_max: inner
                .transports
                .iter()
                .flat_map(|set| set.iter())
                .map(|t| epoch.saturating_sub(t.epoch()))
                .max()
                .unwrap_or(0),
            fault: self.fault_report(),
            transport_requests,
            transport_errors,
            transport_reconnects,
            transport_rpc,
        });
        // Arena residency is only meaningful when every replica's index
        // lives in this process; a cluster of remote shards reports none.
        let total_replicas: usize = inner.transports.iter().map(Vec::len).sum();
        let local: Vec<&SnapshotStore> = inner
            .transports
            .iter()
            .flat_map(|set| set.iter())
            .filter_map(|t| t.local_store())
            .collect();
        report.process.arena_resident_bytes = (local.len() == total_replicas).then(|| {
            local
                .iter()
                .map(|s| s.load().index().heap_size_bytes() as u64)
                .sum()
        });
        report
    }

    /// The full metrics surface flattened into flight-recorder samples
    /// (metrics report incl. per-shard lanes + stage/trace counters) —
    /// plug this into [`crate::flight::FlightSampler::start`].
    pub fn flight_sample(&self) -> Vec<(String, f64)> {
        let mut sample = crate::flight::flatten_json(&self.metrics_report().to_json_line());
        sample.extend(crate::flight::flatten_json(
            &self.inner.tracer.stats_json_line(),
        ));
        sample
    }

    /// The query-path tracer (per-stage histograms + slow-query log).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// The current [`FaultReport`]: central fault counters plus summed
    /// breaker transitions and the number of currently-open breakers.
    pub fn fault_report(&self) -> FaultReport {
        let inner = &*self.inner;
        let c = &inner.faultc;
        let mut opens = 0u64;
        let mut probes = 0u64;
        let mut closes = 0u64;
        let mut open_shards = 0u64;
        for set in &inner.breakers {
            let mut all_open = !set.is_empty();
            for breaker in set {
                let snap = breaker.snapshot();
                opens += snap.opens;
                probes += snap.probes;
                closes += snap.closes;
                all_open &= snap.state == crate::fault::BreakerState::Open;
            }
            // A shard counts as breaker-open only when **every** replica's
            // breaker is open — one healthy replica keeps it serving.
            if all_open {
                open_shards += 1;
            }
        }
        FaultReport {
            degraded_answers: c.degraded_answers.load(Ordering::Relaxed),
            stale_answers: c.stale_answers.load(Ordering::Relaxed),
            shard_failures: c.shard_failures.load(Ordering::Relaxed),
            shard_timeouts: c.shard_timeouts.load(Ordering::Relaxed),
            deadline_exceeded: c.deadline_exceeded.load(Ordering::Relaxed),
            breaker_opens: opens,
            breaker_probes: probes,
            breaker_closes: closes,
            breaker_skips: c.breaker_skips.load(Ordering::Relaxed),
            breaker_open_shards: open_shards,
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            worker_respawns: c.worker_respawns.load(Ordering::Relaxed),
            abandoned_gathers: c.abandoned_gathers.load(Ordering::Relaxed),
            unavailable_answers: c.unavailable_answers.load(Ordering::Relaxed),
            hedged_requests: c.hedged_requests.load(Ordering::Relaxed),
            hedge_wins: c.hedge_wins.load(Ordering::Relaxed),
            replica_failovers: c.replica_failovers.load(Ordering::Relaxed),
            resyncs: c.resyncs.load(Ordering::Relaxed),
        }
    }

    /// Stops the workers and joins them. Idempotent; also run by `Drop`.
    pub fn shutdown(&self) {
        self.inner.stopping.store(true, Ordering::Release);
        {
            let mut queue = lock_recover(&self.inner.queue);
            queue.shutdown = true;
        }
        self.inner.queue_cv.notify_all();
        let mut workers = lock_recover(&self.workers);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl UpdateSink for ShardRouter {
    fn sink_epoch(&self) -> u64 {
        self.epoch()
    }

    fn sink_net(&self) -> Arc<RoadNetwork> {
        Arc::clone(&self.inner.net)
    }

    fn sink_traj_id_bound(&self) -> usize {
        read_recover(&self.inner.update_lock).next_id as usize
    }

    fn apply_batch(&self, ops: &[UpdateOp]) -> UpdateReceipt {
        self.apply_updates(ops.to_vec())
    }
}

/// Guards one task's reply sender: however the task ends — normal reply,
/// injected error, shed, or a panic unwinding through the worker — the
/// gather hears something typed, or the drop is accounted.
struct ReplyGuard<'a> {
    reply: Option<Sender<ShardReplyMsg>>,
    shard: u32,
    replica: u32,
    abandoned: &'a AtomicU64,
}

impl ReplyGuard<'_> {
    /// Sends the task's outcome. A failed send means the gather stopped
    /// listening (deadline given up, client gone, or a hedged sibling
    /// already won) — counted as an abandoned gather instead of silently
    /// ignored.
    fn send(mut self, result: Result<Round1Ok, ShardFailure>) {
        if let Some(tx) = self.reply.take() {
            if tx.send((self.shard, self.replica, result)).is_err() {
                self.abandoned.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drops the reply without sending — only for the injected
    /// [`FaultAction::Drop`](crate::fault::FaultAction::Drop), which
    /// models exactly this.
    fn disarm(mut self) {
        self.reply = None;
    }
}

impl Drop for ReplyGuard<'_> {
    fn drop(&mut self) {
        // Reached with the sender still armed only when a panic unwinds
        // through the task: convert the crash into a typed failure so the
        // gather never hangs on a dead worker.
        if let Some(tx) = self.reply.take() {
            if tx
                .send((self.shard, self.replica, Err(ShardFailure::Panicked)))
                .is_err()
            {
                self.abandoned.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Worker thread entry: supervises [`worker_loop`]. A panic (injected or
/// organic) unwinds out of the loop — the in-flight task already replied
/// `Panicked` via its [`ReplyGuard`] — and the supervisor counts it and
/// respawns the loop with fresh scratch, so one poisoned task never costs
/// a worker. `catch_unwind` is safe code; the loop state it discards is
/// per-iteration only.
fn worker_entry(inner: &RouterInner) {
    loop {
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker_loop(inner)));
        match run {
            Ok(()) => return,
            Err(_) => {
                inner.faultc.worker_panics.fetch_add(1, Ordering::Relaxed);
                if inner.stopping.load(Ordering::Acquire) {
                    return;
                }
                inner.faultc.worker_respawns.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Worker loop: pop a shard task, pin that shard's snapshot, run round 1.
/// Each worker owns one [`ProviderScratch`] reused across tasks.
///
/// Round-1 resolution order, cheapest first:
///
/// 1. **candidate memo** — `(epoch, shard, τ, ψ)` with a memoized `k ≥`
///    the request: answer by prefix slicing, no provider touched;
/// 2. **provider cache** — single-flight `get_or_build` per
///    `(epoch, shard, instance, τ)`, then the lazy local greedy on it;
/// 3. **cold build** — caches disabled: the original rebuild-per-query
///    path.
///
/// A task is *hot* when it performed no provider build (paths 1, and 2 on
/// a hit; a coalesced wait rides a build, so it counts cold).
///
/// Before any of that, the task passes the fault hook (an installed
/// [`FaultPlan`] may delay, fail, panic, or drop it) and the deadline
/// shed (a task popped after its round-1 budget replies `TimedOut`
/// instead of computing an answer the gather has abandoned).
fn worker_loop(inner: &RouterInner) {
    let mut scratch = ProviderScratch::default();
    loop {
        let task = {
            let mut queue = lock_recover(&inner.queue);
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    return;
                }
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        inner.clock.metrics.queue_exit(1);
        let ShardTask {
            shard,
            replica,
            query,
            deadline,
            reply,
        } = task;
        let lane = shard as usize;
        // Per-shard task sequence number (shared by the shard's
        // replicas): drives both the lane query counter and the fault
        // plan's scheduled windows.
        let seq = inner.shard_tasks[lane].fetch_add(1, Ordering::Relaxed);
        let guard = ReplyGuard {
            reply: Some(reply),
            shard,
            replica,
            abandoned: &inner.faultc.abandoned_gathers,
        };
        // Fault-injection hook: one relaxed load when disabled.
        if inner.fault_on.load(Ordering::Acquire) {
            let plan = read_recover(&inner.fault_plan).clone();
            if let Some(action) = plan.and_then(|p| p.decide(shard, replica, seq)) {
                use crate::fault::FaultAction;
                match action {
                    // Socket-level actions degrade to their nearest
                    // in-process analog here; over a real socket the
                    // shard server applies them to the stream itself.
                    FaultAction::Delay(d) | FaultAction::Stall(d) => std::thread::sleep(d),
                    FaultAction::Error => {
                        guard.send(Err(ShardFailure::Injected));
                        continue;
                    }
                    FaultAction::Panic => {
                        panic!("injected panic: shard {shard} task {seq}")
                    }
                    FaultAction::Drop | FaultAction::DropConnection => {
                        guard.disarm();
                        continue;
                    }
                    FaultAction::CorruptFrame => {
                        guard.send(Err(ShardFailure::CorruptReply));
                        continue;
                    }
                }
            }
        }
        // Deadline shed: the gather stops listening at the round-1
        // budget; don't compute an answer nobody will read.
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                guard.send(Err(ShardFailure::TimedOut));
                continue;
            }
        }
        // Dispatch through the shard's transport: in-process runs the
        // memo → provider → cold resolution right here against the
        // router-shared caches; remote issues one framed RPC (the server
        // keeps its own caches) and maps socket failures to the
        // taxonomy.
        let t = Instant::now();
        let mut ctx = Round1Ctx {
            shard,
            deadline,
            providers: inner.providers.as_ref(),
            rounds: inner.rounds.as_ref(),
            build_threads: inner.build_threads,
            scratch: &mut scratch,
            provider_build: &inner.clock.metrics.provider_build,
        };
        let result = inner.transports[lane][replica as usize].round1(&query, &mut ctx);
        inner.shard_latency[lane].record(t.elapsed());
        if let Ok(ok) = &result {
            inner.gauges[lane].observe(ok.source);
        }
        guard.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclus::prelude::*;
    use netclus_roadnet::{Point, RoadNetworkBuilder};
    use netclus_trajectory::{Trajectory, TrajectorySet};

    /// Two far-separated 12-node lines; trajectories confined per region.
    fn fixture() -> (
        Arc<RoadNetwork>,
        TrajectorySet,
        Vec<NodeId>,
        RegionPartition,
    ) {
        let mut b = RoadNetworkBuilder::new();
        for region in 0..2 {
            let x0 = region as f64 * 1_000_000.0;
            let base = b.node_count() as u32;
            for i in 0..12 {
                b.add_node(Point::new(x0 + i as f64 * 100.0, 0.0));
            }
            for i in 0..11u32 {
                b.add_two_way(NodeId(base + i), NodeId(base + i + 1), 100.0)
                    .unwrap();
            }
        }
        let net = Arc::new(b.build().unwrap());
        let mut trajs = TrajectorySet::for_network(&net);
        for s in 0..5u32 {
            trajs.add(Trajectory::new((s..s + 6).map(NodeId).collect()));
        }
        for s in 0..3u32 {
            trajs.add(Trajectory::new((12 + s..12 + s + 5).map(NodeId).collect()));
        }
        let sites: Vec<NodeId> = net.nodes().collect();
        let partition = RegionPartition::build(&net, 2);
        (net, trajs, sites, partition)
    }

    fn router(workers: usize) -> (ShardRouter, Arc<RoadNetwork>, TrajectorySet, Vec<NodeId>) {
        let (net, trajs, sites, partition) = fixture();
        let cfg = NetClusConfig {
            tau_min: 200.0,
            tau_max: 3_000.0,
            threads: 1,
            ..Default::default()
        };
        let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, cfg);
        let router = ShardRouter::start(
            Arc::clone(&net),
            sharded,
            ShardRouterConfig {
                workers,
                ..Default::default()
            },
        )
        .expect("start router");
        (router, net, trajs, sites)
    }

    #[test]
    fn scatter_gather_matches_direct_sharded_query() {
        let (router, net, trajs, sites) = router(2);
        let cfg = NetClusConfig {
            tau_min: 200.0,
            tau_max: 3_000.0,
            threads: 1,
            ..Default::default()
        };
        let partition = RegionPartition::build(&net, 2);
        let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, cfg);
        for (k, tau) in [(1, 400.0), (2, 800.0), (3, 1_200.0)] {
            let q = TopsQuery::binary(k, tau);
            let served = router.query_blocking(q).unwrap();
            let direct = sharded.query(&q);
            assert_eq!(served.sites, direct.solution.sites, "k={k} τ={tau}");
            assert_eq!(served.epoch, 0);
            assert_eq!(served.shard_micros.len(), 2);
        }
        let report = router.metrics_report();
        assert_eq!(report.completed, 3);
        let shards = report.shards.expect("router report carries shards");
        assert_eq!(shards.fanout_queries, 3);
        assert_eq!(shards.lanes.len(), 2);
        assert_eq!(shards.lanes[0].queries, 3);
        assert_eq!(shards.lanes[1].queries, 3);
        assert_eq!(shards.trajectories, 8);
        router.shutdown();
    }

    #[test]
    fn routed_updates_keep_epochs_lockstep_and_ids_global() {
        let (router, ..) = router(2);
        assert_eq!(router.epoch(), 0);
        // A trajectory in region 1 only: shard 1 gets the op, shard 0 an
        // empty batch; both advance.
        let receipt = router.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
            (14..19).map(NodeId).collect(),
        ))]);
        assert_eq!(receipt.epoch, 1);
        assert_eq!((receipt.applied, receipt.rejected), (1, 0));
        assert_eq!(router.shard_snapshot(0).epoch(), 1);
        assert_eq!(router.shard_snapshot(1).epoch(), 1);
        // Global id 8 was assigned; shard 0 must have a tombstone-aligned
        // bound even though it never saw the trajectory.
        assert_eq!(router.shard_snapshot(1).trajs().id_bound(), 9);
        assert!(router.shard_snapshot(1).trajs().get(TrajId(8)).is_some());
        assert!(router.shard_snapshot(0).trajs().get(TrajId(8)).is_none());
        // The next add lands on id 9 in *both* shards' id space.
        let receipt = router.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
            (2..6).map(NodeId).collect(),
        ))]);
        assert_eq!(receipt.epoch, 2);
        assert!(router.shard_snapshot(0).trajs().get(TrajId(9)).is_some());
        assert_eq!(router.shard_snapshot(0).trajs().id_bound(), 10);
        // Queries see the new demand.
        let q = TopsQuery::binary(1, 600.0);
        let answer = router.query_blocking(q).unwrap();
        assert_eq!(answer.epoch, 2);
        router.shutdown();
    }

    #[test]
    fn update_replication_counters_track_adds_and_removes() {
        let (router, ..) = router(1);
        let before = router.metrics_report().shards.unwrap();
        assert_eq!(before.trajectories, 8);
        assert_eq!(before.boundary_trajs, 0);
        router.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
            (0..4).map(NodeId).collect(),
        ))]);
        let after = router.metrics_report().shards.unwrap();
        assert_eq!(after.trajectories, 9);
        assert_eq!(after.replicas, 9);
        router.apply_updates(vec![UpdateOp::RemoveTrajectory(TrajId(8))]);
        let removed = router.metrics_report().shards.unwrap();
        assert_eq!(removed.trajectories, 8);
        // Site ops route to the owning shard; a duplicate add is rejected.
        let r = router.apply_updates(vec![
            UpdateOp::RemoveSite(NodeId(3)),
            UpdateOp::AddSite(NodeId(3)),
            UpdateOp::AddSite(NodeId(4)),
        ]);
        assert_eq!((r.applied, r.rejected), (2, 1));
        router.shutdown();
    }

    #[test]
    fn in_batch_add_then_remove_matches_sequential_semantics() {
        let (router, ..) = router(1);
        // Initial corpus bound is 8, so the add receives global id 8; the
        // remove later in the same batch must see it, like the monolithic
        // store's sequential apply would.
        let r = router.apply_updates(vec![
            UpdateOp::AddTrajectory(Trajectory::new((0..4).map(NodeId).collect())),
            UpdateOp::RemoveTrajectory(TrajId(8)),
            UpdateOp::RemoveTrajectory(TrajId(8)), // double remove: no-op
        ]);
        assert_eq!((r.applied, r.rejected), (2, 1));
        assert!(router.shard_snapshot(0).trajs().get(TrajId(8)).is_none());
        let rep = router.metrics_report().shards.unwrap();
        assert_eq!(rep.trajectories, 8, "replication gauge must unwind");
        assert_eq!(rep.replicas, 8);
        router.shutdown();
    }

    #[test]
    fn warm_queries_hit_caches_and_fill_the_hot_lane() {
        let (router, net, trajs, sites) = router(2);
        let cold = {
            let cfg = NetClusConfig {
                tau_min: 200.0,
                tau_max: 3_000.0,
                threads: 1,
                ..Default::default()
            };
            let partition = RegionPartition::build(&net, 2);
            let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, cfg);
            ShardRouter::start(Arc::clone(&net), sharded, ShardRouterConfig::uncached())
                .expect("start router")
        };
        // Query 1 (k=3): cold — both shards build providers.
        // Query 2 (k=3, same τ): memo hit on both shards.
        // Query 3 (k=2, same τ): prefix hit (k' < memoized k).
        // Query 4 (k=5, same τ): memo miss, provider-cache hit, upgrade.
        for k in [3usize, 3, 2, 5] {
            let q = TopsQuery::binary(k, 800.0);
            let warm = router.query_blocking(q).unwrap();
            let reference = cold.query_blocking(q).unwrap();
            assert_eq!(warm.sites, reference.sites, "k={k}");
            assert_eq!(warm.utility.to_bits(), reference.utility.to_bits());
        }
        let report = router.metrics_report();
        let shards = report.shards.clone().expect("shard section");
        assert_eq!(shards.providers.misses, 2, "one build per shard, once");
        assert_eq!(shards.providers.hits, 2, "k=5 re-ran on cached providers");
        assert_eq!(shards.rounds.misses, 4, "{:?}", shards.rounds);
        assert_eq!(shards.rounds.hits, 4, "{:?}", shards.rounds);
        assert_eq!(shards.hot.count, 3, "three warm fan-outs");
        assert_eq!(shards.cold.count, 1, "one cold fan-out");
        assert!(report.provider_hit_rate() > 0.0);
        // The cold reference router never touched a cache.
        let creport = cold.metrics_report();
        let cshards = creport.shards.expect("shard section");
        assert_eq!(cshards.providers.hits + cshards.providers.misses, 0);
        assert_eq!(cshards.hot.count, 0);
        assert_eq!(cshards.cold.count, 4);
        router.shutdown();
        cold.shutdown();
    }

    #[test]
    fn epoch_advance_invalidates_router_caches() {
        let (router, ..) = router(1);
        let q = TopsQuery::binary(2, 700.0);
        router.query_blocking(q).unwrap();
        router.query_blocking(q).unwrap();
        let warm = router.metrics_report().shards.unwrap();
        assert!(warm.providers.entries > 0);
        assert!(warm.rounds.entries > 0);
        assert_eq!(warm.rounds.hits, 2, "one memo hit per shard");
        // An update advances the lockstep epoch and purges both caches.
        router.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
            (0..4).map(NodeId).collect(),
        ))]);
        let purged = router.metrics_report().shards.unwrap();
        assert_eq!(purged.providers.entries, 0, "stale provider survived");
        assert_eq!(purged.rounds.entries, 0, "stale round survived");
        assert!(purged.providers.invalidated > 0);
        assert!(purged.rounds.invalidated > 0);
        // The next query rebuilds against the new epoch (a cold fan-out).
        let fresh = router.query_blocking(q).unwrap();
        assert_eq!(fresh.epoch, 1);
        let after = router.metrics_report().shards.unwrap();
        assert_eq!(after.cold.count, 2);
        router.shutdown();
    }

    #[test]
    fn invalid_queries_fail_fast_and_shutdown_is_terminal() {
        let (router, ..) = router(1);
        assert!(matches!(
            router.query_blocking(TopsQuery::binary(0, 500.0)),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            router.query_blocking(TopsQuery::binary(1, -4.0)),
            Err(SubmitError::Invalid(_))
        ));
        router.shutdown();
        router.shutdown();
        assert!(matches!(
            router.query_blocking(TopsQuery::binary(1, 500.0)),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn concurrent_queries_and_updates_never_tear() {
        let (router, ..) = router(3);
        let router = Arc::new(router);
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let r = Arc::clone(&router);
            let s = Arc::clone(&stop);
            scope.spawn(move || {
                for i in 0..20 {
                    r.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
                        ((i % 6)..(i % 6) + 4).map(NodeId).collect(),
                    ))]);
                }
                s.store(true, Ordering::Release);
            });
            for _ in 0..2 {
                let r = Arc::clone(&router);
                let s = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut n = 0u32;
                    while !s.load(Ordering::Acquire) || n == 0 {
                        let a = r.query_blocking(TopsQuery::binary(2, 700.0)).unwrap();
                        // The gather asserts lockstep internally; the
                        // answer must also be self-consistent.
                        assert!(a.epoch <= 20);
                        n += 1;
                    }
                });
            }
        });
        assert_eq!(router.epoch(), 20);
        router.shutdown();
    }

    use crate::fault::{BreakerState, FaultAction, FaultRule};

    #[test]
    fn injected_error_degrades_with_a_conservative_bound() {
        let (router, ..) = router(2);
        let q = TopsQuery::binary(2, 800.0);
        router.set_fault_plan(Some(
            FaultPlan::new(7).with_rule(FaultRule::always(1, FaultAction::Error)),
        ));
        let degraded = router.query(q, &QueryOptions::default()).unwrap();
        assert!(degraded.degraded);
        assert!(!degraded.stale);
        assert_eq!(degraded.shards_missing, vec![1]);
        assert!(degraded.utility > 0.0, "survivor still answers");
        // The bound must be conservative against the true achieved ratio.
        router.set_fault_plan(None);
        let full = router.query(q, &QueryOptions::default()).unwrap();
        assert!(!full.degraded);
        assert_eq!(full.utility_bound, 1.0);
        let true_ratio = degraded.utility / full.utility;
        assert!(
            degraded.utility_bound >= 0.0 && degraded.utility_bound <= 1.0,
            "bound out of range: {}",
            degraded.utility_bound
        );
        assert!(
            degraded.utility_bound <= true_ratio + 1e-9,
            "bound {} exceeds true ratio {true_ratio}",
            degraded.utility_bound
        );
        assert!(true_ratio <= 1.0 + 1e-9);
        let fault = router.fault_report();
        assert_eq!(fault.degraded_answers, 1);
        assert!(fault.shard_failures >= 1);
        router.shutdown();
    }

    #[test]
    fn full_outage_serves_stale_then_fails_typed() {
        let (router, ..) = router(2);
        let q = TopsQuery::binary(2, 800.0);
        // Warm the stale fallback with a full answer for this shape.
        let fresh = router.query(q, &QueryOptions::default()).unwrap();
        router.set_fault_plan(Some(
            FaultPlan::new(1)
                .with_rule(FaultRule::always(0, FaultAction::Error))
                .with_rule(FaultRule::always(1, FaultAction::Error)),
        ));
        let stale = router.query(q, &QueryOptions::default()).unwrap();
        assert!(stale.stale && stale.degraded);
        assert_eq!(stale.shards_missing, vec![0, 1]);
        assert_eq!(
            stale.sites, fresh.sites,
            "stale answer replays the cached one"
        );
        assert_eq!(stale.epoch, fresh.epoch);
        // A shape never answered before has no fallback: typed error.
        match router.query(TopsQuery::binary(3, 800.0), &QueryOptions::default()) {
            Err(QueryError::Unavailable { failures }) => {
                assert_eq!(failures.len(), 2);
                assert!(failures.iter().all(|(_, f)| *f == ShardFailure::Injected));
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
        let fault = router.fault_report();
        assert_eq!(fault.stale_answers, 1);
        assert_eq!(fault.unavailable_answers, 1);
        router.shutdown();
    }

    #[test]
    fn deadline_bounds_the_wait_with_a_typed_error() {
        let (router, ..) = router(2);
        let q = TopsQuery::binary(2, 800.0);
        router.set_fault_plan(Some(
            FaultPlan::new(3)
                .with_rule(FaultRule::always(
                    0,
                    FaultAction::Delay(Duration::from_millis(400)),
                ))
                .with_rule(FaultRule::always(
                    1,
                    FaultAction::Delay(Duration::from_millis(400)),
                )),
        ));
        let start = Instant::now();
        let opts = QueryOptions::with_deadline(Duration::from_millis(60));
        match router.query(q, &opts) {
            Err(QueryError::DeadlineExceeded { deadline }) => {
                assert_eq!(deadline, Duration::from_millis(60));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_millis(350),
            "query blocked past its budget: {:?}",
            start.elapsed()
        );
        assert!(router.fault_report().deadline_exceeded >= 1);
        // Once the delayed workers wake, their replies land on a gather
        // that already returned — counted, not silently ignored.
        router.set_fault_plan(None);
        let woke = Instant::now() + Duration::from_secs(5);
        while router.fault_report().abandoned_gathers == 0 && Instant::now() < woke {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(router.fault_report().abandoned_gathers >= 1);
        // The pool is healthy again afterwards.
        let ok = router.query(q, &QueryOptions::with_deadline(Duration::from_secs(30)));
        assert!(ok.unwrap().sites.len() == 2);
        router.shutdown();
    }

    #[test]
    fn slow_shard_degrades_within_the_budget() {
        let (router, ..) = router(2);
        let q = TopsQuery::binary(2, 800.0);
        router.set_fault_plan(Some(FaultPlan::new(5).with_rule(FaultRule::always(
            1,
            FaultAction::Delay(Duration::from_millis(500)),
        ))));
        let answer = router
            .query(q, &QueryOptions::with_deadline(Duration::from_millis(150)))
            .unwrap();
        assert!(answer.degraded);
        assert_eq!(answer.shards_missing, vec![1]);
        assert!(answer.utility_bound <= 1.0);
        assert!(router.fault_report().shard_timeouts >= 1);
        router.shutdown();
    }

    #[test]
    fn panicked_worker_is_typed_and_the_pool_respawns() {
        let (router, ..) = router(2);
        let q = TopsQuery::binary(2, 800.0);
        // Panic exactly once: shard 1's first task (seq 0) only.
        router.set_fault_plan(Some(FaultPlan::new(11).with_rule(FaultRule::outage(
            1,
            FaultAction::Panic,
            0,
            1,
        ))));
        let degraded = router.query(q, &QueryOptions::default()).unwrap();
        assert!(degraded.degraded, "panic must degrade, not wedge");
        assert_eq!(degraded.shards_missing, vec![1]);
        // The respawned worker serves shard 1 again (seq 1 is clean).
        let healed = router.query(q, &QueryOptions::default()).unwrap();
        assert!(!healed.degraded);
        // The typed reply races the supervisor's bookkeeping (the guard
        // fires during the unwind, before catch_unwind lands) — wait for
        // the counters rather than sampling them.
        let until = Instant::now() + Duration::from_secs(5);
        while router.fault_report().worker_respawns == 0 && Instant::now() < until {
            std::thread::sleep(Duration::from_millis(5));
        }
        let fault = router.fault_report();
        assert_eq!(fault.worker_panics, 1);
        assert_eq!(fault.worker_respawns, 1);
        router.shutdown();
    }

    #[test]
    fn breaker_opens_skips_and_recovers_through_a_probe() {
        let (net, trajs, sites, partition) = fixture();
        let cfg = NetClusConfig {
            tau_min: 200.0,
            tau_max: 3_000.0,
            threads: 1,
            ..Default::default()
        };
        let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, cfg);
        let router = ShardRouter::start(
            Arc::clone(&net),
            sharded,
            ShardRouterConfig {
                workers: 2,
                breaker: BreakerConfig {
                    failure_threshold: 1,
                    cooldown: Duration::from_millis(40),
                },
                ..Default::default()
            },
        )
        .expect("start router");
        let q = TopsQuery::binary(2, 800.0);
        router.set_fault_plan(Some(
            FaultPlan::new(2).with_rule(FaultRule::always(1, FaultAction::Error)),
        ));
        // Failure 1 trips the threshold-1 breaker open.
        let first = router.query(q, &QueryOptions::default()).unwrap();
        assert!(first.degraded);
        assert_eq!(router.breaker_snapshots()[1].state, BreakerState::Open);
        // While open and inside the cooldown, the shard is skipped at
        // scatter — no task is even queued for it.
        let skipped = router.query(q, &QueryOptions::default()).unwrap();
        assert!(skipped.degraded);
        assert!(router.fault_report().breaker_skips >= 1);
        // Recovery: clear the faults, wait out the cooldown; the next
        // query rides a half-open probe and closes the breaker.
        router.set_fault_plan(None);
        std::thread::sleep(Duration::from_millis(50));
        let probed = router.query(q, &QueryOptions::default()).unwrap();
        assert!(!probed.degraded, "successful probe restores the shard");
        let snap = &router.breaker_snapshots()[1];
        assert_eq!(snap.state, BreakerState::Closed);
        assert!(snap.opens >= 1 && snap.probes >= 1 && snap.closes >= 1);
        let fault = router.fault_report();
        assert!(fault.breaker_opens >= 1);
        assert!(fault.breaker_closes >= 1);
        assert_eq!(fault.breaker_open_shards, 0);
        // The telemetry payload reflects the recovered state.
        let json = router.breakers_json();
        assert!(json.contains("\"shards\":2"), "{json}");
        assert!(json.contains("\"open\":0"), "{json}");
        assert!(json.contains("\"breaker1_state\":\"closed\""), "{json}");
        router.shutdown();
    }

    fn replicated(replicas: usize, cfg: ShardRouterConfig) -> ShardRouter {
        let (net, trajs, sites, partition) = fixture();
        let ncfg = NetClusConfig {
            tau_min: 200.0,
            tau_max: 3_000.0,
            threads: 1,
            ..Default::default()
        };
        let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, ncfg);
        ShardRouter::start_replicated(net, sharded, replicas, cfg).expect("start replicated router")
    }

    #[test]
    fn replica_failover_preserves_the_answer_bit_for_bit() {
        let router = replicated(2, ShardRouterConfig::default());
        assert_eq!(router.replica_counts(), vec![2, 2]);
        assert_eq!(router.replica_breaker_snapshots(0).len(), 2);
        assert_eq!(router.replica_lag_max(), 0);
        let q = TopsQuery::binary(2, 800.0);
        let reference = router.query_blocking(q).unwrap();
        assert!(!reference.degraded);
        // Kill the preferred replica (0) of BOTH shards: every scatter
        // fails over to the sibling, and the answer must not change by a
        // single bit — replicas serve the identical deterministic round 1.
        router.set_fault_plan(Some(
            FaultPlan::new(21)
                .with_rule(FaultRule::always(0, FaultAction::Error).on_replica(0))
                .with_rule(FaultRule::always(1, FaultAction::Error).on_replica(0)),
        ));
        let failed_over = router.query_blocking(q).unwrap();
        assert!(!failed_over.degraded && !failed_over.stale);
        assert_eq!(failed_over.sites, reference.sites);
        assert_eq!(
            failed_over.utility.to_bits(),
            reference.utility.to_bits(),
            "failover answer must be bit-identical"
        );
        let fault = router.fault_report();
        assert_eq!(fault.degraded_answers, 0);
        assert!(fault.replica_failovers >= 2, "{fault:?}");
        // The winners became the preferred cursors: the next query goes
        // straight to the survivors without another failover.
        let failovers = fault.replica_failovers;
        let again = router.query_blocking(q).unwrap();
        assert!(!again.degraded);
        assert_eq!(router.fault_report().replica_failovers, failovers);
        router.shutdown();
    }

    #[test]
    fn hedge_fires_on_a_slow_preferred_replica_and_wins() {
        let router = replicated(2, ShardRouterConfig::default());
        let q = TopsQuery::binary(2, 800.0);
        let reference = router.query_blocking(q).unwrap();
        // Shard 0's preferred replica stalls far past the hedge delay;
        // the hedge wave fires its sibling, which wins the lane.
        router.set_fault_plan(Some(FaultPlan::new(23).with_rule(
            FaultRule::always(0, FaultAction::Delay(Duration::from_millis(400))).on_replica(0),
        )));
        let hedged = router.query_blocking(q).unwrap();
        assert!(!hedged.degraded && !hedged.stale);
        assert_eq!(hedged.sites, reference.sites);
        assert_eq!(hedged.utility.to_bits(), reference.utility.to_bits());
        let fault = router.fault_report();
        assert!(fault.hedged_requests >= 1, "{fault:?}");
        assert!(fault.hedge_wins >= 1, "{fault:?}");
        assert_eq!(fault.degraded_answers, 0);
        router.shutdown();
    }

    #[test]
    fn half_open_probe_rides_alongside_the_healthy_replica() {
        let router = replicated(
            2,
            ShardRouterConfig {
                breaker: BreakerConfig {
                    failure_threshold: 1,
                    cooldown: Duration::from_millis(40),
                },
                ..Default::default()
            },
        );
        let q = TopsQuery::binary(2, 800.0);
        router.set_fault_plan(Some(
            FaultPlan::new(29).with_rule(FaultRule::always(0, FaultAction::Error).on_replica(0)),
        ));
        // Failure 1 trips replica (0,0)'s breaker; the sibling serves.
        let first = router.query_blocking(q).unwrap();
        assert!(!first.degraded);
        assert_eq!(
            router.replica_breaker_snapshots(0)[0].state,
            BreakerState::Open
        );
        // Past the cooldown, the half-open probe fires IN ADDITION to the
        // healthy sibling — a still-broken replica failing its probe must
        // not cost the shard its full answer.
        std::thread::sleep(Duration::from_millis(50));
        let probed = router.query_blocking(q).unwrap();
        assert!(!probed.degraded, "probe stole the healthy replica's slot");
        let snaps = router.replica_breaker_snapshots(0);
        assert_eq!(snaps[0].state, BreakerState::Open, "failed probe reopens");
        assert!(snaps[0].probes >= 1);
        assert_eq!(snaps[1].state, BreakerState::Closed);
        assert_eq!(router.fault_report().degraded_answers, 0);
        // Once the replica heals, its next probe closes the breaker and
        // the full set serves again.
        router.set_fault_plan(None);
        std::thread::sleep(Duration::from_millis(50));
        let healed = router.query_blocking(q).unwrap();
        assert!(!healed.degraded);
        assert_eq!(
            router.replica_breaker_snapshots(0)[0].state,
            BreakerState::Closed
        );
        router.shutdown();
    }

    /// Test-only transport wrapper whose `apply` can be switched to fail,
    /// making its replica miss batches and fall behind the lockstep epoch.
    struct FlakyApply {
        inner: InProcessShard,
        fail: Arc<AtomicBool>,
    }

    impl ShardTransport for FlakyApply {
        fn kind(&self) -> &'static str {
            self.inner.kind()
        }
        fn round1(
            &self,
            query: &TopsQuery,
            ctx: &mut Round1Ctx<'_>,
        ) -> Result<Round1Ok, ShardFailure> {
            self.inner.round1(query, ctx)
        }
        fn apply(&self, ops: &[RoutedOp]) -> Result<ShardApplyOutcome, ShardFailure> {
            if self.fail.load(Ordering::Acquire) {
                return Err(ShardFailure::Unreachable);
            }
            self.inner.apply(ops)
        }
        fn epoch(&self) -> u64 {
            self.inner.epoch()
        }
        fn fetch_resync(&self) -> Result<ResyncSnapshot, ShardFailure> {
            self.inner.fetch_resync()
        }
        fn install_resync(&self, snap: &ResyncSnapshot) -> Result<(), ShardFailure> {
            self.inner.install_resync(snap)
        }
    }

    /// A 2-shard × 2-replica router where replica `(0, 1)`'s apply path
    /// is gated on the returned flag — flip it to make that replica miss
    /// batches and fall behind the lockstep epoch.
    fn flaky_replica_router() -> (ShardRouter, Arc<AtomicBool>) {
        let (net, trajs, sites, partition) = fixture();
        let ncfg = NetClusConfig {
            tau_min: 200.0,
            tau_max: 3_000.0,
            threads: 1,
            ..Default::default()
        };
        let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, ncfg);
        let next_id = sharded.traj_id_bound() as u64;
        let (partition, shards, replication) = sharded.into_parts();
        let fail = Arc::new(AtomicBool::new(false));
        let transports: Vec<Vec<Box<dyn ShardTransport>>> = shards
            .into_iter()
            .enumerate()
            .map(|(s, NetClusShard { trajs, index, .. })| {
                let store = |t: &TrajectorySet, i: &NetClusIndex| {
                    InProcessShard::new(SnapshotStore::with_shared_net(
                        Arc::clone(&net),
                        t.clone(),
                        i.clone(),
                    ))
                };
                let primary = Box::new(store(&trajs, &index)) as Box<dyn ShardTransport>;
                let sibling: Box<dyn ShardTransport> = if s == 0 {
                    Box::new(FlakyApply {
                        inner: store(&trajs, &index),
                        fail: Arc::clone(&fail),
                    })
                } else {
                    Box::new(store(&trajs, &index))
                };
                vec![primary, sibling]
            })
            .collect();
        let router = ShardRouter::start_with_replica_transports(
            Arc::clone(&net),
            partition,
            transports,
            next_id,
            0,
            replication,
            ShardRouterConfig::default(),
        )
        .expect("start router");
        (router, fail)
    }

    #[test]
    fn resync_catches_a_lagging_replica_up_to_the_live_epoch() {
        let (router, fail) = flaky_replica_router();
        // Replica (0,1) misses one batch and falls behind the lockstep
        // epoch; answers keep flowing from the caught-up replicas.
        fail.store(true, Ordering::Release);
        let receipt = router.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
            (0..4).map(NodeId).collect(),
        ))]);
        assert_eq!(receipt.epoch, 1);
        assert_eq!(router.replica_lag_max(), 1, "missed batch shows as lag");
        let q = TopsQuery::binary(2, 800.0);
        let reference = router.query_blocking(q).unwrap();
        assert!(!reference.degraded);
        assert_eq!(reference.epoch, 1);
        // Catch-up: resync from the healthy sibling restores the replica
        // to the live epoch wholesale.
        fail.store(false, Ordering::Release);
        assert_eq!(router.resync_replica(0, 1), Ok(1));
        assert_eq!(router.replica_lag_max(), 0);
        assert_eq!(router.fault_report().resyncs, 1);
        // The resynced replica serves the identical answer when the
        // former primary goes down.
        router.set_fault_plan(Some(
            FaultPlan::new(31).with_rule(FaultRule::always(0, FaultAction::Error).on_replica(0)),
        ));
        let served = router.query_blocking(q).unwrap();
        assert!(!served.degraded && !served.stale);
        assert_eq!(served.sites, reference.sites);
        assert_eq!(
            served.utility.to_bits(),
            reference.utility.to_bits(),
            "resynced replica must serve the bit-identical answer"
        );
        assert!(router.fault_report().replica_failovers >= 1);
        router.shutdown();
    }

    #[test]
    fn fault_counters_flow_into_flight_series() {
        let (router, ..) = router(1);
        router.set_fault_plan(Some(
            FaultPlan::new(9).with_rule(FaultRule::always(1, FaultAction::Error)),
        ));
        router
            .query(TopsQuery::binary(1, 600.0), &QueryOptions::default())
            .unwrap();
        let sample = router.flight_sample();
        let get = |key: &str| {
            sample
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("{key} missing from flight sample"))
                .1
        };
        assert_eq!(get("degraded_answers"), 1.0);
        assert!(get("shard_failures") >= 1.0);
        assert_eq!(get("breaker_opens"), 0.0);
        router.shutdown();
    }

    /// The replica-divergence SLO: a ceiling of zero on the
    /// `replica_lag_max` flight series fires while any replica is behind
    /// the lockstep epoch and clears once a resync catches it up.
    #[test]
    fn replica_divergence_slo_fires_on_lag_and_clears_after_resync() {
        let (router, fail) = flaky_replica_router();
        let recorder = crate::FlightRecorder::new(crate::FlightConfig {
            tick: Duration::from_secs(1),
            capacity: 64,
            downsample_every: 8,
            coarse_capacity: 8,
        });
        let health = crate::HealthEvaluator::new().with_rule(crate::SloRule::ceiling(
            "replica_divergence",
            "replica_lag_max",
            0.0,
            crate::Severity::Degrading,
        ));
        recorder.record_at(0.0, &router.flight_sample());
        assert_eq!(health.evaluate(&recorder).verdict, crate::Verdict::Healthy);

        // Replica (0,1) misses a batch: the gauge goes positive and the
        // ceiling rule fires by name.
        fail.store(true, Ordering::Release);
        router.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(
            (0..4).map(NodeId).collect(),
        ))]);
        recorder.record_at(1.0, &router.flight_sample());
        let report = health.evaluate(&recorder);
        assert_eq!(report.verdict, crate::Verdict::Degraded);
        assert_eq!(report.firing(), vec!["replica_divergence"]);

        // Catch-up resync clears the divergence and the verdict.
        fail.store(false, Ordering::Release);
        assert_eq!(router.resync_replica(0, 1), Ok(1));
        recorder.record_at(2.0, &router.flight_sample());
        assert_eq!(health.evaluate(&recorder).verdict, crate::Verdict::Healthy);
        router.shutdown();
    }
}
