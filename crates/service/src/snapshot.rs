//! Epoch-based snapshot store: readers never block, writers publish
//! atomically.
//!
//! The paper's dynamic-update machinery (Sec. 6) mutates the index in
//! place, which is fine for a single-threaded harness but unusable under
//! concurrent queries. Here the index and corpus are immutable behind an
//! [`Arc`]; a writer clones them (the road network itself is fixed, as in
//! the paper, so it is shared by `Arc` and never copied), applies a whole
//! [`UpdateBatch`] to the private copy, and publishes the result as the
//! next [`Snapshot`] with a single pointer swap. Readers pin a snapshot
//! with one `Arc` clone and keep answering from it even while newer epochs
//! are published — every answer is therefore internally consistent with
//! exactly one epoch, never a torn mix of two.

use std::sync::{Arc, Mutex, RwLock};

use netclus::NetClusIndex;
use netclus_roadnet::NodeId;
use netclus_trajectory::{TrajId, Trajectory, TrajectorySet};

/// One immutable published state of the service: the road network, the
/// trajectory corpus and the NetClus index, all as of one epoch.
#[derive(Clone, Debug)]
pub struct Snapshot {
    epoch: u64,
    net: Arc<netclus_roadnet::RoadNetwork>,
    trajs: Arc<TrajectorySet>,
    index: Arc<NetClusIndex>,
}

impl Snapshot {
    /// The epoch this snapshot was published under (0 = initial state).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The (fixed) road network.
    pub fn net(&self) -> &netclus_roadnet::RoadNetwork {
        &self.net
    }

    /// A shared handle to the (fixed) road network. The network never
    /// changes across epochs, so long-lived holders (e.g. the ingest
    /// pipeline's map-match workers) can keep this without pinning a whole
    /// snapshot — and with it an old trajectory corpus — alive.
    pub fn net_shared(&self) -> Arc<netclus_roadnet::RoadNetwork> {
        Arc::clone(&self.net)
    }

    /// The trajectory corpus as of this epoch.
    pub fn trajs(&self) -> &TrajectorySet {
        &self.trajs
    }

    /// The NetClus index as of this epoch.
    pub fn index(&self) -> &NetClusIndex {
        &self.index
    }
}

/// One mutation of the served state.
#[derive(Clone, Debug)]
pub enum UpdateOp {
    /// Adds a trajectory to the corpus and indexes it (paper Sec. 6.1).
    AddTrajectory(Trajectory),
    /// Removes a trajectory by id; a no-op if the id is dead or unknown.
    RemoveTrajectory(TrajId),
    /// Flags an existing network vertex as a candidate site (Sec. 6.2).
    AddSite(NodeId),
    /// Unflags a candidate site; a no-op if it was not one.
    RemoveSite(NodeId),
}

/// A batch of updates applied and published as one epoch.
pub type UpdateBatch = Vec<UpdateOp>;

/// A shard-routed update operation: like [`UpdateOp`], but trajectory
/// additions carry an explicit, router-assigned **global** id. A shard
/// only receives the trajectories that touch it, so its local id sequence
/// has gaps — the explicit id (applied via
/// [`TrajectorySet::insert_at`]) keeps every shard's id space aligned
/// with the global one, which is what lets round-2 merges mix coverage
/// rows from different shards.
#[derive(Clone, Debug, PartialEq)]
pub enum RoutedOp {
    /// Adds a trajectory under a pre-assigned global id.
    AddTrajectoryAt(TrajId, Trajectory),
    /// Removes a trajectory by id; a no-op if dead or unknown.
    RemoveTrajectory(TrajId),
    /// Flags an existing network vertex as a candidate site.
    AddSite(NodeId),
    /// Unflags a candidate site.
    RemoveSite(NodeId),
}

/// What a published batch did.
#[derive(Clone, Copy, Debug)]
pub struct UpdateReceipt {
    /// The epoch the batch was published under.
    pub epoch: u64,
    /// Operations that changed state.
    pub applied: usize,
    /// Operations rejected or no-ops (out-of-network site, dead id,
    /// double add/remove).
    pub rejected: usize,
}

/// The `Arc`-swapped store. `load` is wait-free for practical purposes (a
/// read-lock held only for one `Arc` clone); writers serialize among
/// themselves and never block readers while rebuilding.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
    /// Serializes writers so batches publish in a total epoch order.
    writer: Mutex<()>,
}

impl SnapshotStore {
    /// Creates a store publishing `(net, trajs, index)` as epoch 0.
    pub fn new(
        net: netclus_roadnet::RoadNetwork,
        trajs: TrajectorySet,
        index: NetClusIndex,
    ) -> Self {
        Self::with_shared_net(Arc::new(net), trajs, index)
    }

    /// [`SnapshotStore::new`] over an already-shared road network — the
    /// sharded-serving constructor, where every per-shard store serves the
    /// same full network without duplicating it.
    pub fn with_shared_net(
        net: Arc<netclus_roadnet::RoadNetwork>,
        trajs: TrajectorySet,
        index: NetClusIndex,
    ) -> Self {
        let snapshot = Snapshot {
            epoch: 0,
            net,
            trajs: Arc::new(trajs),
            index: Arc::new(index),
        };
        SnapshotStore {
            current: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(()),
        }
    }

    /// Pins the current snapshot. The returned `Arc` stays valid (and
    /// internally consistent) however many epochs are published after it.
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("snapshot lock poisoned").epoch
    }

    /// Applies `batch` to a private copy of the current state and publishes
    /// it as the next epoch. Readers keep answering from older pinned
    /// snapshots until they next call [`SnapshotStore::load`].
    ///
    /// An empty batch still publishes a new (identical) epoch, which can be
    /// used to force cache invalidation.
    pub fn apply(&self, batch: &[UpdateOp]) -> UpdateReceipt {
        self.apply_with(batch.iter().map(|op| match op {
            UpdateOp::AddTrajectory(t) => GenericOp::AddTrajectory(None, t),
            UpdateOp::RemoveTrajectory(id) => GenericOp::RemoveTrajectory(*id),
            UpdateOp::AddSite(v) => GenericOp::AddSite(*v),
            UpdateOp::RemoveSite(v) => GenericOp::RemoveSite(*v),
        }))
        .0
    }

    /// The shard-routed variant of [`SnapshotStore::apply`]: trajectory
    /// additions land under their pre-assigned global ids. An empty batch
    /// still publishes a new epoch — the shard router leans on this to
    /// keep every shard store's epoch in lockstep even when a batch
    /// touches only some shards.
    pub fn apply_routed(&self, ops: &[RoutedOp]) -> UpdateReceipt {
        self.apply_routed_results(ops).0
    }

    /// Like [`SnapshotStore::apply_routed`], additionally returning the
    /// per-op outcome (`true` = applied) in batch order. The shard-server
    /// protocol ships these acks back so a remote router can reconstruct
    /// exact receipts and replication bookkeeping without a second round
    /// trip.
    pub fn apply_routed_results(&self, ops: &[RoutedOp]) -> (UpdateReceipt, Vec<bool>) {
        self.apply_with(ops.iter().map(|op| match op {
            RoutedOp::AddTrajectoryAt(id, t) => GenericOp::AddTrajectory(Some(*id), t),
            RoutedOp::RemoveTrajectory(id) => GenericOp::RemoveTrajectory(*id),
            RoutedOp::AddSite(v) => GenericOp::AddSite(*v),
            RoutedOp::RemoveSite(v) => GenericOp::RemoveSite(*v),
        }))
    }

    /// Replaces the published state wholesale with `(trajs, index)` at
    /// exactly `epoch` — the resync catch-up path, where a lagging or
    /// restarted replica installs a snapshot transferred from a healthy
    /// sibling instead of replaying the update batches it missed. The
    /// road network is fixed across epochs and is carried over from the
    /// current snapshot. Readers holding older pinned snapshots are
    /// unaffected; the next [`SnapshotStore::load`] sees the new state.
    pub fn install(&self, epoch: u64, trajs: TrajectorySet, index: NetClusIndex) {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.load();
        let next = Snapshot {
            epoch,
            net: Arc::clone(&base.net),
            trajs: Arc::new(trajs),
            index: Arc::new(index),
        };
        *self.current.write().expect("snapshot lock poisoned") = Arc::new(next);
    }

    /// The single writer path behind [`SnapshotStore::apply`] and
    /// [`SnapshotStore::apply_routed`]: copy-on-write clone, sequential op
    /// application, atomic publish of the next epoch.
    fn apply_with<'a, I>(&self, ops: I) -> (UpdateReceipt, Vec<bool>)
    where
        I: Iterator<Item = GenericOp<'a>>,
    {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.load();
        // Private copies; the network is fixed and shared.
        let mut trajs = (*base.trajs).clone();
        let mut index = (*base.index).clone();
        let mut applied = 0usize;
        let mut rejected = 0usize;
        let mut results = Vec::new();
        for op in ops {
            let ok = match op {
                GenericOp::AddTrajectory(id, t) => {
                    if t.nodes().iter().any(|v| v.index() >= base.net.node_count()) {
                        false
                    } else {
                        match id {
                            // Router-assigned global id: refuse occupied
                            // slots instead of silently relabeling.
                            Some(id) => {
                                if trajs.insert_at(id, t.clone()) {
                                    index.add_trajectory(id, t);
                                    true
                                } else {
                                    false
                                }
                            }
                            None => {
                                let id = trajs.add(t.clone());
                                index.add_trajectory(id, t);
                                true
                            }
                        }
                    }
                }
                GenericOp::RemoveTrajectory(id) => match trajs.remove(id) {
                    Some(_) => {
                        index.remove_trajectory(id);
                        true
                    }
                    None => false,
                },
                GenericOp::AddSite(v) => {
                    v.index() < base.net.node_count() && index.add_site(&trajs, v)
                }
                GenericOp::RemoveSite(v) => {
                    v.index() < base.net.node_count() && index.remove_site(&trajs, v)
                }
            };
            results.push(ok);
            if ok {
                applied += 1;
            } else {
                rejected += 1;
            }
        }
        let next = Snapshot {
            epoch: base.epoch + 1,
            net: Arc::clone(&base.net),
            trajs: Arc::new(trajs),
            index: Arc::new(index),
        };
        let epoch = next.epoch;
        *self.current.write().expect("snapshot lock poisoned") = Arc::new(next);
        (
            UpdateReceipt {
                epoch,
                applied,
                rejected,
            },
            results,
        )
    }
}

/// Where an update publisher (the ingest pipeline) lands its batches: a
/// monolithic [`SnapshotStore`] or a replicated
/// [`crate::shard_router::ShardRouter`] fanning every batch out to every
/// replica of every shard. The publisher's contract is identical over
/// both: batches publish sequential epochs, trajectory ids are dense and
/// predictable from `traj_id_bound`, and the road network is fixed.
pub trait UpdateSink: Send + Sync {
    /// The currently published (for a router: lockstep) epoch.
    fn sink_epoch(&self) -> u64;
    /// The shared, epoch-invariant road network new batches are matched
    /// and validated against.
    fn sink_net(&self) -> Arc<netclus_roadnet::RoadNetwork>;
    /// The current trajectory id bound — the next dense id a publisher's
    /// id prediction will assign.
    fn sink_traj_id_bound(&self) -> usize;
    /// Applies `ops` as one batch publishing the next epoch.
    fn apply_batch(&self, ops: &[UpdateOp]) -> UpdateReceipt;
}

impl UpdateSink for SnapshotStore {
    fn sink_epoch(&self) -> u64 {
        self.epoch()
    }

    fn sink_net(&self) -> Arc<netclus_roadnet::RoadNetwork> {
        self.load().net_shared()
    }

    fn sink_traj_id_bound(&self) -> usize {
        self.load().trajs().id_bound()
    }

    fn apply_batch(&self, ops: &[UpdateOp]) -> UpdateReceipt {
        self.apply(ops)
    }
}

/// The union of [`UpdateOp`] and [`RoutedOp`] the single writer path works
/// on: a trajectory add either predicts the next dense id (`None`) or
/// carries a router-assigned one (`Some`).
enum GenericOp<'a> {
    AddTrajectory(Option<TrajId>, &'a Trajectory),
    RemoveTrajectory(TrajId),
    AddSite(NodeId),
    RemoveSite(NodeId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclus::prelude::*;
    use netclus_roadnet::{Point, RoadNetworkBuilder};

    fn fixture() -> SnapshotStore {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..10 {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 0..9u32 {
            b.add_two_way(NodeId(i), NodeId(i + 1), 100.0).unwrap();
        }
        let net = b.build().unwrap();
        let mut trajs = TrajectorySet::for_network(&net);
        trajs.add(Trajectory::new((0..5).map(NodeId).collect()));
        let sites: Vec<NodeId> = net.nodes().collect();
        let index = NetClusIndex::build(
            &net,
            &trajs,
            &sites,
            NetClusConfig {
                tau_min: 200.0,
                tau_max: 2_000.0,
                threads: 1,
                ..Default::default()
            },
        );
        SnapshotStore::new(net, trajs, index)
    }

    #[test]
    fn epochs_advance_and_old_snapshots_stay_pinned() {
        let store = fixture();
        let pinned = store.load();
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.trajs().len(), 1);

        let r = store.apply(&[UpdateOp::AddTrajectory(Trajectory::new(
            (5..9).map(NodeId).collect(),
        ))]);
        assert_eq!(r.epoch, 1);
        assert_eq!((r.applied, r.rejected), (1, 0));

        // The pinned snapshot is untouched; a fresh load sees the new epoch.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.trajs().len(), 1);
        let fresh = store.load();
        assert_eq!(fresh.epoch(), 1);
        assert_eq!(fresh.trajs().len(), 2);
    }

    #[test]
    fn rejected_ops_are_counted_not_applied() {
        let store = fixture();
        let r = store.apply(&[
            UpdateOp::AddTrajectory(Trajectory::new(vec![NodeId(99)])), // off-network
            UpdateOp::RemoveTrajectory(TrajId(7)),                      // never existed
            UpdateOp::AddSite(NodeId(3)),                               // already a site
            UpdateOp::RemoveSite(NodeId(2)),                            // fine
        ]);
        assert_eq!((r.applied, r.rejected), (1, 3));
        let snap = store.load();
        assert!(!snap.index().is_site(NodeId(2)));
        assert_eq!(snap.trajs().len(), 1);
    }

    #[test]
    fn updated_snapshot_answers_match_a_fresh_rebuild() {
        let store = fixture();
        store.apply(&[
            UpdateOp::AddTrajectory(Trajectory::new((5..9).map(NodeId).collect())),
            UpdateOp::AddTrajectory(Trajectory::new((6..9).map(NodeId).collect())),
        ]);
        let snap = store.load();
        let q = TopsQuery::binary(2, 600.0);
        let served = snap.index().query(snap.trajs(), &q);

        let rebuilt = NetClusIndex::build(
            snap.net(),
            snap.trajs(),
            &snap.net().nodes().collect::<Vec<_>>(),
            *snap.index().config(),
        );
        let fresh = rebuilt.query(snap.trajs(), &q);
        assert_eq!(served.solution.sites, fresh.solution.sites);
        assert!((served.solution.utility - fresh.solution.utility).abs() < 1e-9);
    }

    #[test]
    fn apply_routed_preserves_explicit_ids() {
        let store = fixture();
        // Pretend trajectory ids 1 and 2 were assigned elsewhere; this
        // shard only receives id 2 — the id space must stay aligned.
        let r = store.apply_routed(&[RoutedOp::AddTrajectoryAt(
            TrajId(2),
            Trajectory::new((5..9).map(NodeId).collect()),
        )]);
        assert_eq!((r.applied, r.rejected), (1, 0));
        let snap = store.load();
        assert_eq!(snap.trajs().id_bound(), 3);
        assert!(snap.trajs().get(TrajId(1)).is_none());
        assert!(snap.trajs().get(TrajId(2)).is_some());
        // Occupied slot and off-network nodes are rejected.
        let r = store.apply_routed(&[
            RoutedOp::AddTrajectoryAt(TrajId(2), Trajectory::new(vec![NodeId(0)])),
            RoutedOp::AddTrajectoryAt(TrajId(5), Trajectory::new(vec![NodeId(99)])),
            RoutedOp::RemoveTrajectory(TrajId(2)),
        ]);
        assert_eq!((r.applied, r.rejected), (1, 2));
        // An empty routed batch still advances the epoch (lockstep).
        let r = store.apply_routed(&[]);
        assert_eq!(r.epoch, 3);
    }

    #[test]
    fn empty_batch_publishes_identical_epoch() {
        let store = fixture();
        let r = store.apply(&[]);
        assert_eq!(r.epoch, 1);
        assert_eq!((r.applied, r.rejected), (0, 0));
        assert_eq!(store.load().trajs().len(), 1);
    }
}
