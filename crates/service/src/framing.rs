//! Length-prefixed, CRC-guarded byte framing shared by the ingest stream,
//! the WAL, and the [`telemetry`](crate::telemetry) endpoint.
//!
//! A frame is `len: u32 LE | crc: u32 LE | payload[len]` with `crc` the
//! CRC-32 (IEEE) of the payload. The CRC is hand-rolled because the
//! workspace is dependency-free; the table is computed at compile time.
//! A corrupted or torn frame is detected before its payload is ever
//! interpreted. `netclus-ingest` re-exports [`crc32`] as its checksum.

use std::io::{self, Read, Write};

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (IEEE reflected form, initial/final XOR `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Writes one `len | crc | payload` frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame, verifying the CRC. Returns `Ok(None)` on a clean EOF
/// (no header bytes at all); a truncated header/payload, an oversized
/// length (`> max_len`), or a CRC mismatch is an error.
pub fn read_frame<R: Read>(r: &mut R, max_len: usize) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "torn frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {max_len}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame CRC mismatch",
        ));
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"world");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = read_frame(&mut Cursor::new(buf), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_header_and_oversize_are_errors() {
        let err = read_frame(&mut Cursor::new(vec![1, 2, 3]), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 128]).unwrap();
        let err = read_frame(&mut Cursor::new(buf), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
