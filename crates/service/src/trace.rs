//! Structured query-path tracing with tail-based sampling.
//!
//! The metrics module answers *how long* queries take; this module
//! answers *where the time goes*. Three pieces, all std-only and
//! allocation-free on the hot path:
//!
//! * [`StageStats`] — one lock-free [`LatencyHistogram`] per pipeline
//!   [`Stage`] (admission → caches → round 1 → merge → reply on the query
//!   side, decode → match → WAL append → publish on the ingest side).
//!   Every traced request updates these, so per-stage p50/p99 are exact
//!   over **all** traffic, not just the sampled tail.
//! * [`TraceSpans`] — a fixed-size, stack-allocated span recorder
//!   ([`MAX_SPANS`] entries, monotonic clock). Recording a span is two
//!   `Instant` reads and an array write; nothing is boxed, locked or
//!   heap-allocated while the query runs.
//! * [`Tracer`] — **tail-based sampling**: every query's span skeleton
//!   feeds the stage histograms, but the full span tree is retained only
//!   when the query was *slow* (total latency ≥
//!   [`TraceConfig::slow_threshold_us`]) or caught by the 1-in-N sample
//!   ([`TraceConfig::sample_every`]). Retained trees go into a bounded
//!   ring — the **slow-query log** — as [`SlowQueryRecord`]s with full
//!   stage attribution, serializable one JSON object per line.
//!
//! [`LoadGauge`] rides along: per-shard qps/cache-heat/cold-fraction
//! EWMAs in the shape the future gateway tier and shard rebalancer
//! consume (broadcast through [`ShardLaneReport`]'s
//! `shardN_qps_ewma`/`shardN_cache_heat`/`shardN_cold_fraction` fields).
//!
//! [`ShardLaneReport`]: crate::metrics::ShardLaneReport

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::metrics::{LatencyHistogram, LatencySummary};

/// Named stages of the query and ingest pipelines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Stage {
    /// Validation + enqueue (submit until the request is queued).
    #[default]
    Admission,
    /// Result-cache probe.
    CacheProbe,
    /// Provider-cache `get_or_build` (hit, coalesced wait, or build).
    ProviderGet,
    /// Scatter + gather of round-1 shard tasks (wait, wall-clock).
    Round1,
    /// A greedy solve: per-shard round-1 compute, or the executor's
    /// monolithic solve.
    Solve,
    /// Round-2 merge (candidate-union view build + exact greedy).
    Merge,
    /// Answer construction + waiter delivery.
    Reply,
    /// Ingest: frame decode (including the blocking read).
    Decode,
    /// Ingest: map matching.
    Match,
    /// Ingest: WAL append.
    WalAppend,
    /// Ingest: batch publish (WAL append + snapshot apply).
    Publish,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 11;

impl Stage {
    /// Every stage, in declaration order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Admission,
        Stage::CacheProbe,
        Stage::ProviderGet,
        Stage::Round1,
        Stage::Solve,
        Stage::Merge,
        Stage::Reply,
        Stage::Decode,
        Stage::Match,
        Stage::WalAppend,
        Stage::Publish,
    ];

    /// Stable snake_case name (JSON keys and span records).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::CacheProbe => "cache_probe",
            Stage::ProviderGet => "provider_get",
            Stage::Round1 => "round1",
            Stage::Solve => "solve",
            Stage::Merge => "merge",
            Stage::Reply => "reply",
            Stage::Decode => "decode",
            Stage::Match => "match",
            Stage::WalAppend => "wal_append",
            Stage::Publish => "publish",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One lock-free latency histogram per [`Stage`].
#[derive(Debug)]
pub struct StageStats {
    hists: [LatencyHistogram; STAGE_COUNT],
}

impl Default for StageStats {
    fn default() -> Self {
        StageStats {
            hists: std::array::from_fn(|_| LatencyHistogram::default()),
        }
    }
}

impl StageStats {
    /// Records one sample for `stage`.
    pub fn record(&self, stage: Stage, latency: Duration) {
        self.hists[stage.index()].record(latency);
    }

    /// Records one sample given in microseconds.
    pub fn record_micros(&self, stage: Stage, micros: u64) {
        self.hists[stage.index()].record(Duration::from_micros(micros));
    }

    /// Point-in-time summary of one stage.
    pub fn summary(&self, stage: Stage) -> LatencySummary {
        self.hists[stage.index()].summary()
    }

    /// Single-line JSON: `stage_<name>_{count,mean_us,p50_us,p99_us}` for
    /// every stage (zero-count stages included, so the key set is stable).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        for stage in Stage::ALL {
            let sum = self.summary(stage);
            let name = stage.name();
            s.push_str(&format!(
                "\"stage_{name}_count\":{},\"stage_{name}_mean_us\":{},\
                 \"stage_{name}_p50_us\":{},\"stage_{name}_p99_us\":{},",
                sum.count, sum.mean_micros, sum.p50_micros, sum.p99_micros
            ));
        }
        s.pop();
        s.push('}');
        s
    }
}

/// Where a round-1 shard task's answer came from, cheapest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Round1Source {
    /// Candidate-memo hit (prefix slice); no provider touched.
    Memo,
    /// Provider-cache hit; local greedy re-ran on the cached provider.
    ProviderHit,
    /// Waited on another worker's in-flight provider build.
    Coalesced,
    /// This task built the provider (cache miss).
    Built,
    /// Caches disabled: the full rebuild path.
    Cold,
}

impl Round1Source {
    /// Stable name for span details and logs.
    pub fn name(self) -> &'static str {
        match self {
            Round1Source::Memo => "memo",
            Round1Source::ProviderHit => "provider",
            Round1Source::Coalesced => "coalesced",
            Round1Source::Built => "built",
            Round1Source::Cold => "cold",
        }
    }

    /// Whether the task ran without building or waiting on a provider
    /// (the hot-lane criterion — a coalesced wait rides a build, so it
    /// counts cold, matching the router's lane accounting).
    pub fn is_hot(self) -> bool {
        matches!(self, Round1Source::Memo | Round1Source::ProviderHit)
    }

    /// Whether the task paid for a provider build itself.
    pub fn built(self) -> bool {
        matches!(self, Round1Source::Built | Round1Source::Cold)
    }
}

/// One recorded span: a stage interval relative to the trace start.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanRecord {
    /// The pipeline stage.
    pub stage: Stage,
    /// Shard the span ran on; `-1` for stages not bound to a shard.
    pub shard: i32,
    /// Child spans overlap a top-level stage (per-shard solves inside the
    /// round-1 wait, the build/solve split inside merge) and are excluded
    /// from wall-time attribution.
    pub child: bool,
    /// Source/outcome detail (`"memo"`, `"built"`, …; empty when none).
    pub detail: &'static str,
    /// Offset from the trace start, microseconds.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
}

/// Span capacity of one [`TraceSpans`] recorder. Sized for the deepest
/// real trace (4 top-level stages + one child per shard + the merge
/// split at 16 shards); spans beyond it are counted, not recorded.
pub const MAX_SPANS: usize = 24;

/// A fixed-size, stack-held span recorder for one request. Obtained from
/// [`Tracer::begin`]; consumed by [`Tracer::finish`]. All recording is
/// array writes — no allocation, no locks.
#[derive(Debug)]
pub struct TraceSpans {
    started: Instant,
    spans: [SpanRecord; MAX_SPANS],
    len: usize,
    truncated: u32,
}

impl TraceSpans {
    fn new() -> Self {
        TraceSpans {
            started: Instant::now(),
            spans: [SpanRecord::default(); MAX_SPANS],
            len: 0,
            truncated: 0,
        }
    }

    /// The trace's start instant (spans are offsets from it).
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Records a top-level stage span running from `from` to now and
    /// returns now (the natural `from` of the next contiguous stage).
    pub fn stage(&mut self, stage: Stage, from: Instant) -> Instant {
        let now = Instant::now();
        let start_us = from.saturating_duration_since(self.started).as_micros() as u64;
        let dur_us = now.saturating_duration_since(from).as_micros() as u64;
        self.push(SpanRecord {
            stage,
            shard: -1,
            child: false,
            detail: "",
            start_us,
            dur_us,
        });
        now
    }

    /// Records a child span (overlapping a top-level stage) with an
    /// explicit offset and duration.
    pub fn child(
        &mut self,
        stage: Stage,
        shard: i32,
        detail: &'static str,
        start_us: u64,
        dur_us: u64,
    ) {
        self.push(SpanRecord {
            stage,
            shard,
            child: true,
            detail,
            start_us,
            dur_us,
        });
    }

    /// Annotates the most recent span with a detail string.
    pub fn detail(&mut self, detail: &'static str) {
        if self.len > 0 {
            self.spans[self.len - 1].detail = detail;
        }
    }

    fn push(&mut self, span: SpanRecord) {
        if self.len < MAX_SPANS {
            self.spans[self.len] = span;
            self.len += 1;
        } else {
            self.truncated += 1;
        }
    }

    /// The recorded spans, in recording order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans[..self.len]
    }
}

/// Why a [`SlowQueryRecord`] was retained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleTrigger {
    /// Total latency crossed [`TraceConfig::slow_threshold_us`].
    Slow,
    /// Caught by the 1-in-N sample.
    Sampled,
}

/// Per-query metadata attached at [`Tracer::finish`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceMeta {
    /// Epoch the answer was computed against.
    pub epoch: u64,
    /// Requested `k`.
    pub k: usize,
    /// Requested τ (quantized).
    pub tau: f64,
    /// Whether the request rode the warm path end to end.
    pub hot: bool,
}

/// One retained trace: query metadata plus the full span tree.
#[derive(Clone, Debug)]
pub struct SlowQueryRecord {
    /// Monotonic trace sequence number (over all finished traces).
    pub seq: u64,
    /// Query metadata.
    pub meta: TraceMeta,
    /// End-to-end latency, microseconds.
    pub total_us: u64,
    /// Why the record was retained.
    pub trigger: SampleTrigger,
    /// The span tree, in recording order.
    pub spans: Vec<SpanRecord>,
}

impl SlowQueryRecord {
    /// Wall time attributed to named top-level stages, microseconds
    /// (child spans overlap their parent stage and are excluded).
    pub fn attributed_us(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| !s.child)
            .map(|s| s.dur_us)
            .sum()
    }

    /// Fraction of `total_us` the top-level stages account for, in
    /// `[0, 1]` (clamped; 1.0 for a zero-length trace).
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_us == 0 {
            return 1.0;
        }
        (self.attributed_us() as f64 / self.total_us as f64).min(1.0)
    }

    /// Serializes the record as one line of JSON.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256 + self.spans.len() * 96);
        s.push_str(&format!(
            "{{\"seq\":{},\"epoch\":{},\"k\":{},\"tau\":{:.3},\"hot\":{},\"total_us\":{},\
             \"trigger\":\"{}\",\"attributed_us\":{},\"spans\":[",
            self.seq,
            self.meta.epoch,
            self.meta.k,
            self.meta.tau,
            self.meta.hot,
            self.total_us,
            match self.trigger {
                SampleTrigger::Slow => "slow",
                SampleTrigger::Sampled => "sample",
            },
            self.attributed_us(),
        ));
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"stage\":\"{}\",\"shard\":{},\"child\":{},\"detail\":\"{}\",\
                 \"start_us\":{},\"dur_us\":{}}}",
                span.stage.name(),
                span.shard,
                span.child,
                span.detail,
                span.start_us,
                span.dur_us
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Tracer configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Master switch; when off, [`Tracer::finish`] is a no-op and callers
    /// skip span recording entirely.
    pub enabled: bool,
    /// Retain the full span tree for queries at or above this end-to-end
    /// latency (the *tail* in tail-based sampling).
    pub slow_threshold_us: u64,
    /// Additionally retain every Nth trace regardless of latency, so the
    /// log always carries representative fast-path traces; 0 disables the
    /// uniform sample.
    pub sample_every: u64,
    /// Slow-query ring capacity; the oldest record is evicted (and
    /// counted) when full.
    pub slow_log_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            slow_threshold_us: 1_000,
            sample_every: 64,
            slow_log_capacity: 128,
        }
    }
}

impl TraceConfig {
    /// Tracing fully off (stage histograms included).
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            ..Default::default()
        }
    }
}

/// The tail-sampling trace collector. See the module docs.
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    stages: StageStats,
    seq: AtomicU64,
    retained_slow: AtomicU64,
    retained_sampled: AtomicU64,
    evicted: AtomicU64,
    log: Mutex<VecDeque<SlowQueryRecord>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(TraceConfig::default())
    }
}

impl Tracer {
    /// Creates a tracer with the given configuration.
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            cfg,
            stages: StageStats::default(),
            seq: AtomicU64::new(0),
            retained_slow: AtomicU64::new(0),
            retained_sampled: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            log: Mutex::new(VecDeque::with_capacity(cfg.slow_log_capacity.min(1_024))),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Whether tracing is on (callers skip span recording when off).
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Starts a span recorder (stamps the trace start).
    pub fn begin(&self) -> TraceSpans {
        TraceSpans::new()
    }

    /// The always-on per-stage histograms.
    pub fn stages(&self) -> &StageStats {
        &self.stages
    }

    /// Finishes a trace: feeds every span into the stage histograms and
    /// retains the full tree in the slow-query log when the query was slow
    /// or sampled. Returns the end-to-end latency.
    pub fn finish(&self, spans: &TraceSpans, meta: TraceMeta) -> Duration {
        let total = spans.started.elapsed();
        if !self.cfg.enabled {
            return total;
        }
        for span in spans.spans() {
            self.stages.record_micros(span.stage, span.dur_us);
        }
        let total_us = total.as_micros() as u64;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let trigger = if total_us >= self.cfg.slow_threshold_us {
            Some(SampleTrigger::Slow)
        } else if self.cfg.sample_every > 0 && seq % self.cfg.sample_every == 0 {
            Some(SampleTrigger::Sampled)
        } else {
            None
        };
        if let Some(trigger) = trigger {
            match trigger {
                SampleTrigger::Slow => &self.retained_slow,
                SampleTrigger::Sampled => &self.retained_sampled,
            }
            .fetch_add(1, Ordering::Relaxed);
            let record = SlowQueryRecord {
                seq,
                meta,
                total_us,
                trigger,
                spans: spans.spans().to_vec(),
            };
            let mut log = self.log.lock().expect("slow log poisoned");
            if log.len() >= self.cfg.slow_log_capacity.max(1) {
                log.pop_front();
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
            log.push_back(record);
        }
        total
    }

    /// Traces finished so far.
    pub fn traces(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// `(retained_slow, retained_sampled, evicted)` retention counters.
    pub fn retention(&self) -> (u64, u64, u64) {
        (
            self.retained_slow.load(Ordering::Relaxed),
            self.retained_sampled.load(Ordering::Relaxed),
            self.evicted.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the slow-query log, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQueryRecord> {
        self.log
            .lock()
            .expect("slow log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The slow-query log as JSON Lines (one record per line).
    pub fn slow_log_jsonl(&self) -> String {
        let log = self.log.lock().expect("slow log poisoned");
        let mut s = String::with_capacity(log.len() * 320);
        for record in log.iter() {
            s.push_str(&record.to_json_line());
            s.push('\n');
        }
        s
    }

    /// Single-line JSON of the per-stage breakdown plus the retention
    /// counters (`traces`, `slow_retained`, `sample_retained`, `evicted`).
    pub fn stats_json_line(&self) -> String {
        let mut s = self.stages.to_json_line();
        s.pop(); // strip '}' to append the retention tail
        let (slow, sampled, evicted) = self.retention();
        s.push_str(&format!(
            ",\"traces\":{},\"slow_retained\":{slow},\"sample_retained\":{sampled},\
             \"evicted\":{evicted}}}",
            self.traces()
        ));
        s
    }
}

/// Per-shard load/heat gauges: a qps EWMA over inter-arrival gaps plus
/// cache-heat and cold-fraction EWMAs over round-1 task outcomes. One
/// short mutexed update per round-1 task (out of the per-query fan-out's
/// critical path); snapshots feed the metrics report.
#[derive(Debug, Default)]
pub struct LoadGauge {
    state: Mutex<GaugeState>,
}

#[derive(Debug, Default)]
struct GaugeState {
    last: Option<Instant>,
    qps: f64,
    heat: f64,
    cold: f64,
    observed: bool,
}

/// Time constant of the qps EWMA, seconds.
const QPS_TAU_S: f64 = 5.0;
/// Smoothing factor of the heat/cold EWMAs (per observation).
const HEAT_ALPHA: f64 = 0.05;

impl LoadGauge {
    /// Folds one round-1 task outcome into the gauges.
    pub fn observe(&self, source: Round1Source) {
        let now = Instant::now();
        let hot = if source.is_hot() { 1.0 } else { 0.0 };
        let built = if source.built() { 1.0 } else { 0.0 };
        let mut g = self.state.lock().expect("load gauge poisoned");
        if let Some(last) = g.last {
            let dt = now.saturating_duration_since(last).as_secs_f64().max(1e-6);
            let alpha = 1.0 - (-dt / QPS_TAU_S).exp();
            g.qps += alpha * (1.0 / dt - g.qps);
        }
        g.last = Some(now);
        if g.observed {
            g.heat += HEAT_ALPHA * (hot - g.heat);
            g.cold += HEAT_ALPHA * (built - g.cold);
        } else {
            g.heat = hot;
            g.cold = built;
            g.observed = true;
        }
    }

    /// Point-in-time gauge values.
    pub fn snapshot(&self) -> LoadGaugeSnapshot {
        let g = self.state.lock().expect("load gauge poisoned");
        LoadGaugeSnapshot {
            qps_ewma: g.qps,
            cache_heat: g.heat,
            cold_fraction: g.cold,
        }
    }
}

/// A point-in-time [`LoadGauge`] reading.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadGaugeSnapshot {
    /// Smoothed round-1 tasks per second on this shard.
    pub qps_ewma: f64,
    /// Smoothed fraction of tasks served from a cache (memo or provider
    /// hit), in `[0, 1]`.
    pub cache_heat: f64,
    /// Smoothed fraction of tasks that built a provider, in `[0, 1]`.
    pub cold_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans_with(tracer: &Tracer, durs_us: &[(Stage, u64)]) -> TraceSpans {
        let mut spans = tracer.begin();
        let mut off = 0;
        for &(stage, dur) in durs_us {
            spans.push(SpanRecord {
                stage,
                shard: -1,
                child: false,
                detail: "",
                start_us: off,
                dur_us: dur,
            });
            off += dur;
        }
        spans
    }

    #[test]
    fn stage_names_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for stage in Stage::ALL {
            assert!(seen.insert(stage.name()), "duplicate name {}", stage.name());
        }
        assert_eq!(seen.len(), STAGE_COUNT);
        assert_eq!(Stage::Round1.name(), "round1");
    }

    #[test]
    fn stage_stats_json_has_stable_keys() {
        let stats = StageStats::default();
        stats.record(Stage::Merge, Duration::from_micros(200));
        let json = stats.to_json_line();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'));
        for stage in Stage::ALL {
            assert!(
                json.contains(&format!("\"stage_{}_p50_us\":", stage.name())),
                "missing {}",
                stage.name()
            );
        }
        assert!(json.contains("\"stage_merge_count\":1"));
    }

    #[test]
    fn slow_queries_are_retained_with_attribution() {
        let tracer = Tracer::new(TraceConfig {
            slow_threshold_us: 0, // everything is "slow"
            sample_every: 0,
            ..Default::default()
        });
        let spans = spans_with(
            &tracer,
            &[
                (Stage::Admission, 5),
                (Stage::Round1, 700),
                (Stage::Merge, 200),
                (Stage::Reply, 5),
            ],
        );
        tracer.finish(
            &spans,
            TraceMeta {
                epoch: 3,
                k: 6,
                tau: 800.0,
                hot: false,
            },
        );
        let log = tracer.slow_queries();
        assert_eq!(log.len(), 1);
        let record = &log[0];
        assert_eq!(record.trigger, SampleTrigger::Slow);
        assert_eq!(record.attributed_us(), 910);
        assert_eq!(record.spans.len(), 4);
        let json = record.to_json_line();
        assert!(json.contains("\"stage\":\"round1\""));
        assert!(json.contains("\"epoch\":3"));
        assert!(json.contains("\"trigger\":\"slow\""));
        assert!(!json.contains('\n'));
        // The stage histograms saw every span.
        assert_eq!(tracer.stages().summary(Stage::Round1).count, 1);
        assert_eq!(tracer.stages().summary(Stage::Merge).count, 1);
    }

    #[test]
    fn fast_queries_are_dropped_unless_sampled() {
        let tracer = Tracer::new(TraceConfig {
            slow_threshold_us: u64::MAX,
            sample_every: 4,
            ..Default::default()
        });
        for _ in 0..8 {
            let spans = spans_with(&tracer, &[(Stage::Round1, 10)]);
            tracer.finish(&spans, TraceMeta::default());
        }
        // Seqs 0 and 4 were sampled; the rest dropped.
        let log = tracer.slow_queries();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|r| r.trigger == SampleTrigger::Sampled));
        let (slow, sampled, evicted) = tracer.retention();
        assert_eq!((slow, sampled, evicted), (0, 2, 0));
        // Histograms still saw all 8.
        assert_eq!(tracer.stages().summary(Stage::Round1).count, 8);
    }

    #[test]
    fn slow_log_is_bounded_and_evicts_oldest() {
        let tracer = Tracer::new(TraceConfig {
            slow_threshold_us: 0,
            sample_every: 0,
            slow_log_capacity: 3,
            ..Default::default()
        });
        for _ in 0..5 {
            let spans = spans_with(&tracer, &[(Stage::Solve, 50)]);
            tracer.finish(&spans, TraceMeta::default());
        }
        let log = tracer.slow_queries();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].seq, 2, "oldest two evicted");
        assert_eq!(tracer.retention().2, 2);
        let jsonl = tracer.slow_log_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new(TraceConfig::disabled());
        let spans = spans_with(&tracer, &[(Stage::Round1, 10_000)]);
        tracer.finish(&spans, TraceMeta::default());
        assert_eq!(tracer.traces(), 0);
        assert!(tracer.slow_queries().is_empty());
        assert_eq!(tracer.stages().summary(Stage::Round1).count, 0);
    }

    #[test]
    fn span_recorder_is_bounded() {
        let tracer = Tracer::default();
        let mut spans = tracer.begin();
        for i in 0..(MAX_SPANS + 5) {
            spans.child(Stage::Solve, i as i32, "x", 0, 1);
        }
        assert_eq!(spans.spans().len(), MAX_SPANS);
        assert_eq!(spans.truncated, 5);
    }

    #[test]
    fn attribution_excludes_child_spans() {
        let tracer = Tracer::new(TraceConfig {
            slow_threshold_us: 0,
            sample_every: 0,
            ..Default::default()
        });
        let mut spans = spans_with(&tracer, &[(Stage::Round1, 400)]);
        spans.child(Stage::Solve, 0, "built", 0, 390);
        spans.child(Stage::Solve, 1, "memo", 0, 2);
        tracer.finish(&spans, TraceMeta::default());
        let record = &tracer.slow_queries()[0];
        assert_eq!(
            record.attributed_us(),
            400,
            "children must not double-count"
        );
        // Child solves still feed the solve histogram.
        assert_eq!(tracer.stages().summary(Stage::Solve).count, 2);
    }

    #[test]
    fn load_gauge_tracks_heat_and_cold() {
        let gauge = LoadGauge::default();
        for _ in 0..50 {
            gauge.observe(Round1Source::Memo);
        }
        let warm = gauge.snapshot();
        assert!(warm.cache_heat > 0.9, "heat {:.3}", warm.cache_heat);
        assert!(warm.cold_fraction < 0.1);
        assert!(warm.qps_ewma > 0.0);
        for _ in 0..200 {
            gauge.observe(Round1Source::Built);
        }
        let cold = gauge.snapshot();
        assert!(cold.cache_heat < 0.1, "heat {:.3}", cold.cache_heat);
        assert!(cold.cold_fraction > 0.9);
    }

    #[test]
    fn round1_source_lane_contract() {
        assert!(Round1Source::Memo.is_hot());
        assert!(Round1Source::ProviderHit.is_hot());
        assert!(!Round1Source::Coalesced.is_hot());
        assert!(!Round1Source::Coalesced.built(), "a wait is not a build");
        assert!(Round1Source::Built.built());
        assert!(Round1Source::Cold.built());
    }
}
