//! The worker-pool executor: bounded admission, request batching, in-flight
//! deduplication.
//!
//! Life of a request:
//!
//! 1. **Admission** — [`NetClusService::submit`] validates the request,
//!    probes the result cache at the current epoch (a hit answers
//!    immediately), then either *joins* an identical in-flight computation
//!    or enqueues a new job. The queue is bounded; when full the request is
//!    rejected so overload degrades by shedding instead of by unbounded
//!    memory growth.
//! 2. **Dispatch** — each worker drains up to
//!    [`ServiceConfig::max_batch`] jobs in one critical section and pins
//!    **one** snapshot for the whole batch, amortizing the snapshot load
//!    and keeping every answer of the batch on a single epoch.
//! 3. **Completion** — the answer is inserted into the cache under
//!    `(query, variant, epoch)` and delivered to every waiter that joined
//!    while the computation ran. Deduplication is epoch-honest: a waiter
//!    that observed a newer epoch at submit than the snapshot the answer
//!    was computed on is re-flown against a fresh snapshot instead of
//!    being served the stale result.
//!
//! Updates ([`NetClusService::apply_updates`]) go through the snapshot
//! store's copy-on-write path and never block queries; epoch advance
//! invalidates stale cache entries.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use netclus::{FmGreedyConfig, ProviderScratch, TopsQuery};
use netclus_roadnet::NodeId;
use netclus_trajectory::TrajectorySet;

use crate::cache::{QueryKey, ShardedCache};
use crate::fault::QueryError;
use crate::metrics::{MetricsClock, MetricsReport};
use crate::provider_cache::{quantize_tau, CacheOutcome, ProviderCache, ProviderKey};
use crate::snapshot::{SnapshotStore, UpdateBatch, UpdateReceipt};
use crate::trace::{Stage, TraceConfig, TraceMeta, Tracer};

/// Which solver answers the query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryVariant {
    /// Inc-Greedy over cluster representatives (the paper's NETCLUS).
    Greedy,
    /// FM-sketch greedy over representatives (FM-NETCLUS; binary ψ only).
    Fm {
        /// Sketch copies `f`.
        copies: usize,
        /// Sketch family seed.
        seed: u64,
    },
}

/// A TOPS request: the query plus the solver variant.
#[derive(Clone, Copy, Debug)]
pub struct ServiceRequest {
    /// The TOPS query `(k, τ, ψ)`.
    pub query: TopsQuery,
    /// The solver variant.
    pub variant: QueryVariant,
    /// Optional end-to-end deadline, measured from admission. A request
    /// whose every waiter has already expired is shed by the worker
    /// instead of computed; [`ResponseHandle::wait_checked`] turns the
    /// blown budget into a typed [`QueryError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
}

impl ServiceRequest {
    /// An Inc-Greedy request.
    pub fn greedy(query: TopsQuery) -> Self {
        ServiceRequest {
            query,
            variant: QueryVariant::Greedy,
            deadline: None,
        }
    }

    /// An FM-sketch request (requires a binary preference).
    pub fn fm(query: TopsQuery, copies: usize, seed: u64) -> Self {
        ServiceRequest {
            query,
            variant: QueryVariant::Fm { copies, seed },
            deadline: None,
        }
    }

    /// Attaches an end-to-end deadline budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// An answer, always computed against exactly one published snapshot.
///
/// `epoch`, `corpus_len` and `site_count` are all read from that single
/// snapshot, so consistency checks can verify the triple matches what was
/// published (a torn read across two epochs would produce a mismatch).
#[derive(Clone, Debug)]
pub struct ServiceAnswer {
    /// Epoch of the snapshot that produced this answer.
    pub epoch: u64,
    /// Live trajectories in that snapshot's corpus.
    pub corpus_len: usize,
    /// Candidate sites flagged in that snapshot's index.
    pub site_count: usize,
    /// Selected sites, in selection order.
    pub sites: Vec<NodeId>,
    /// Solver-estimated utility (under `d̂r`; see the core crate).
    pub utility: f64,
    /// Trajectories with positive utility under the solver's view.
    pub covered: usize,
    /// Index instance that served the query.
    pub instance: usize,
    /// Cluster representatives processed.
    pub representatives: usize,
    /// Pure compute time (excluding queueing).
    pub compute_time: Duration,
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; retry later (load shedding).
    QueueFull,
    /// The service is shutting down; no further requests are admitted.
    ShuttingDown,
    /// The request can never be served (bad parameters).
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("service queue is full"),
            SubmitError::ShuttingDown => f.write_str("service is shutting down"),
            SubmitError::Invalid(why) => write!(f, "invalid request: {why}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A pending answer; obtained from [`NetClusService::submit`].
#[derive(Debug)]
pub struct ResponseHandle {
    rx: Receiver<Arc<ServiceAnswer>>,
    /// The request's total deadline budget (for the typed error).
    deadline_total: Option<Duration>,
    /// Admission time plus the budget: the wall-clock expiry instant.
    deadline_at: Option<Instant>,
}

impl ResponseHandle {
    /// Blocks until the answer arrives. Returns `None` only if the service
    /// shut down (or shed the expired request) before answering.
    pub fn wait(self) -> Option<Arc<ServiceAnswer>> {
        self.rx.recv().ok()
    }

    /// Waits up to `timeout`.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Arc<ServiceAnswer>> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Blocks until the answer arrives or the request's deadline passes,
    /// whichever is first, with a typed verdict: a blown budget is
    /// [`QueryError::DeadlineExceeded`] — never an unbounded wait — and a
    /// shutdown before answering is [`SubmitError::ShuttingDown`].
    pub fn wait_checked(self) -> Result<Arc<ServiceAnswer>, QueryError> {
        let Some(at) = self.deadline_at else {
            return self
                .rx
                .recv()
                .map_err(|_| QueryError::Submit(SubmitError::ShuttingDown));
        };
        let deadline = self.deadline_total.unwrap_or_default();
        match self
            .rx
            .recv_timeout(at.saturating_duration_since(Instant::now()))
        {
            Ok(answer) => Ok(answer),
            Err(RecvTimeoutError::Timeout) => Err(QueryError::DeadlineExceeded { deadline }),
            // Disconnected early means shutdown; disconnected at/after the
            // expiry instant means the worker shed the expired request.
            Err(RecvTimeoutError::Disconnected) if Instant::now() >= at => {
                Err(QueryError::DeadlineExceeded { deadline })
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(QueryError::Submit(SubmitError::ShuttingDown))
            }
        }
    }
}

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads answering queries.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Maximum jobs a worker drains (and answers on one pinned snapshot)
    /// per dispatch.
    pub max_batch: usize,
    /// Result-cache capacity in answers.
    pub cache_capacity: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Provider-cache capacity (built `ClusteredProvider`s kept across
    /// queries with the same `(epoch, instance, quantized τ)`).
    pub provider_cache_capacity: usize,
    /// Threads used to build one clustered provider on a cache miss.
    /// Workers already parallelize across queries, so the default of 1
    /// avoids oversubscription; raise it for low-concurrency deployments
    /// where single-query latency dominates.
    pub provider_build_threads: usize,
    /// Query-path tracing + tail-sampling configuration (on by default;
    /// see [`TraceConfig`]).
    pub trace: TraceConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 1_024,
            max_batch: 16,
            cache_capacity: 1_024,
            cache_shards: 8,
            provider_cache_capacity: 32,
            provider_build_threads: 1,
            trace: TraceConfig::default(),
        }
    }
}

/// One request waiting on a flight: its response channel, its submit time
/// (for latency), and the epoch it observed at submit — the answer it
/// receives must be at least that fresh.
struct Waiter {
    tx: Sender<Arc<ServiceAnswer>>,
    submitted: Instant,
    min_epoch: u64,
    /// Wall-clock expiry; a flight whose every waiter has expired is shed.
    deadline: Option<Instant>,
}

/// A deduplicated unit of work: one `(query, variant)` with every waiter
/// that asked for it while it was queued or computing.
struct Flight {
    query: TopsQuery,
    variant: QueryVariant,
    waiters: Vec<Waiter>,
}

/// Epoch-less key identifying identical queries for deduplication.
type FlightKey = QueryKey;

struct QueueState {
    jobs: VecDeque<FlightKey>,
    shutdown: bool,
}

struct Inner {
    cfg: ServiceConfig,
    /// Mirrors `QueueState::shutdown` for lock-free rejection on the
    /// submit fast path.
    stopping: AtomicBool,
    store: SnapshotStore,
    cache: ShardedCache,
    providers: ProviderCache,
    clock: MetricsClock,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    inflight: Mutex<HashMap<FlightKey, Flight>>,
    /// Query-path tracer: per-stage histograms + tail-sampled slow log.
    tracer: Tracer,
}

/// The in-process NetClus query server.
pub struct NetClusService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Recovers a mutex guard even when a previous holder panicked: the
/// protected state (queue, flight table, worker handles) stays valid
/// across an unwind, so a poisoned lock must not cascade into every
/// subsequent caller panicking too.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl NetClusService {
    /// Publishes `(net, trajs, index)` as epoch 0 and starts the worker
    /// pool. Fails with the OS error if a worker thread cannot be spawned
    /// (resource exhaustion); any workers already started are stopped and
    /// joined before returning, so a failed construction leaks nothing.
    pub fn start(
        net: netclus_roadnet::RoadNetwork,
        trajs: TrajectorySet,
        index: netclus::NetClusIndex,
        cfg: ServiceConfig,
    ) -> std::io::Result<Self> {
        let inner = Arc::new(Inner {
            cfg,
            stopping: AtomicBool::new(false),
            store: SnapshotStore::new(net, trajs, index),
            cache: ShardedCache::new(cfg.cache_capacity, cfg.cache_shards),
            providers: ProviderCache::new(cfg.provider_cache_capacity),
            clock: MetricsClock::default(),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            tracer: Tracer::new(cfg.trace),
        });
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let w = Arc::clone(&inner);
            match std::thread::Builder::new()
                .name(format!("netclus-worker-{i}"))
                .spawn(move || worker_loop(&w))
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    inner.stopping.store(true, Ordering::Release);
                    lock_recover(&inner.queue).shutdown = true;
                    inner.queue_cv.notify_all();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(NetClusService {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// Submits a request. On success the returned handle resolves to the
    /// answer; rejected requests fail fast with [`SubmitError`].
    ///
    /// τ is normalized to millimeters at admission
    /// ([`crate::provider_cache::quantize_tau`]), so the result cache, the
    /// provider cache and the computation all agree on the effective
    /// threshold.
    pub fn submit(&self, mut request: ServiceRequest) -> Result<ResponseHandle, SubmitError> {
        // Quantize before validating so a τ that rounds to zero is
        // rejected rather than served with a silently different meaning.
        request.query.tau = quantize_tau(request.query.tau);
        validate(&request)?;
        let inner = &*self.inner;
        let metrics = &inner.clock.metrics;
        // Uniform post-shutdown contract: cached and uncached requests
        // are rejected alike.
        if inner.stopping.load(Ordering::Acquire) {
            metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        let (tx, rx) = channel();
        let submitted = Instant::now();
        let deadline_at = request.deadline.map(|d| submitted + d);
        let handle = |rx| ResponseHandle {
            rx,
            deadline_total: request.deadline,
            deadline_at,
        };

        // Fast path: the answer for the current epoch is already cached.
        let epoch = inner.store.epoch();
        let key = QueryKey::new(&request.query, request.variant, epoch);
        if let Some(answer) = inner.cache.get(&key) {
            metrics.submitted.fetch_add(1, Ordering::Relaxed);
            metrics.cache_served.fetch_add(1, Ordering::Relaxed);
            metrics.completed.fetch_add(1, Ordering::Relaxed);
            metrics.latency.record(submitted.elapsed());
            inner
                .tracer
                .stages()
                .record(Stage::Admission, submitted.elapsed());
            let _ = tx.send(answer);
            return Ok(handle(rx));
        }

        let flight_key = key.at_epoch(0);
        let waiter = Waiter {
            tx,
            submitted,
            min_epoch: epoch,
            deadline: deadline_at,
        };
        {
            let mut inflight = lock_recover(&inner.inflight);
            if let Some(flight) = inflight.get_mut(&flight_key) {
                // Identical query already queued or computing: attach. The
                // recorded `min_epoch` keeps the join honest — if the
                // running computation pinned an older snapshot, the worker
                // re-enqueues this waiter instead of serving it stale.
                flight.waiters.push(waiter);
                metrics.submitted.fetch_add(1, Ordering::Relaxed);
                metrics.dedup_joined.fetch_add(1, Ordering::Relaxed);
                inner
                    .tracer
                    .stages()
                    .record(Stage::Admission, submitted.elapsed());
                return Ok(handle(rx));
            }
            // New flight: reserve queue space before registering it.
            let mut queue = lock_recover(&inner.queue);
            if queue.shutdown {
                metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::ShuttingDown);
            }
            if queue.jobs.len() >= inner.cfg.queue_capacity {
                metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull);
            }
            inflight.insert(
                flight_key,
                Flight {
                    query: request.query,
                    variant: request.variant,
                    waiters: vec![waiter],
                },
            );
            queue.jobs.push_back(flight_key);
            metrics.submitted.fetch_add(1, Ordering::Relaxed);
            metrics.queue_enter();
        }
        inner.queue_cv.notify_one();
        self.inner
            .tracer
            .stages()
            .record(Stage::Admission, submitted.elapsed());
        Ok(handle(rx))
    }

    /// Submits and blocks for the answer. A full queue is treated as
    /// backpressure: this retries indefinitely (with a short sleep) until
    /// admitted, so closed-loop callers self-throttle to service capacity.
    /// Use [`NetClusService::submit`] directly to shed load instead.
    /// Returns `None` if the request is invalid or the service shuts down.
    pub fn query_blocking(&self, request: ServiceRequest) -> Option<Arc<ServiceAnswer>> {
        loop {
            match self.submit(request) {
                Ok(handle) => return handle.wait(),
                Err(SubmitError::QueueFull) => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(SubmitError::ShuttingDown) | Err(SubmitError::Invalid(_)) => return None,
            }
        }
    }

    /// Applies an update batch copy-on-write and publishes the next epoch;
    /// stale cache entries are invalidated. Queries keep flowing throughout.
    pub fn apply_updates(&self, batch: UpdateBatch) -> UpdateReceipt {
        let t = Instant::now();
        let receipt = self.inner.store.apply(&batch);
        self.inner.cache.invalidate_before(receipt.epoch);
        self.inner.providers.invalidate_before(receipt.epoch);
        let metrics = &self.inner.clock.metrics;
        metrics.update_latency.record(t.elapsed());
        metrics.epoch_advances.fetch_add(1, Ordering::Relaxed);
        metrics
            .updates_applied
            .fetch_add(receipt.applied as u64, Ordering::Relaxed);
        receipt
    }

    /// Pins the currently published snapshot (for out-of-band inspection,
    /// e.g. exact re-evaluation of answers).
    pub fn snapshot(&self) -> Arc<crate::snapshot::Snapshot> {
        self.inner.store.load()
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.store.epoch()
    }

    /// A point-in-time metrics report.
    pub fn metrics_report(&self) -> MetricsReport {
        let mut report = self.inner.clock.metrics.report(
            self.inner.clock.uptime(),
            self.inner.store.epoch(),
            self.inner.cfg.workers.max(1),
            self.inner.cache.stats(),
            self.inner.providers.stats(),
        );
        report.process.arena_resident_bytes =
            Some(self.inner.store.load().index().heap_size_bytes() as u64);
        report
    }

    /// The full metrics surface flattened into flight-recorder samples
    /// (metrics report + stage/trace counters) — plug this into
    /// [`crate::flight::FlightSampler::start`].
    pub fn flight_sample(&self) -> Vec<(String, f64)> {
        let mut sample = crate::flight::flatten_json(&self.metrics_report().to_json_line());
        sample.extend(crate::flight::flatten_json(
            &self.inner.tracer.stats_json_line(),
        ));
        sample
    }

    /// The query-path tracer (per-stage histograms + slow-query log).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Drains the queue, stops the workers and joins them. Idempotent;
    /// also invoked by `Drop`.
    pub fn shutdown(&self) {
        self.inner.stopping.store(true, Ordering::Release);
        lock_recover(&self.inner.queue).shutdown = true;
        self.inner.queue_cv.notify_all();
        let mut workers = lock_recover(&self.workers);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetClusService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Validates the solver-independent part of a TOPS query; shared between
/// the executor and the shard router so both admission paths agree.
pub(crate) fn validate_query(q: &TopsQuery) -> Result<(), SubmitError> {
    if q.k == 0 {
        return Err(SubmitError::Invalid("k must be at least 1".into()));
    }
    if !q.tau.is_finite() || q.tau <= 0.0 {
        return Err(SubmitError::Invalid(format!("invalid τ: {}", q.tau)));
    }
    if let Err(why) = q.preference.validate() {
        return Err(SubmitError::Invalid(why));
    }
    Ok(())
}

fn validate(request: &ServiceRequest) -> Result<(), SubmitError> {
    let q = &request.query;
    validate_query(q)?;
    if matches!(request.variant, QueryVariant::Fm { .. }) && !q.preference.is_binary() {
        return Err(SubmitError::Invalid(
            "FM-NetClus requires the binary preference".into(),
        ));
    }
    if let QueryVariant::Fm { copies, .. } = request.variant {
        if copies == 0 {
            return Err(SubmitError::Invalid("FM needs at least one copy".into()));
        }
    }
    Ok(())
}

/// Worker main loop: drain a batch, pin one snapshot, answer each job.
/// Each worker owns one [`ProviderScratch`], reused across every provider
/// build it ever performs — the per-query allocations of the old path are
/// gone.
fn worker_loop(inner: &Inner) {
    let metrics = &inner.clock.metrics;
    let mut scratch = ProviderScratch::default();
    loop {
        let batch: Vec<FlightKey> = {
            let mut queue = lock_recover(&inner.queue);
            loop {
                if !queue.jobs.is_empty() {
                    let n = queue.jobs.len().min(inner.cfg.max_batch.max(1));
                    break queue.jobs.drain(..n).collect();
                }
                if queue.shutdown {
                    return;
                }
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        metrics.queue_exit(batch.len() as u64);
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        metrics
            .batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        // One snapshot pin for the whole batch: every answer below is
        // internally consistent with this single epoch.
        let snap = inner.store.load();
        for flight_key in batch {
            let (query, variant) = {
                let mut inflight = lock_recover(&inner.inflight);
                let flight = inflight
                    .get(&flight_key)
                    .expect("queued flight must be registered");
                // Deadline shed: if every waiter's budget already expired,
                // an answer helps nobody — drop the flight before paying
                // for the compute. The disconnected channels surface as
                // `DeadlineExceeded` in `wait_checked`.
                let now = Instant::now();
                if !flight.waiters.is_empty()
                    && flight
                        .waiters
                        .iter()
                        .all(|w| w.deadline.is_some_and(|d| d <= now))
                {
                    inflight.remove(&flight_key);
                    continue;
                }
                (flight.query, flight.variant)
            };
            let key = flight_key.at_epoch(snap.epoch());
            // Span recorder for this flight: worker-side stage
            // attribution (probe → provider → solve → reply).
            let mut spans = inner.tracer.begin();
            let mut cursor = spans.started();
            let mut hot = true;
            // Non-counting probe: the client-facing hit/miss counters were
            // already updated by this request's submit-time lookup.
            let peeked = inner.cache.peek(&key);
            cursor = spans.stage(Stage::CacheProbe, cursor);
            let answer = match peeked {
                Some(hit) => hit,
                None => {
                    let t = Instant::now();
                    // Provider first: cached per (epoch, instance, τ), so
                    // any k/ψ/variant at a warm threshold skips the build.
                    // Single flight: workers racing the same cold key wait
                    // for one build instead of each burning their own.
                    let p = snap.index().instance_for(query.tau);
                    let provider_key = ProviderKey::new(snap.epoch(), p, query.tau);
                    let (provider, outcome) = inner.providers.get_or_build(provider_key, || {
                        let build_start = Instant::now();
                        let built = netclus::ClusteredProvider::build_with(
                            snap.index().instance(p),
                            query.tau,
                            snap.trajs().id_bound(),
                            inner.cfg.provider_build_threads.max(1),
                            &mut scratch,
                        );
                        metrics.provider_build.record(build_start.elapsed());
                        built
                    });
                    cursor = spans.stage(Stage::ProviderGet, cursor);
                    spans.detail(match outcome {
                        CacheOutcome::Hit => "hit",
                        CacheOutcome::Coalesced => "coalesced",
                        CacheOutcome::Miss => "built",
                    });
                    hot = outcome == CacheOutcome::Hit;
                    let raw = match variant {
                        QueryVariant::Greedy => snap.index().query_on(&provider, p, &query),
                        QueryVariant::Fm { copies, seed } => snap.index().query_fm_on(
                            &provider,
                            p,
                            &query,
                            &FmGreedyConfig {
                                k: query.k,
                                copies,
                                seed,
                            },
                        ),
                    };
                    cursor = spans.stage(Stage::Solve, cursor);
                    let answer = Arc::new(ServiceAnswer {
                        epoch: snap.epoch(),
                        corpus_len: snap.trajs().len(),
                        site_count: snap.index().site_count(),
                        sites: raw.solution.sites,
                        utility: raw.solution.utility,
                        covered: raw.solution.covered,
                        instance: raw.instance,
                        representatives: raw.representatives,
                        compute_time: t.elapsed(),
                    });
                    inner.cache.insert(key, Arc::clone(&answer));
                    answer
                }
            };
            // Completion: detach the flight and answer every waiter whose
            // observed epoch this answer satisfies. Waiters that joined
            // after a newer epoch was published must not be served the
            // older snapshot's answer — they are re-flown against a fresh
            // snapshot (store epochs are monotone, so the next load is at
            // least as new as anything they observed).
            let satisfied = {
                let mut inflight = lock_recover(&inner.inflight);
                let flight = inflight
                    .remove(&flight_key)
                    .expect("flight still registered");
                let (stale, satisfied): (Vec<Waiter>, Vec<Waiter>) = flight
                    .waiters
                    .into_iter()
                    .partition(|w| w.min_epoch > answer.epoch);
                if !stale.is_empty() {
                    inflight.insert(
                        flight_key,
                        Flight {
                            query,
                            variant,
                            waiters: stale,
                        },
                    );
                    // Internal retry, bypassing the admission bound (these
                    // requests were already admitted once).
                    let mut queue = lock_recover(&inner.queue);
                    queue.jobs.push_back(flight_key);
                    metrics.queue_enter();
                    drop(queue);
                    inner.queue_cv.notify_one();
                }
                satisfied
            };
            for w in satisfied {
                metrics.latency.record(w.submitted.elapsed());
                metrics.completed.fetch_add(1, Ordering::Relaxed);
                let _ = w.tx.send(Arc::clone(&answer));
            }
            spans.stage(Stage::Reply, cursor);
            inner.tracer.finish(
                &spans,
                TraceMeta {
                    epoch: answer.epoch,
                    k: query.k,
                    tau: query.tau,
                    hot,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclus::prelude::*;
    use netclus_roadnet::{Point, RoadNetworkBuilder};
    use netclus_trajectory::Trajectory;

    use crate::UpdateOp;

    fn service(workers: usize) -> NetClusService {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..30 {
            b.add_node(Point::new(i as f64 * 100.0, 0.0));
        }
        for i in 0..29u32 {
            b.add_two_way(NodeId(i), NodeId(i + 1), 100.0).unwrap();
        }
        let net = b.build().unwrap();
        let mut trajs = TrajectorySet::for_network(&net);
        for s in 0..6u32 {
            trajs.add(Trajectory::new(
                (2 + s / 2..8 - s / 3).map(NodeId).collect(),
            ));
        }
        for s in 0..4u32 {
            trajs.add(Trajectory::new((20 + s..26).map(NodeId).collect()));
        }
        let sites: Vec<NodeId> = net.nodes().collect();
        let index = NetClusIndex::build(
            &net,
            &trajs,
            &sites,
            NetClusConfig {
                tau_min: 200.0,
                tau_max: 4_000.0,
                threads: 1,
                ..Default::default()
            },
        );
        NetClusService::start(
            net,
            trajs,
            index,
            ServiceConfig {
                workers,
                ..Default::default()
            },
        )
        .expect("start service")
    }

    #[test]
    fn serves_matching_answers_for_both_variants() {
        let svc = service(2);
        let q = TopsQuery::binary(2, 800.0);
        let greedy = svc.query_blocking(ServiceRequest::greedy(q)).unwrap();
        let fm = svc.query_blocking(ServiceRequest::fm(q, 50, 3)).unwrap();
        assert_eq!(greedy.sites.len(), 2);
        assert_eq!(fm.sites.len(), 2);
        assert_eq!(greedy.epoch, 0);
        assert_eq!(greedy.corpus_len, 10);
        svc.shutdown();
    }

    #[test]
    fn identical_queries_share_cache_entries() {
        let svc = service(2);
        let q = TopsQuery::binary(1, 800.0);
        let a = svc.query_blocking(ServiceRequest::greedy(q)).unwrap();
        let b = svc.query_blocking(ServiceRequest::greedy(q)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second answer must come from cache");
        let report = svc.metrics_report();
        assert!(report.cache.hits >= 1);
        assert_eq!(report.completed, 2);
        svc.shutdown();
    }

    #[test]
    fn updates_advance_epochs_and_refresh_answers() {
        let svc = service(2);
        let q = TopsQuery::binary(1, 600.0);
        let before = svc.query_blocking(ServiceRequest::greedy(q)).unwrap();
        assert_eq!(before.epoch, 0);
        // Flood the far end with demand.
        let batch: UpdateBatch = (0..10)
            .map(|_| {
                crate::snapshot::UpdateOp::AddTrajectory(Trajectory::new(vec![
                    NodeId(28),
                    NodeId(29),
                ]))
            })
            .collect();
        let receipt = svc.apply_updates(batch);
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.applied, 10);
        let after = svc.query_blocking(ServiceRequest::greedy(q)).unwrap();
        assert_eq!(after.epoch, 1);
        assert_eq!(after.corpus_len, 20);
        assert!(after.sites[0].0 >= 26, "new demand ignored: {after:?}");
        svc.shutdown();
    }

    #[test]
    fn provider_cache_shared_across_k_and_variants() {
        let svc = service(1);
        for k in 1..=4 {
            svc.query_blocking(ServiceRequest::greedy(TopsQuery::binary(k, 800.0)))
                .unwrap();
        }
        // FM at the same τ reuses the same provider.
        svc.query_blocking(ServiceRequest::fm(TopsQuery::binary(2, 800.0), 30, 1))
            .unwrap();
        let report = svc.metrics_report();
        assert_eq!(
            report.providers.misses, 1,
            "τ=800 must build exactly once: {:?}",
            report.providers
        );
        assert!(report.providers.hits >= 4);
        assert!(report.provider_hit_rate() > 0.5);
        assert_eq!(report.provider_build.count, 1);
        // Admission-time quantization: a bitwise-noisy τ still hits.
        svc.query_blocking(ServiceRequest::greedy(TopsQuery::binary(5, 800.000_000_1)))
            .unwrap();
        assert_eq!(svc.metrics_report().providers.misses, 1);
        // A different (quantized) τ is a genuine miss.
        svc.query_blocking(ServiceRequest::greedy(TopsQuery::binary(1, 900.0)))
            .unwrap();
        assert_eq!(svc.metrics_report().providers.misses, 2);
        svc.shutdown();
    }

    #[test]
    fn epoch_advance_invalidates_provider_cache() {
        let svc = service(1);
        svc.query_blocking(ServiceRequest::greedy(TopsQuery::binary(1, 800.0)))
            .unwrap();
        assert_eq!(svc.metrics_report().providers.entries, 1);
        svc.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(vec![
            NodeId(0),
            NodeId(1),
        ]))]);
        let report = svc.metrics_report();
        assert_eq!(report.providers.entries, 0, "stale provider survived");
        assert_eq!(report.providers.invalidated, 1);
        // The next query at the same τ rebuilds against the new epoch.
        let after = svc
            .query_blocking(ServiceRequest::greedy(TopsQuery::binary(2, 800.0)))
            .unwrap();
        assert_eq!(after.epoch, 1);
        assert_eq!(svc.metrics_report().providers.misses, 2);
        svc.shutdown();
    }

    #[test]
    fn invalid_requests_fail_fast() {
        let svc = service(1);
        assert!(matches!(
            svc.submit(ServiceRequest::greedy(TopsQuery::binary(0, 800.0))),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            svc.submit(ServiceRequest::greedy(TopsQuery::binary(1, -5.0))),
            Err(SubmitError::Invalid(_))
        ));
        // τ below the millimeter quantum rounds to 0 and must be rejected,
        // not served with a silently different threshold.
        assert!(matches!(
            svc.submit(ServiceRequest::greedy(TopsQuery::binary(1, 1e-4))),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            svc.submit(ServiceRequest::fm(
                TopsQuery {
                    k: 1,
                    tau: 800.0,
                    preference: PreferenceFunction::LinearDecay,
                },
                30,
                1
            )),
            Err(SubmitError::Invalid(_))
        ));
        svc.shutdown();
    }

    #[test]
    fn submit_after_shutdown_fails_fast_and_blocking_returns_none() {
        let svc = service(2);
        // Warm the cache so the fast path would hit if it were reachable.
        let q = TopsQuery::binary(1, 800.0);
        svc.query_blocking(ServiceRequest::greedy(q)).unwrap();
        svc.shutdown();
        // Cached and uncached requests are rejected alike after shutdown.
        assert_eq!(
            svc.submit(ServiceRequest::greedy(q)).unwrap_err(),
            SubmitError::ShuttingDown
        );
        assert_eq!(
            svc.submit(ServiceRequest::greedy(TopsQuery::binary(2, 900.0)))
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
        // Must return, not spin: shutdown is terminal, not transient.
        assert!(svc.query_blocking(ServiceRequest::greedy(q)).is_none());
    }

    #[test]
    fn dedup_never_serves_an_answer_older_than_the_submitters_epoch() {
        // Single worker + a slow first query so a second submit can join
        // the in-flight flight after an epoch advance; the joiner must get
        // an epoch-1 answer, not the pinned epoch-0 one.
        let svc = service(1);
        let q = TopsQuery::binary(2, 700.0);
        // Occupy the worker with a different query so the flight for `q`
        // sits queued while we advance the epoch.
        let filler = svc
            .submit(ServiceRequest::greedy(TopsQuery::binary(3, 900.0)))
            .unwrap();
        let first = svc.submit(ServiceRequest::greedy(q)).unwrap();
        svc.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(vec![
            NodeId(0),
        ]))]);
        // This submit observes epoch 1 and joins (or re-creates) the
        // flight; whatever answer it gets must be from epoch >= 1.
        let joined = svc.submit(ServiceRequest::greedy(q)).unwrap();
        let joined_answer = joined.wait().expect("answered");
        assert!(
            joined_answer.epoch >= 1,
            "stale epoch {} served to a post-update submitter",
            joined_answer.epoch
        );
        assert!(filler.wait().is_some());
        // The pre-update submitter accepts any epoch (0 or 1 both valid).
        assert!(first.wait().is_some());
        svc.shutdown();
    }

    #[test]
    fn expired_deadline_is_shed_and_typed() {
        let svc = service(1);
        let q = TopsQuery::binary(2, 800.0);
        // A zero budget is expired at admission: the worker must shed the
        // flight (never compute it) and the waiter must get the typed
        // error, not an unbounded wait.
        let handle = svc
            .submit(ServiceRequest::greedy(q).with_deadline(Duration::ZERO))
            .unwrap();
        match handle.wait_checked() {
            Err(QueryError::DeadlineExceeded { deadline }) => {
                assert_eq!(deadline, Duration::ZERO);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // The service stays healthy: a generous budget answers normally.
        let relaxed = svc
            .submit(ServiceRequest::greedy(q).with_deadline(Duration::from_secs(30)))
            .unwrap();
        let answer = relaxed.wait_checked().expect("within budget");
        assert_eq!(answer.sites.len(), 2);
        // Without any deadline, wait_checked degenerates to wait.
        let plain = svc.submit(ServiceRequest::greedy(q)).unwrap();
        assert!(plain.wait_checked().is_ok());
        svc.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drains() {
        let svc = service(3);
        let handles: Vec<_> = (1..=5)
            .map(|k| {
                svc.submit(ServiceRequest::greedy(TopsQuery::binary(k, 700.0)))
                    .unwrap()
            })
            .collect();
        svc.shutdown();
        svc.shutdown();
        // Workers drained the queue before exiting.
        for h in handles {
            assert!(h.wait().is_some());
        }
    }
}
