//! The flight recorder: fixed-capacity, in-process time-series retention
//! over the full metrics surface.
//!
//! Point-in-time reports ([`crate::metrics`]) and the tail-sampled trace
//! log answer "what is slow *right now*"; they cannot answer "is the
//! provider-cache hit rate decaying" or "has ingest been falling behind
//! for the last minute" — every scrape evaporates. The recorder keeps a
//! bounded window of history so trends are queryable in-process, with no
//! external metrics stack:
//!
//! * a **sampler** ([`FlightSampler`], one thread) snapshots a sample
//!   closure every tick — typically the flattened
//!   [`MetricsReport`](crate::MetricsReport) / ingest report / stage
//!   breakdown via [`flatten_json`];
//! * samples land in a **full-resolution ring** of the last
//!   [`FlightConfig::capacity`] ticks (oldest overwritten);
//! * every [`FlightConfig::downsample_every`]-th tick is also retained in
//!   a **coarse ring** covering a much longer horizon. Downsampling
//!   *decimates* (keeps the bucket's last sample) rather than averaging:
//!   most series are monotonic counters, and averaging a counter before
//!   differencing would distort every rate computed from the coarse
//!   horizon. Gauges lose sub-bucket spikes there; the full-resolution
//!   ring is the recent-horizon view for those.
//!
//! Rates are computed **at read time** from adjacent retained samples,
//! clamped at zero per adjacent pair — a counter reset (an epoch purge
//! dropping cache counters, a component restart) reads as a
//! zero-increment interval, never as a negative rate or an underflow.
//!
//! The [`health`](crate::health) evaluator reads windows from the
//! recorder, and the telemetry endpoint serves `history`/`rates` from it
//! ([`crate::telemetry`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Recorder shape: tick cadence and retention.
#[derive(Clone, Debug)]
pub struct FlightConfig {
    /// Sampler cadence ([`FlightSampler`] snapshots once per tick).
    pub tick: Duration,
    /// Full-resolution ticks retained (ring; oldest overwritten).
    pub capacity: usize,
    /// Every N-th tick is also kept in the coarse ring (decimation).
    pub downsample_every: usize,
    /// Coarse ticks retained — the long horizon covers
    /// `coarse_capacity × downsample_every` ticks.
    pub coarse_capacity: usize,
}

impl Default for FlightConfig {
    /// 250 ms ticks, 240 full-resolution ticks (1 min) and a 30-minute
    /// coarse horizon (8× decimation, 360 points).
    fn default() -> Self {
        FlightConfig {
            tick: Duration::from_millis(250),
            capacity: 240,
            downsample_every: 8,
            coarse_capacity: 360,
        }
    }
}

/// A fixed-capacity overwrite-oldest ring.
#[derive(Debug)]
struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest element once the ring has wrapped.
    start: usize,
}

impl<T> Ring<T> {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(cap.min(1_024)),
            cap: cap.max(1),
            start: 0,
        }
    }

    fn push(&mut self, item: T) {
        if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.buf[self.start] = item;
            self.start = (self.start + 1) % self.cap;
        }
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    /// Oldest → newest.
    fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }

    fn newest(&self) -> Option<&T> {
        if self.buf.is_empty() {
            None
        } else {
            Some(&self.buf[(self.start + self.buf.len() - 1) % self.buf.len()])
        }
    }
}

/// One retained tick: capture time (seconds since recorder start) plus
/// the sampled values, aligned with the recorder's series table. Series
/// that appeared after this tick was captured read as absent.
#[derive(Clone, Debug)]
struct Tick {
    at_secs: f64,
    values: Vec<f64>,
}

impl Tick {
    fn get(&self, series: usize) -> Option<f64> {
        self.values.get(series).copied().filter(|v| v.is_finite())
    }
}

#[derive(Debug, Default)]
struct RecorderState {
    /// Series names in first-seen order; `Tick::values` aligns with this.
    names: Vec<String>,
    index: HashMap<String, usize>,
    full: Option<Ring<Tick>>,
    coarse: Option<Ring<Tick>>,
    /// Ticks ever recorded (not capped by retention).
    ticks: u64,
}

/// The time-series store. Cheap to share (`Arc`); one `record` per tick
/// and read-time queries take the same internal lock — none of this is on
/// a query hot path.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    started: Instant,
    state: Mutex<RecorderState>,
}

impl FlightRecorder {
    /// An empty recorder; series are created lazily by the first sample
    /// that mentions them.
    pub fn new(cfg: FlightConfig) -> Self {
        FlightRecorder {
            cfg,
            started: Instant::now(),
            state: Mutex::new(RecorderState::default()),
        }
    }

    /// The configured shape.
    pub fn config(&self) -> &FlightConfig {
        &self.cfg
    }

    /// Seconds since the recorder was created (the time axis of every
    /// retained tick).
    pub fn now_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Records one tick stamped with the current time.
    pub fn record_now(&self, sample: &[(String, f64)]) {
        self.record_at(self.now_secs(), sample);
    }

    /// Records one tick at an explicit timestamp (seconds on the
    /// recorder's own axis). Non-finite values are dropped (absent for
    /// that tick).
    pub fn record_at(&self, at_secs: f64, sample: &[(String, f64)]) {
        let mut s = self.state.lock().expect("flight recorder poisoned");
        let mut values = vec![f64::NAN; s.names.len()];
        for (name, value) in sample {
            if !value.is_finite() {
                continue;
            }
            let idx = match s.index.get(name) {
                Some(&i) => i,
                None => {
                    let i = s.names.len();
                    s.names.push(name.clone());
                    s.index.insert(name.clone(), i);
                    values.push(f64::NAN);
                    i
                }
            };
            values[idx] = *value;
        }
        let tick = Tick { at_secs, values };
        let cap = self.cfg.capacity;
        s.full
            .get_or_insert_with(|| Ring::new(cap))
            .push(tick.clone());
        s.ticks += 1;
        if s.ticks % self.cfg.downsample_every.max(1) as u64 == 0 {
            let cap = self.cfg.coarse_capacity;
            s.coarse.get_or_insert_with(|| Ring::new(cap)).push(tick);
        }
    }

    /// Series names, in first-seen order.
    pub fn series(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("flight recorder poisoned")
            .names
            .clone()
    }

    /// Total ticks ever recorded (beyond retention).
    pub fn ticks(&self) -> u64 {
        self.state.lock().expect("flight recorder poisoned").ticks
    }

    /// The newest retained value of `series`.
    pub fn last(&self, series: &str) -> Option<f64> {
        let s = self.state.lock().expect("flight recorder poisoned");
        let idx = *s.index.get(series)?;
        s.full.as_ref()?.newest()?.get(idx)
    }

    /// `(time, value)` points of `series`, oldest → newest: the coarse
    /// horizon for everything older than the full-resolution window, then
    /// the full-resolution ring. `window_secs` (if given) keeps only
    /// points within that trailing window, anchored at the **newest
    /// retained tick** (not the wall clock, so a paused sampler cannot
    /// make every window empty).
    pub fn history(&self, series: &str, window_secs: Option<f64>) -> Option<Vec<(f64, f64)>> {
        let s = self.state.lock().expect("flight recorder poisoned");
        let idx = *s.index.get(series)?;
        let full = s.full.as_ref()?;
        let full_start = full.iter().next().map_or(f64::INFINITY, |t| t.at_secs);
        let newest = full.newest().map_or(f64::NEG_INFINITY, |t| t.at_secs);
        let cutoff = window_secs.map_or(f64::NEG_INFINITY, |w| newest - w.max(0.0));
        let mut out = Vec::new();
        if let Some(coarse) = s.coarse.as_ref() {
            for tick in coarse.iter() {
                if tick.at_secs < full_start && tick.at_secs >= cutoff {
                    if let Some(v) = tick.get(idx) {
                        out.push((tick.at_secs, v));
                    }
                }
            }
        }
        for tick in full.iter() {
            if tick.at_secs >= cutoff {
                if let Some(v) = tick.get(idx) {
                    out.push((tick.at_secs, v));
                }
            }
        }
        Some(out)
    }

    /// Per-second rate of every series over the most recent tick
    /// interval, clamped at zero (a counter reset can never underflow
    /// into a negative rate). Meaningful for monotonic counters; for a
    /// gauge this is its recent rate of change. Empty until two ticks are
    /// retained.
    pub fn rates(&self) -> Vec<(String, f64)> {
        let s = self.state.lock().expect("flight recorder poisoned");
        let Some(full) = s.full.as_ref() else {
            return Vec::new();
        };
        let n = full.len();
        if n < 2 {
            return Vec::new();
        }
        let mut it = full.iter().skip(n - 2);
        let (prev, last) = (it.next().expect("prev tick"), it.next().expect("last tick"));
        let dt = last.at_secs - prev.at_secs;
        if dt <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(s.names.len() + 1);
        out.push(("interval_secs".to_string(), dt));
        for (i, name) in s.names.iter().enumerate() {
            if let (Some(a), Some(b)) = (prev.get(i), last.get(i)) {
                out.push((name.clone(), ((b - a).max(0.0)) / dt));
            }
        }
        out
    }

    /// Total clamped increase of `series` over the trailing window,
    /// together with the time actually spanned. Sums per-adjacent-pair
    /// clamped deltas, so a counter reset mid-window contributes zero for
    /// that pair instead of dragging the whole window negative. `None`
    /// when the series is unknown or fewer than two points fall in the
    /// window.
    pub fn window_increase(&self, series: &str, window_secs: f64) -> Option<(f64, f64)> {
        let points = self.history(series, Some(window_secs))?;
        if points.len() < 2 {
            return None;
        }
        let mut total = 0.0;
        for pair in points.windows(2) {
            total += (pair[1].1 - pair[0].1).max(0.0);
        }
        let span = points.last().expect("non-empty").0 - points[0].0;
        Some((total, span))
    }

    /// Renders one series' history as a single JSON line
    /// (`{"series":…,"window_secs":…,"points":[[t,v],…]}`) for the
    /// telemetry `history` command.
    pub fn history_json(&self, series: &str, window_secs: Option<f64>) -> String {
        let Some(points) = self.history(series, window_secs) else {
            return format!("{{\"error\":\"unknown series\",\"series\":\"{series}\"}}");
        };
        let mut s = String::with_capacity(32 + points.len() * 16);
        s.push_str("{\"series\":\"");
        s.push_str(series);
        s.push_str("\",\"window_secs\":");
        match window_secs {
            Some(w) => s.push_str(&format!("{w:.3}")),
            None => s.push_str("null"),
        }
        s.push_str(",\"points\":[");
        for (i, (t, v)) in points.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{t:.3},{v:.3}]"));
        }
        s.push_str("]}");
        s
    }

    /// Renders [`FlightRecorder::rates`] as one flat JSON line for the
    /// telemetry `rates` command.
    pub fn rates_json(&self) -> String {
        let rates = self.rates();
        if rates.is_empty() {
            return "{\"error\":\"need at least two ticks\"}".to_string();
        }
        let mut s = String::with_capacity(rates.len() * 24);
        s.push('{');
        for (name, v) in &rates {
            s.push('"');
            s.push_str(name);
            s.push_str("\":");
            s.push_str(&format!("{v:.3},"));
        }
        s.pop();
        s.push('}');
        s
    }

    /// Dumps every retained tick as JSON Lines (coarse horizon first,
    /// then the full-resolution window), one flat object per tick with
    /// `at_secs` plus each series present at that tick. This is the
    /// `results/flight_recorder.jsonl` CI artifact.
    pub fn dump_jsonl(&self) -> String {
        let s = self.state.lock().expect("flight recorder poisoned");
        let mut out = String::new();
        let full_start = s
            .full
            .as_ref()
            .and_then(|f| f.iter().next())
            .map_or(f64::INFINITY, |t| t.at_secs);
        let render = |out: &mut String, tick: &Tick| {
            out.push_str(&format!("{{\"at_secs\":{:.3}", tick.at_secs));
            for (i, name) in s.names.iter().enumerate() {
                if let Some(v) = tick.get(i) {
                    out.push_str(&format!(",\"{name}\":{v:.3}"));
                }
            }
            out.push_str("}\n");
        };
        if let Some(coarse) = s.coarse.as_ref() {
            for tick in coarse.iter().filter(|t| t.at_secs < full_start) {
                render(&mut out, tick);
            }
        }
        if let Some(full) = s.full.as_ref() {
            for tick in full.iter() {
                render(&mut out, tick);
            }
        }
        out
    }
}

/// Parses the numeric fields of a flat single-line JSON object (the only
/// shape the metrics serializers emit) into flight-recorder samples.
/// String values and `null`s are skipped — an omitted-or-null gauge is
/// *absent*, never zero.
pub fn flatten_json(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let inner = json.trim().trim_start_matches('{').trim_end_matches('}');
    let mut rest = inner;
    while let Some(open) = rest.find('"') {
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        let key = &rest[open + 1..open + 1 + close];
        rest = &rest[open + 2 + close..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let end = rest.find(',').unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
        rest = rest.get(end + 1..).unwrap_or("");
    }
    out
}

/// The sampler thread: calls a snapshot closure once per
/// [`FlightConfig::tick`] and feeds the recorder. Shutdown wakes the
/// sleeping thread immediately.
#[derive(Debug)]
pub struct FlightSampler {
    stop: Arc<(Mutex<bool>, Condvar)>,
    stopped: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl FlightSampler {
    /// Spawns the sampler. `sample` is called outside the recorder's lock
    /// and should return the flattened metrics surface (see
    /// [`flatten_json`]).
    pub fn start(
        recorder: Arc<FlightRecorder>,
        sample: impl Fn() -> Vec<(String, f64)> + Send + 'static,
    ) -> FlightSampler {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stopped = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            let tick = recorder.cfg.tick;
            std::thread::Builder::new()
                .name("netclus-flight".into())
                .spawn(move || {
                    let (lock, cv) = &*stop;
                    loop {
                        recorder.record_now(&sample());
                        let guard = lock.lock().expect("sampler stop lock poisoned");
                        let (guard, _) = cv
                            .wait_timeout_while(guard, tick, |stopping| !*stopping)
                            .expect("sampler stop lock poisoned");
                        if *guard {
                            return;
                        }
                    }
                })
                .expect("spawn flight sampler")
        };
        FlightSampler {
            stop,
            stopped,
            handle: Some(handle),
        }
    }

    /// Stops and joins the sampler thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let (lock, cv) = &*self.stop;
            *lock.lock().expect("sampler stop lock poisoned") = true;
            cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FlightSampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize, downsample_every: usize, coarse_capacity: usize) -> FlightConfig {
        FlightConfig {
            tick: Duration::from_millis(1),
            capacity,
            downsample_every,
            coarse_capacity,
        }
    }

    fn sample(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn ring_wraparound_keeps_the_newest_window() {
        let rec = FlightRecorder::new(cfg(4, 1_000, 4));
        for i in 0..10u32 {
            rec.record_at(i as f64, &sample(&[("c", i as f64)]));
        }
        // Only the last 4 ticks survive, oldest → newest, and `last`
        // agrees with the newest retained tick.
        let points = rec.history("c", None).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points, vec![(6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]);
        assert_eq!(rec.last("c"), Some(9.0));
        assert_eq!(rec.ticks(), 10);
    }

    #[test]
    fn counter_reset_clamps_rates_at_zero() {
        let rec = FlightRecorder::new(cfg(16, 1_000, 4));
        rec.record_at(0.0, &sample(&[("hits", 100.0)]));
        rec.record_at(1.0, &sample(&[("hits", 150.0)]));
        // Epoch purge: the counter resets to a small value.
        rec.record_at(2.0, &sample(&[("hits", 5.0)]));
        let rate = |rec: &FlightRecorder| {
            rec.rates()
                .into_iter()
                .find(|(k, _)| k == "hits")
                .map(|(_, v)| v)
                .unwrap()
        };
        assert_eq!(rate(&rec), 0.0, "reset interval must clamp, not underflow");
        rec.record_at(3.0, &sample(&[("hits", 25.0)]));
        assert_eq!(rate(&rec), 20.0, "post-reset growth measures normally");
        // Windowed increase skips the reset pair the same way.
        let (total, span) = rec.window_increase("hits", 1_000.0).unwrap();
        assert_eq!(total, 50.0 + 0.0 + 20.0);
        assert_eq!(span, 3.0);
    }

    #[test]
    fn downsample_boundaries_align_on_every_nth_tick() {
        let rec = FlightRecorder::new(cfg(4, 3, 16));
        for i in 1..=12u32 {
            rec.record_at(i as f64, &sample(&[("g", i as f64 * 10.0)]));
        }
        // Coarse ring decimates: exactly ticks 3, 6, 9, 12 (every 3rd),
        // holding that tick's value untouched (no averaging).
        let points = rec.history("g", None).unwrap();
        // Full window holds ticks 9..=12; coarse contributes 3 and 6.
        assert_eq!(
            points,
            vec![
                (3.0, 30.0),
                (6.0, 60.0),
                (9.0, 90.0),
                (10.0, 100.0),
                (11.0, 110.0),
                (12.0, 120.0),
            ]
        );
    }

    #[test]
    fn history_window_filters_and_unknown_series_is_none() {
        let rec = FlightRecorder::new(cfg(64, 1_000, 4));
        for i in 0..5u32 {
            rec.record_at(i as f64, &sample(&[("x", i as f64)]));
        }
        assert!(rec.history("nope", None).is_none());
        assert!(rec
            .history_json("nope", None)
            .contains("\"error\":\"unknown series\""));
        // The window anchors at the newest retained tick: 2 seconds back
        // from t=4 keeps t ∈ {2, 3, 4}; a zero window keeps the newest
        // tick alone.
        let points = rec.history("x", Some(2.0)).unwrap();
        assert_eq!(points, vec![(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]);
        assert_eq!(rec.history("x", Some(0.0)).unwrap(), vec![(4.0, 4.0)]);
        let json = rec.history_json("x", None);
        assert!(json.starts_with("{\"series\":\"x\""));
        assert!(json.contains("[4.000,4.000]"));
    }

    #[test]
    fn late_series_are_absent_not_zero() {
        let rec = FlightRecorder::new(cfg(8, 1_000, 4));
        rec.record_at(0.0, &sample(&[("a", 1.0)]));
        rec.record_at(1.0, &sample(&[("a", 2.0), ("b", 7.0)]));
        // `b` has one point, not a fabricated zero at t=0.
        assert_eq!(rec.history("b", None).unwrap(), vec![(1.0, 7.0)]);
        // Rates need both endpoints; `b` is skipped, `a` reported.
        let rates = rec.rates();
        assert!(rates.iter().any(|(k, v)| k == "a" && *v == 1.0));
        assert!(!rates.iter().any(|(k, _)| k == "b"));
    }

    #[test]
    fn dump_and_flatten_round_trip() {
        let rec = FlightRecorder::new(cfg(8, 2, 8));
        rec.record_at(0.5, &sample(&[("qps", 10.0)]));
        rec.record_at(1.0, &sample(&[("qps", 12.5)]));
        let dump = rec.dump_jsonl();
        assert_eq!(dump.lines().count(), 2);
        let fields = flatten_json(dump.lines().next().unwrap());
        assert!(fields.contains(&("at_secs".to_string(), 0.5)));
        assert!(fields.contains(&("qps".to_string(), 10.0)));
        // Nulls and strings are skipped, numbers kept.
        let mixed = flatten_json("{\"a\":1,\"rss_bytes\":null,\"s\":\"x\",\"b\":2.5}");
        assert_eq!(mixed, vec![("a".to_string(), 1.0), ("b".to_string(), 2.5)]);
    }

    #[test]
    fn sampler_feeds_recorder_and_shuts_down() {
        let rec = Arc::new(FlightRecorder::new(FlightConfig {
            tick: Duration::from_millis(2),
            ..FlightConfig::default()
        }));
        let n = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut sampler = {
            let n = Arc::clone(&n);
            FlightSampler::start(Arc::clone(&rec), move || {
                let v = n.fetch_add(1, Ordering::Relaxed) as f64;
                vec![("ticks".to_string(), v)]
            })
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        while rec.ticks() < 3 {
            assert!(Instant::now() < deadline, "sampler never ticked");
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.shutdown();
        sampler.shutdown(); // idempotent
        let ticks = rec.ticks();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rec.ticks(), ticks, "sampler kept running past shutdown");
        assert!(rec.last("ticks").is_some());
    }
}
