//! The shard-server side of the cluster protocol: one shard's
//! [`SnapshotStore`] behind a framed TCP accept loop, speaking
//! [`crate::shard_proto`] to remote routers.
//!
//! A [`ShardServer`] is what the `netclus-shardd` binary wraps: it owns
//! the shard's snapshot store plus its **own** round-1 caches (provider
//! cache with single-flight builds and the candidate memo — remote
//! routers cannot share the router-process caches, so the server keeps
//! the equivalent pair and invalidates them on every epoch advance), a
//! load gauge feeding `Heartbeat` answers, and an optional
//! [`FaultPlan`] whose socket-level actions let the chaos suite script
//! real-connection failures (drop the connection mid-request, stall
//! past the client's read deadline, corrupt a response frame so its CRC
//! check fails).
//!
//! The listener reuses the telemetry endpoint's hardening: every
//! connection is served on its own thread under read/write deadlines,
//! request frames are bounded at [`crate::wire::MAX_SHARD_REQUEST`],
//! and at most [`ShardServerConfig::max_connections`] connections are
//! served at once — excess connections are dropped without a reply, so
//! a router sees [`crate::fault::ShardFailure::Dropped`] and its
//! breaker/degraded machinery takes over instead of queueing behind a
//! wedged server.
//!
//! Request handling is validate-first: the `Hello` version gate answers
//! [`RespError::VersionSkew`] on protocol skew, and a `Round1` for the
//! wrong shard, an unknown ψ, a hostile `k`, or a non-finite τ is
//! refused with [`RespError::BadRequest`] before any work happens. The
//! round-1 body itself is `resolve_round1` — the same memo → provider →
//! cold resolution the in-process transport runs, so a remote answer is
//! bit-identical to a local one.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use netclus::{ProviderScratch, TopsQuery};

use crate::fault::{FaultAction, FaultPlan};
use crate::framing::{read_frame, write_frame};
use crate::metrics::LatencyHistogram;
use crate::provider_cache::{RoundOneCache, ShardProviderCache};
use crate::shard_proto::{
    preference_from_key, Request, RespError, Response, ResyncSnapshot, SHARD_PROTOCOL_VERSION,
};
use crate::shard_router::resolve_round1;
use crate::snapshot::SnapshotStore;
use crate::telemetry::TelemetrySource;
use crate::trace::LoadGauge;
use crate::wire::{MAX_RESYNC_CHUNK, MAX_SHARD_REQUEST, MAX_WIRE_CANDIDATES};

/// Shard-server tuning.
#[derive(Clone, Debug)]
pub struct ShardServerConfig {
    /// Provider-cache capacity in built providers; **0 disables** (every
    /// round-1 rebuilds — the cold reference path).
    pub provider_cache_capacity: usize,
    /// Round-1 candidate-memo capacity; **0 disables**.
    pub round_memo_capacity: usize,
    /// Threads per provider build on a cache miss.
    pub provider_build_threads: usize,
    /// Per-connection read/write deadline; a client that stalls longer
    /// is dropped.
    pub io_timeout: Duration,
    /// Connections served concurrently before the accept loop sheds new
    /// ones (dropped without a reply — the router classifies that as
    /// [`crate::fault::ShardFailure::Dropped`]).
    pub max_connections: usize,
    /// Scripted fault injection on the round-1 request path (see
    /// [`FaultPlan`]); `None` serves faithfully.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ShardServerConfig {
    fn default() -> Self {
        ShardServerConfig {
            provider_cache_capacity: 32,
            round_memo_capacity: 128,
            provider_build_threads: 1,
            io_timeout: Duration::from_secs(5),
            max_connections: 8,
            fault_plan: None,
        }
    }
}

/// State shared by every connection thread.
struct ServerShared {
    shard: u32,
    store: SnapshotStore,
    providers: Option<ShardProviderCache>,
    rounds: Option<RoundOneCache>,
    build_threads: usize,
    gauge: LoadGauge,
    provider_build: LatencyHistogram,
    round1_latency: LatencyHistogram,
    requests: AtomicU64,
    round1_served: AtomicU64,
    apply_batches: AtomicU64,
    bad_requests: AtomicU64,
    injected_faults: AtomicU64,
    resyncs_served: AtomicU64,
    /// Per-task fault sequence (round-1 requests only, mirroring the
    /// in-process worker hook).
    fault_seq: AtomicU64,
    fault_plan: Option<FaultPlan>,
    stopping: AtomicBool,
}

impl ServerShared {
    /// The single-line JSON the `Report` RPC and the telemetry `metrics`
    /// command serve.
    fn metrics_json(&self) -> String {
        let snap = self.store.load();
        let gauge = self.gauge.snapshot();
        let r1 = self.round1_latency.summary();
        let build = self.provider_build.summary();
        let (phits, pmiss) = self
            .providers
            .as_ref()
            .map(|p| {
                let s = p.stats();
                (s.hits, s.misses)
            })
            .unwrap_or((0, 0));
        let (rhits, rmiss) = self
            .rounds
            .as_ref()
            .map(|r| {
                let s = r.stats();
                (s.hits, s.misses)
            })
            .unwrap_or((0, 0));
        format!(
            "{{\"shard\":{},\"epoch\":{},\"live_trajs\":{},\"traj_id_bound\":{},\
             \"requests\":{},\"round1_served\":{},\"apply_batches\":{},\
             \"bad_requests\":{},\"injected_faults\":{},\"resyncs_served\":{},\
             \"round1_p50_us\":{},\"round1_p99_us\":{},\
             \"provider_build_p99_us\":{},\
             \"provider_hits\":{phits},\"provider_misses\":{pmiss},\
             \"round_hits\":{rhits},\"round_misses\":{rmiss},\
             \"qps_ewma\":{:.3},\"cache_heat\":{:.3},\"cold_fraction\":{:.3}}}",
            self.shard,
            snap.epoch(),
            snap.trajs().len(),
            snap.trajs().id_bound(),
            self.requests.load(Ordering::Relaxed),
            self.round1_served.load(Ordering::Relaxed),
            self.apply_batches.load(Ordering::Relaxed),
            self.bad_requests.load(Ordering::Relaxed),
            self.injected_faults.load(Ordering::Relaxed),
            self.resyncs_served.load(Ordering::Relaxed),
            r1.p50_micros,
            r1.p99_micros,
            build.p99_micros,
            gauge.qps_ewma,
            gauge.cache_heat,
            gauge.cold_fraction,
        )
    }

    fn stages_json(&self) -> String {
        let r1 = self.round1_latency.summary();
        let build = self.provider_build.summary();
        format!(
            "{{\"stage_round1_p50_us\":{},\"stage_round1_p99_us\":{},\
             \"stage_provider_build_p50_us\":{},\"stage_provider_build_p99_us\":{}}}",
            r1.p50_micros, r1.p99_micros, build.p50_micros, build.p99_micros,
        )
    }
}

/// A live connection worker: its join handle plus a clone of its socket
/// so [`ShardServer::shutdown`] can unblock a read in progress instead
/// of waiting out the io deadline.
type ConnWorker = (JoinHandle<()>, Option<TcpStream>);

/// Owned by each connection worker: releases the connection slot when
/// the worker exits — normal return or panic — and shuts the socket
/// down explicitly. The shutdown matters because the accept loop holds
/// a duplicate of the socket (see [`ConnWorker`]); without it that
/// duplicate keeps the TCP connection open after the worker is done,
/// and a peer waiting on a reply sees its read deadline instead of the
/// EOF it should.
struct ConnGuard {
    active: Arc<AtomicUsize>,
    socket: Option<TcpStream>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        if let Some(socket) = &self.socket {
            let _ = socket.shutdown(std::net::Shutdown::Both);
        }
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running shard server: one accept thread handing each connection to
/// a short-lived worker thread, serving the framed shard protocol.
pub struct ShardServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<ConnWorker>>>,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ShardServer {
    /// Binds `addr` (port 0 for an OS-assigned port) and serves `store`
    /// as shard `shard`.
    ///
    /// # Errors
    /// The bind or accept-thread spawn error.
    pub fn start(
        addr: &str,
        shard: u32,
        store: SnapshotStore,
        cfg: ShardServerConfig,
    ) -> io::Result<ShardServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            shard,
            store,
            providers: (cfg.provider_cache_capacity > 0)
                .then(|| ShardProviderCache::new(cfg.provider_cache_capacity)),
            rounds: (cfg.round_memo_capacity > 0)
                .then(|| RoundOneCache::new(cfg.round_memo_capacity)),
            build_threads: cfg.provider_build_threads.max(1),
            gauge: LoadGauge::default(),
            provider_build: LatencyHistogram::default(),
            round1_latency: LatencyHistogram::default(),
            requests: AtomicU64::new(0),
            round1_served: AtomicU64::new(0),
            apply_batches: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            injected_faults: AtomicU64::new(0),
            resyncs_served: AtomicU64::new(0),
            fault_seq: AtomicU64::new(0),
            fault_plan: cfg.fault_plan,
            stopping: AtomicBool::new(false),
        });
        let workers: Arc<Mutex<Vec<ConnWorker>>> = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));
        let io_timeout = cfg.io_timeout;
        let max_connections = cfg.max_connections.max(1);
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name(format!("netclus-shardd-{shard}"))
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.stopping.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let mut guard = lock_recover(&workers);
                        guard.retain(|(h, _)| !h.is_finished());
                        if active.load(Ordering::Acquire) >= max_connections {
                            // Shed by dropping: the router sees the close
                            // as `Dropped` and falls back on its breaker.
                            drop(stream);
                            continue;
                        }
                        active.fetch_add(1, Ordering::AcqRel);
                        let socket = stream.try_clone().ok();
                        let conn_shared = Arc::clone(&shared);
                        let conn_guard = ConnGuard {
                            active: Arc::clone(&active),
                            socket: stream.try_clone().ok(),
                        };
                        let spawned = std::thread::Builder::new()
                            .name(format!("netclus-shardd-{shard}-conn"))
                            .spawn(move || {
                                // Releases the slot and shuts the socket
                                // down on every exit, panic included.
                                let _guard = conn_guard;
                                // A misbehaving client (or an injected
                                // fault) only ever costs its own
                                // connection.
                                let _ = serve_connection(stream, &conn_shared, io_timeout);
                            });
                        // On spawn failure the closure is dropped unrun,
                        // and dropping its captured guard already
                        // releases the connection slot.
                        if let Ok(handle) = spawned {
                            guard.push((handle, socket));
                        }
                    }
                })?
        };
        Ok(ShardServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard id served.
    pub fn shard(&self) -> u32 {
        self.shared.shard
    }

    /// Current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.store.epoch()
    }

    /// The shard-server metrics line (same payload as the `Report` RPC).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics_json()
    }

    /// A [`TelemetrySource`] over this server's own metrics, so a shard
    /// process can expose the standard `metrics`/`stages`/`slow`
    /// telemetry commands on its own port (`netclus-shardd --telemetry`).
    /// Shard servers have no tail-sampler (`slow` is empty) and no
    /// breakers — those live in the router — so `breakers` answers the
    /// endpoint's standard no-breakers error.
    pub fn telemetry_source(&self) -> TelemetrySource {
        let m = Arc::clone(&self.shared);
        let s = Arc::clone(&self.shared);
        TelemetrySource::new(
            move || m.metrics_json(),
            move || s.stages_json(),
            String::new,
        )
    }

    /// Whether a `Shutdown` RPC has been accepted (the accept loop is
    /// winding down).
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::Acquire)
    }

    /// Stops the accept loop and joins all connection threads. Prompt:
    /// live connection sockets are shut down so a worker blocked in a
    /// read returns immediately instead of waiting out the io deadline.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.stopping.swap(true, Ordering::AcqRel) {
            // Another path (a `Shutdown` RPC) already initiated the stop;
            // still join below so shutdown() is a barrier either way.
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let workers = std::mem::take(&mut *lock_recover(&self.workers));
        for (handle, socket) in workers {
            if let Some(socket) = socket {
                let _ = socket.shutdown(std::net::Shutdown::Both);
            }
            let _ = handle.join();
        }
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What the fault hook decided to do to this response.
enum Delivery {
    /// Send the response as-is.
    Send(Response),
    /// Send a deliberately CRC-broken frame of the response.
    Corrupt(Response),
    /// Swallow the response (the client's read deadline fires).
    Swallow,
    /// Close the connection without replying.
    Hangup,
}

/// Serves one connection: a loop of framed request → framed response.
/// Any io or protocol error just drops the connection — the router maps
/// that onto its failure taxonomy and the server keeps serving others.
fn serve_connection(
    stream: TcpStream,
    shared: &ServerShared,
    io_timeout: Duration,
) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut scratch = ProviderScratch::default();
    // A resync transfer pins one encoded corpus snapshot per connection,
    // so every chunk the client assembles comes from the same epoch even
    // while applies land concurrently. Re-pinned when a client restarts
    // the transfer at offset 0.
    let mut resync: Option<(u64, Vec<u8>)> = None;
    while let Some(payload) = read_frame(&mut reader, MAX_SHARD_REQUEST)? {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let Ok(req) = Request::decode(&payload) else {
            // An undecodable request means the stream is torn or the
            // peer is hostile: refuse and close.
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            send(&mut writer, &Response::Error(RespError::BadRequest))?;
            break;
        };
        let close_after = matches!(req, Request::Shutdown)
            || matches!(req, Request::Hello { version, .. } if version != SHARD_PROTOCOL_VERSION);
        if matches!(req, Request::Shutdown) {
            shared.stopping.store(true, Ordering::Release);
        }
        match handle_request(shared, req, &mut scratch, &mut resync) {
            Delivery::Send(resp) => send(&mut writer, &resp)?,
            Delivery::Corrupt(resp) => send_corrupted(&mut writer, &resp)?,
            Delivery::Swallow => {}
            Delivery::Hangup => break,
        }
        if close_after {
            break;
        }
    }
    Ok(())
}

fn send(writer: &mut BufWriter<TcpStream>, resp: &Response) -> io::Result<()> {
    write_frame(writer, &resp.encode())?;
    writer.flush()
}

/// Frames the response, then flips the last payload byte so the CRC
/// check fails on the client — the scripted
/// [`FaultAction::CorruptFrame`] over a real socket.
fn send_corrupted(writer: &mut BufWriter<TcpStream>, resp: &Response) -> io::Result<()> {
    let mut framed = Vec::new();
    write_frame(&mut framed, &resp.encode())?;
    let last = framed.len() - 1;
    framed[last] ^= 0x01;
    writer.write_all(&framed)?;
    writer.flush()
}

fn handle_request(
    shared: &ServerShared,
    req: Request,
    scratch: &mut ProviderScratch,
    resync: &mut Option<(u64, Vec<u8>)>,
) -> Delivery {
    match req {
        Request::Hello { version, shard } => {
            if version != SHARD_PROTOCOL_VERSION {
                return Delivery::Send(Response::Error(RespError::VersionSkew));
            }
            if shard != shared.shard {
                shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                return Delivery::Send(Response::Error(RespError::BadRequest));
            }
            let snap = shared.store.load();
            Delivery::Send(Response::HelloAck {
                version: SHARD_PROTOCOL_VERSION,
                shard: shared.shard,
                epoch: snap.epoch(),
                traj_id_bound: snap.trajs().id_bound() as u64,
                live_trajs: snap.trajs().len() as u64,
            })
        }
        Request::Round1 {
            epoch_hint: _,
            shard,
            k,
            tau_bits,
            psi_tag,
            psi_param,
            variant,
        } => {
            // The scripted fault hook sits where the in-process worker's
            // does: on the round-1 task path, sequenced per request.
            let fault = shared.fault_plan.as_ref().and_then(|plan| {
                let seq = shared.fault_seq.fetch_add(1, Ordering::Relaxed);
                // A standalone server process is one replica of its
                // shard; replica scoping is decided by which server a
                // plan is installed on, so the hook reports replica 0.
                plan.decide(shared.shard, 0, seq)
            });
            match fault {
                Some(FaultAction::Delay(d)) | Some(FaultAction::Stall(d)) => {
                    // Delay answers late; Stall (typically scripted past
                    // the client's read deadline) answers so late the
                    // client has already classified the shard TimedOut.
                    std::thread::sleep(d);
                }
                Some(FaultAction::Error) => {
                    shared.injected_faults.fetch_add(1, Ordering::Relaxed);
                    return Delivery::Send(Response::Error(RespError::Injected));
                }
                Some(FaultAction::Panic) => {
                    shared.injected_faults.fetch_add(1, Ordering::Relaxed);
                    // The connection thread dies; the client observes the
                    // hangup as `Dropped`.
                    panic!("scripted shard-server panic (fault injection)");
                }
                Some(FaultAction::Drop) => {
                    shared.injected_faults.fetch_add(1, Ordering::Relaxed);
                    return Delivery::Swallow;
                }
                Some(FaultAction::DropConnection) => {
                    shared.injected_faults.fetch_add(1, Ordering::Relaxed);
                    return Delivery::Hangup;
                }
                Some(FaultAction::CorruptFrame) => {
                    shared.injected_faults.fetch_add(1, Ordering::Relaxed);
                    // Compute the real answer, then break its frame.
                    if let Some(resp) = round1_response(
                        shared, shard, k, tau_bits, psi_tag, psi_param, variant, scratch,
                    ) {
                        return Delivery::Corrupt(resp);
                    }
                    return Delivery::Send(Response::Error(RespError::BadRequest));
                }
                None => {}
            }
            match round1_response(
                shared, shard, k, tau_bits, psi_tag, psi_param, variant, scratch,
            ) {
                Some(resp) => Delivery::Send(resp),
                None => {
                    shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                    Delivery::Send(Response::Error(RespError::BadRequest))
                }
            }
        }
        Request::Apply { ops } => {
            let (receipt, results) = shared.store.apply_routed_results(&ops);
            // The new epoch is published: everything keyed to older
            // epochs is dead weight.
            if let Some(providers) = &shared.providers {
                providers.invalidate_before(receipt.epoch);
            }
            if let Some(rounds) = &shared.rounds {
                rounds.invalidate_before(receipt.epoch);
            }
            shared.apply_batches.fetch_add(1, Ordering::Relaxed);
            let snap = shared.store.load();
            Delivery::Send(Response::ApplyAck {
                epoch: receipt.epoch,
                live_trajs: snap.trajs().len() as u64,
                results,
            })
        }
        Request::Resync { shard, offset } => {
            if shard != shared.shard {
                shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                return Delivery::Send(Response::Error(RespError::BadRequest));
            }
            if offset == 0 || resync.is_none() {
                let snap = shared.store.load();
                let blob = ResyncSnapshot::capture(&snap).encode();
                *resync = Some((snap.epoch(), blob));
                if offset == 0 {
                    shared.resyncs_served.fetch_add(1, Ordering::Relaxed);
                }
            }
            let (epoch, blob) = resync.as_ref().expect("resync blob pinned above");
            let offset = offset as usize;
            if offset > blob.len() {
                shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                return Delivery::Send(Response::Error(RespError::BadRequest));
            }
            let end = blob.len().min(offset + MAX_RESYNC_CHUNK);
            Delivery::Send(Response::ResyncChunk {
                epoch: *epoch,
                total_len: blob.len() as u64,
                data: blob[offset..end].to_vec(),
            })
        }
        Request::Report => Delivery::Send(Response::ReportJson {
            json: shared.metrics_json(),
        }),
        Request::Heartbeat => {
            let snap = shared.store.load();
            let gauge = shared.gauge.snapshot();
            Delivery::Send(Response::HeartbeatAck {
                epoch: snap.epoch(),
                load_qps: gauge.qps_ewma,
                cache_heat: gauge.cache_heat,
                live_trajs: snap.trajs().len() as u64,
            })
        }
        Request::Shutdown => Delivery::Send(Response::ShutdownAck),
    }
}

/// Validates and answers one round-1 request; `None` is a refusal
/// (mis-routed shard, unknown ψ, hostile `k`, non-finite τ).
#[allow(clippy::too_many_arguments)]
fn round1_response(
    shared: &ServerShared,
    shard: u32,
    k: u64,
    tau_bits: u64,
    psi_tag: u8,
    psi_param: u64,
    variant: u8,
    scratch: &mut ProviderScratch,
) -> Option<Response> {
    if shard != shared.shard || variant != 0 {
        return None;
    }
    let tau = f64::from_bits(tau_bits);
    if !tau.is_finite() || tau <= 0.0 {
        return None;
    }
    if k == 0 || k > MAX_WIRE_CANDIDATES as u64 {
        return None;
    }
    let preference = preference_from_key(psi_tag, psi_param)?;
    let query = TopsQuery {
        k: k as usize,
        tau,
        preference,
    };
    let snap = shared.store.load();
    let started = std::time::Instant::now();
    let ok = resolve_round1(
        &snap,
        shared.shard,
        &query,
        shared.providers.as_ref(),
        shared.rounds.as_ref(),
        shared.build_threads,
        scratch,
        &shared.provider_build,
    );
    shared.round1_latency.record(started.elapsed());
    shared.round1_served.fetch_add(1, Ordering::Relaxed);
    shared.gauge.observe(ok.source);
    Some(Response::Round1Ok {
        epoch: ok.epoch,
        bound: ok.bound as u64,
        source: ok.source,
        round: ok.round,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRule;
    use crate::shard_router::{RemoteShardConfig, ShardTransport};
    use crate::snapshot::RoutedOp;
    use crate::ShardFailure;
    use netclus::prelude::*;
    use netclus_roadnet::{Point, RoadNetworkBuilder};
    use netclus_trajectory::{Trajectory, TrajectorySet};
    use std::sync::Arc;

    fn line_store() -> SnapshotStore {
        let mut b = RoadNetworkBuilder::new();
        let nodes: Vec<_> = (0..8)
            .map(|i| b.add_node(Point::new(i as f64 * 300.0, 0.0)))
            .collect();
        for w in nodes.windows(2) {
            b.add_two_way(w[0], w[1], 300.0).unwrap();
        }
        let net = Arc::new(b.build().unwrap());
        let mut trajs = TrajectorySet::for_network(&net);
        trajs.add(Trajectory::new(nodes[0..5].to_vec()));
        trajs.add(Trajectory::new(nodes[2..8].to_vec()));
        let sites: Vec<_> = net.nodes().collect();
        let index = NetClusIndex::build(
            &net,
            &trajs,
            &sites,
            NetClusConfig {
                tau_min: 600.0,
                tau_max: 2_400.0,
                threads: 1,
                ..Default::default()
            },
        );
        SnapshotStore::with_shared_net(net, trajs, index)
    }

    fn server(cfg: ShardServerConfig) -> ShardServer {
        ShardServer::start("127.0.0.1:0", 0, line_store(), cfg).expect("start shard server")
    }

    fn remote(server: &ShardServer) -> crate::shard_router::RemoteShard {
        crate::shard_router::RemoteShard::new(0, server.addr(), RemoteShardConfig::default())
    }

    #[test]
    fn hello_round1_apply_heartbeat_over_a_real_socket() {
        let mut srv = server(ShardServerConfig::default());
        let shard = remote(&srv);
        let hello = shard.hello().expect("hello");
        assert_eq!(hello.epoch, 0);
        assert_eq!(hello.live_trajs, 2);

        // Round 1 through the ShardTransport interface.
        let query = TopsQuery::binary(2, 900.0);
        let mut scratch = ProviderScratch::default();
        let hist = LatencyHistogram::default();
        let mut ctx = crate::shard_router::Round1Ctx {
            shard: 0,
            deadline: None,
            providers: None,
            rounds: None,
            build_threads: 1,
            scratch: &mut scratch,
            provider_build: &hist,
        };
        let ok = shard.round1(&query, &mut ctx).expect("round1");
        assert_eq!(ok.epoch, 0);
        assert!(!ok.round.candidates.is_empty());

        // An empty lockstep batch still advances the epoch.
        let outcome = shard.apply(&[]).expect("apply");
        assert_eq!(outcome.epoch, 1);
        assert!(outcome.results.is_empty());
        assert_eq!(shard.epoch(), 1);

        // A routed remove acks true and drops the live count.
        let outcome = shard
            .apply(&[RoutedOp::RemoveTrajectory(netclus_trajectory::TrajId(0))])
            .expect("apply remove");
        assert_eq!(outcome.epoch, 2);
        assert_eq!(outcome.results, vec![true]);
        assert_eq!(srv.epoch(), 2);
        srv.shutdown();
    }

    #[test]
    fn version_skew_and_misrouted_requests_are_refused() {
        let mut srv = server(ShardServerConfig::default());
        // Wrong shard id in the handshake: the transport reports skew
        // (its hello validates the ack) or corrupt; the server answers
        // BadRequest which the client maps to CorruptReply.
        let wrong =
            crate::shard_router::RemoteShard::new(7, srv.addr(), RemoteShardConfig::default());
        assert!(matches!(
            wrong.hello(),
            Err(ShardFailure::CorruptReply) | Err(ShardFailure::VersionSkew)
        ));
        srv.shutdown();
    }

    #[test]
    fn hostile_round1_fields_get_bad_request_not_panic() {
        let mut srv = server(ShardServerConfig::default());
        let stream = TcpStream::connect(srv.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        let mut rpc = |req: &Request| -> Response {
            write_frame(&mut writer, &req.encode()).unwrap();
            writer.flush().unwrap();
            let frame = read_frame(&mut reader, crate::wire::MAX_SHARD_RESPONSE)
                .unwrap()
                .unwrap();
            Response::decode(&frame).unwrap()
        };
        // NaN τ, k = 0, unknown ψ, wrong shard — all typed refusals.
        let bads = [
            Request::Round1 {
                epoch_hint: 0,
                shard: 0,
                k: 1,
                tau_bits: f64::NAN.to_bits(),
                psi_tag: 0,
                psi_param: 0,
                variant: 0,
            },
            Request::Round1 {
                epoch_hint: 0,
                shard: 0,
                k: 0,
                tau_bits: 900f64.to_bits(),
                psi_tag: 0,
                psi_param: 0,
                variant: 0,
            },
            Request::Round1 {
                epoch_hint: 0,
                shard: 0,
                k: 1,
                tau_bits: 900f64.to_bits(),
                psi_tag: 9,
                psi_param: 0,
                variant: 0,
            },
            Request::Round1 {
                epoch_hint: 0,
                shard: 3,
                k: 1,
                tau_bits: 900f64.to_bits(),
                psi_tag: 0,
                psi_param: 0,
                variant: 0,
            },
        ];
        for bad in &bads {
            assert_eq!(rpc(bad), Response::Error(RespError::BadRequest), "{bad:?}");
        }
        // The connection is still serviceable afterwards.
        assert!(matches!(
            rpc(&Request::Heartbeat),
            Response::HeartbeatAck { .. }
        ));
        srv.shutdown();
    }

    #[test]
    fn scripted_socket_faults_map_to_the_failure_taxonomy() {
        let plan = FaultPlan::new(11)
            .with_rule(FaultRule {
                shard: 0,
                replica: None,
                action: FaultAction::Error,
                probability: 1.0,
                window: Some((0, 1)),
            })
            .with_rule(FaultRule {
                shard: 0,
                replica: None,
                action: FaultAction::CorruptFrame,
                probability: 1.0,
                window: Some((1, 2)),
            })
            .with_rule(FaultRule {
                shard: 0,
                replica: None,
                action: FaultAction::DropConnection,
                probability: 1.0,
                window: Some((2, 3)),
            });
        let mut srv = server(ShardServerConfig {
            fault_plan: Some(plan),
            ..Default::default()
        });
        let shard = remote(&srv);
        let query = TopsQuery::binary(1, 900.0);
        let hist = LatencyHistogram::default();
        let mut scratch = ProviderScratch::default();
        let run = |scratch: &mut ProviderScratch| {
            let mut ctx = crate::shard_router::Round1Ctx {
                shard: 0,
                deadline: None,
                providers: None,
                rounds: None,
                build_threads: 1,
                scratch,
                provider_build: &hist,
            };
            shard.round1(&query, &mut ctx)
        };
        assert!(matches!(run(&mut scratch), Err(ShardFailure::Injected)));
        assert!(matches!(run(&mut scratch), Err(ShardFailure::CorruptReply)));
        assert!(matches!(run(&mut scratch), Err(ShardFailure::Dropped)));
        // The script is exhausted: service recovers over a fresh
        // connection (the transport reconnects transparently).
        assert!(run(&mut scratch).is_ok());
        let snap = shard.counters().expect("remote counters").snapshot();
        assert_eq!(snap.errors, 3);
        assert!(snap.reconnects >= 2, "faults force reconnects");
        srv.shutdown();
    }

    #[test]
    fn report_and_telemetry_serve_the_metrics_line() {
        let mut srv = server(ShardServerConfig::default());
        let line = srv.metrics_json();
        assert!(line.contains("\"shard\":0"));
        assert!(line.contains("\"live_trajs\":2"));
        let telemetry =
            crate::telemetry::TelemetryServer::start("127.0.0.1:0", srv.telemetry_source())
                .expect("telemetry");
        let fetched = crate::telemetry::fetch(telemetry.addr(), "metrics").unwrap();
        assert!(fetched.contains("\"shard\":0"));
        let stages = crate::telemetry::fetch(telemetry.addr(), "stages").unwrap();
        assert!(stages.contains("stage_round1_p50_us"));
        // health/breakers answer their standard unattached errors.
        assert!(crate::telemetry::fetch(telemetry.addr(), "breakers")
            .unwrap()
            .contains("no circuit breakers"));
        srv.shutdown();
    }

    #[test]
    fn shutdown_rpc_stops_the_accept_loop() {
        let srv = server(ShardServerConfig::default());
        let stream = TcpStream::connect(srv.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        write_frame(&mut writer, &Request::Shutdown.encode()).unwrap();
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let frame = read_frame(&mut reader, crate::wire::MAX_SHARD_RESPONSE)
            .unwrap()
            .unwrap();
        assert_eq!(Response::decode(&frame).unwrap(), Response::ShutdownAck);
        assert!(srv.is_stopping());
    }
}
