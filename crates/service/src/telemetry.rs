//! Live telemetry endpoint: a tiny std-only TCP server publishing the
//! metrics snapshot, the slow-query log, and the per-stage latency
//! breakdown on demand.
//!
//! The wire protocol reuses the workspace's length-prefix/CRC framing
//! ([`crate::framing`]) — no HTTP stack, no dependencies. A client sends
//! one framed UTF-8 command and reads one framed UTF-8 response per
//! request; commands are:
//!
//! | command   | response                                              |
//! |-----------|-------------------------------------------------------|
//! | `metrics` | the `MetricsReport`/`IngestReport` JSON line          |
//! | `stages`  | per-stage latency breakdown + trace retention counters |
//! | `slow`    | the slow-query log, JSON Lines (may be empty)          |
//!
//! Unknown commands get `{"error":"unknown command"}` rather than a
//! dropped connection, so probes stay debuggable. Responses are rendered
//! at request time — every fetch is a fresh snapshot.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::framing::{read_frame, write_frame};

/// Upper bound on a telemetry frame (command or response).
pub const MAX_TELEMETRY_FRAME: usize = 4 << 20;

type Render = Box<dyn Fn() -> String + Send + Sync>;

/// The data a [`TelemetryServer`] publishes: three render closures, each
/// producing a fresh snapshot per request.
pub struct TelemetrySource {
    metrics: Render,
    stages: Render,
    slow: Render,
}

impl std::fmt::Debug for TelemetrySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySource").finish_non_exhaustive()
    }
}

impl TelemetrySource {
    /// Builds a source from three render closures (`metrics`, `stages`,
    /// `slow` in that order).
    pub fn new(
        metrics: impl Fn() -> String + Send + Sync + 'static,
        stages: impl Fn() -> String + Send + Sync + 'static,
        slow: impl Fn() -> String + Send + Sync + 'static,
    ) -> Self {
        TelemetrySource {
            metrics: Box::new(metrics),
            stages: Box::new(stages),
            slow: Box::new(slow),
        }
    }

    fn render(&self, command: &str) -> String {
        match command {
            "metrics" => (self.metrics)(),
            "stages" => (self.stages)(),
            "slow" => (self.slow)(),
            _ => "{\"error\":\"unknown command\"}".to_string(),
        }
    }
}

/// A running telemetry endpoint. Accepts connections on a background
/// thread and serves them inline — telemetry traffic is a handful of
/// probes, not a query path, so one connection at a time keeps the server
/// at a single thread and zero queueing state.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving `source`.
    pub fn start(addr: &str, source: TelemetrySource) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stopping = Arc::clone(&stopping);
            std::thread::Builder::new()
                .name("netclus-telemetry".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stopping.load(Ordering::Acquire) {
                            break;
                        }
                        if let Ok(stream) = stream {
                            // A misbehaving client must not wedge the
                            // endpoint: errors just drop the connection.
                            let _ = serve_connection(stream, &source);
                        }
                    }
                })?
        };
        Ok(TelemetryServer {
            addr,
            stopping,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(stream: TcpStream, source: &TelemetrySource) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader, MAX_TELEMETRY_FRAME)? {
        let command = std::str::from_utf8(&payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 command"))?;
        let response = source.render(command.trim());
        write_frame(&mut writer, response.as_bytes())?;
        writer.flush()?;
    }
    Ok(())
}

/// One-shot client: connects to `addr`, sends `command` as a frame, and
/// returns the framed response as a string.
pub fn fetch(addr: SocketAddr, command: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    write_frame(&mut writer, command.as_bytes())?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let payload = read_frame(&mut reader, MAX_TELEMETRY_FRAME)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed early"))?;
    String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_source() -> TelemetrySource {
        TelemetrySource::new(
            || "{\"completed\":7}".to_string(),
            || "{\"stage_round1_p50_us\":42}".to_string(),
            || "{\"seq\":0}\n{\"seq\":1}\n".to_string(),
        )
    }

    #[test]
    fn serves_all_commands_over_framed_protocol() {
        let mut server = TelemetryServer::start("127.0.0.1:0", test_source()).unwrap();
        let addr = server.addr();
        assert_eq!(fetch(addr, "metrics").unwrap(), "{\"completed\":7}");
        assert_eq!(
            fetch(addr, "stages").unwrap(),
            "{\"stage_round1_p50_us\":42}"
        );
        let slow = fetch(addr, "slow").unwrap();
        assert_eq!(slow.lines().count(), 2);
        assert_eq!(
            fetch(addr, "bogus").unwrap(),
            "{\"error\":\"unknown command\"}"
        );
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn one_connection_can_issue_many_requests() {
        let server = TelemetryServer::start("127.0.0.1:0", test_source()).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        for _ in 0..3 {
            write_frame(&mut writer, b"metrics").unwrap();
            writer.flush().unwrap();
            let payload = read_frame(&mut reader, MAX_TELEMETRY_FRAME)
                .unwrap()
                .unwrap();
            assert_eq!(payload, b"{\"completed\":7}");
        }
    }

    #[test]
    fn shutdown_joins_even_with_no_traffic() {
        let mut server = TelemetryServer::start("127.0.0.1:0", test_source()).unwrap();
        server.shutdown();
        assert!(fetch(server.addr(), "metrics").is_err());
    }
}
