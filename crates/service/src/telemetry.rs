//! Live telemetry endpoint: a tiny std-only TCP server publishing the
//! metrics snapshot, the slow-query log, the per-stage latency
//! breakdown, and — when a flight recorder is attached — retained
//! time-series history, rates, and SLO health on demand.
//!
//! The wire protocol reuses the workspace's length-prefix/CRC framing
//! ([`crate::framing`]) — no HTTP stack, no dependencies. A client sends
//! one framed UTF-8 command and reads one framed UTF-8 response per
//! request; commands are:
//!
//! | command                     | response                                               |
//! |-----------------------------|--------------------------------------------------------|
//! | `metrics`                   | the `MetricsReport`/`IngestReport` JSON line           |
//! | `stages`                    | per-stage latency breakdown + trace retention counters |
//! | `slow`                      | the slow-query log, JSON Lines (may be empty)          |
//! | `history <series> [window]` | retained `[t, v]` points of one recorder series        |
//! | `rates`                     | per-second rate of every series over the last tick     |
//! | `health`                    | SLO evaluation: verdict + per-rule detail              |
//! | `breakers`                  | per-shard circuit-breaker states and counters          |
//!
//! `history`/`rates`/`health` answer `{"error":"no flight recorder"}`
//! unless the source was built [`TelemetrySource::with_flight`];
//! `breakers` answers `{"error":"no circuit breakers"}` unless built
//! [`TelemetrySource::with_breakers`] (the router path).
//!
//! Unknown commands get `{"error":"unknown command"}` rather than a
//! dropped connection, so probes stay debuggable. Responses are rendered
//! at request time — every fetch is a fresh snapshot.
//!
//! The listener is hardened against slow or hostile clients: each
//! connection is served on its own thread with a read/write deadline,
//! request frames are bounded at [`MAX_TELEMETRY_COMMAND`] bytes, and at
//! most [`MAX_TELEMETRY_CONNECTIONS`] connections are served at once
//! (excess connections get a framed error and are dropped). A stalled
//! client therefore occupies one slot for at most the read deadline and
//! never wedges the accept loop.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::flight::FlightRecorder;
use crate::framing::{read_frame, write_frame};
use crate::health::HealthEvaluator;

/// Upper bound on a telemetry response frame (defined with every other
/// wire limit in [`crate::wire`]).
pub const MAX_TELEMETRY_FRAME: usize = crate::wire::MAX_TELEMETRY_FRAME;

/// Upper bound on a request (command) frame — commands are a few words,
/// so anything larger is a hostile or confused client (defined in
/// [`crate::wire`]).
pub const MAX_TELEMETRY_COMMAND: usize = crate::wire::MAX_COMMAND_FRAME;

/// Connections served concurrently before the listener starts shedding.
pub const MAX_TELEMETRY_CONNECTIONS: usize = 8;

type Render = Box<dyn Fn() -> String + Send + Sync>;

/// The data a [`TelemetryServer`] publishes: render closures for the
/// snapshot commands, plus an optional flight recorder + health
/// evaluator backing `history`/`rates`/`health`.
pub struct TelemetrySource {
    metrics: Render,
    stages: Render,
    slow: Render,
    flight: Option<(Arc<FlightRecorder>, HealthEvaluator)>,
    breakers: Option<Render>,
}

impl std::fmt::Debug for TelemetrySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySource").finish_non_exhaustive()
    }
}

impl TelemetrySource {
    /// Builds a source from three render closures (`metrics`, `stages`,
    /// `slow` in that order), with no flight recorder attached.
    pub fn new(
        metrics: impl Fn() -> String + Send + Sync + 'static,
        stages: impl Fn() -> String + Send + Sync + 'static,
        slow: impl Fn() -> String + Send + Sync + 'static,
    ) -> Self {
        TelemetrySource {
            metrics: Box::new(metrics),
            stages: Box::new(stages),
            slow: Box::new(slow),
            flight: None,
            breakers: None,
        }
    }

    /// Attaches a flight recorder and SLO evaluator, enabling the
    /// `history`, `rates`, and `health` commands.
    #[must_use]
    pub fn with_flight(mut self, recorder: Arc<FlightRecorder>, health: HealthEvaluator) -> Self {
        self.flight = Some((recorder, health));
        self
    }

    /// Attaches a circuit-breaker snapshot renderer (the router's
    /// [`crate::ShardRouter::breakers_json`]), enabling the `breakers`
    /// command.
    #[must_use]
    pub fn with_breakers(mut self, breakers: impl Fn() -> String + Send + Sync + 'static) -> Self {
        self.breakers = Some(Box::new(breakers));
        self
    }

    fn render(&self, command: &str) -> String {
        let mut words = command.split_whitespace();
        match words.next() {
            Some("metrics") => (self.metrics)(),
            Some("stages") => (self.stages)(),
            Some("slow") => (self.slow)(),
            Some("history") => match (&self.flight, words.next()) {
                (None, _) => no_recorder(),
                (Some(_), None) => {
                    "{\"error\":\"usage: history <series> [window_secs]\"}".to_string()
                }
                (Some((recorder, _)), Some(series)) => {
                    let window = words.next().and_then(|w| w.parse::<f64>().ok());
                    recorder.history_json(series, window)
                }
            },
            Some("rates") => match &self.flight {
                None => no_recorder(),
                Some((recorder, _)) => recorder.rates_json(),
            },
            Some("health") => match &self.flight {
                None => no_recorder(),
                Some((recorder, health)) => health.evaluate(recorder).to_json_line(),
            },
            Some("breakers") => match &self.breakers {
                None => "{\"error\":\"no circuit breakers\"}".to_string(),
                Some(render) => render(),
            },
            _ => "{\"error\":\"unknown command\"}".to_string(),
        }
    }
}

fn no_recorder() -> String {
    "{\"error\":\"no flight recorder\"}".to_string()
}

/// A running telemetry endpoint: an accept thread handing each
/// connection to a short-lived worker thread, bounded by
/// [`MAX_TELEMETRY_CONNECTIONS`].
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TelemetryServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving `source`.
    pub fn start(addr: &str, source: TelemetrySource) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let source = Arc::new(source);
        let active = Arc::new(AtomicUsize::new(0));
        let accept_thread = {
            let stopping = Arc::clone(&stopping);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name("netclus-telemetry".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stopping.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // Reap finished workers so the handle list stays
                        // proportional to live connections.
                        let mut guard = workers.lock().expect("telemetry workers poisoned");
                        guard.retain(|h| !h.is_finished());
                        if active.load(Ordering::Acquire) >= MAX_TELEMETRY_CONNECTIONS {
                            // Shed: tell the client why, then drop. Errors
                            // here are the client's problem, not ours.
                            let _ = shed_connection(stream);
                            continue;
                        }
                        active.fetch_add(1, Ordering::AcqRel);
                        let source = Arc::clone(&source);
                        let conn_active = Arc::clone(&active);
                        let spawned = std::thread::Builder::new()
                            .name("netclus-telemetry-conn".into())
                            .spawn(move || {
                                // A misbehaving client must not wedge the
                                // endpoint: errors just drop the connection.
                                let _ = serve_connection(stream, &source);
                                conn_active.fetch_sub(1, Ordering::AcqRel);
                            });
                        match spawned {
                            Ok(handle) => guard.push(handle),
                            Err(_) => {
                                active.fetch_sub(1, Ordering::AcqRel);
                            }
                        }
                    }
                })?
        };
        Ok(TelemetryServer {
            addr,
            stopping,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server and all connection
    /// threads. Idempotent. In-flight connections finish within their
    /// read deadline.
    pub fn shutdown(&mut self) {
        if self.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let workers =
            std::mem::take(&mut *self.workers.lock().expect("telemetry workers poisoned"));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn shed_connection(stream: TcpStream) -> io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_secs(1)))?;
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, b"{\"error\":\"too many connections\"}")?;
    writer.flush()
}

fn serve_connection(stream: TcpStream, source: &TelemetrySource) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader, MAX_TELEMETRY_COMMAND)? {
        let command = std::str::from_utf8(&payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 command"))?;
        let response = source.render(command.trim());
        write_frame(&mut writer, response.as_bytes())?;
        writer.flush()?;
    }
    Ok(())
}

/// One-shot client: connects to `addr`, sends `command` as a frame, and
/// returns the framed response as a string.
pub fn fetch(addr: SocketAddr, command: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    write_frame(&mut writer, command.as_bytes())?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let payload = read_frame(&mut reader, MAX_TELEMETRY_FRAME)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed early"))?;
    String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightConfig;
    use crate::health::{Severity, SloRule};

    fn test_source() -> TelemetrySource {
        TelemetrySource::new(
            || "{\"completed\":7}".to_string(),
            || "{\"stage_round1_p50_us\":42}".to_string(),
            || "{\"seq\":0}\n{\"seq\":1}\n".to_string(),
        )
    }

    fn flight_source() -> (TelemetrySource, Arc<FlightRecorder>) {
        let recorder = Arc::new(FlightRecorder::new(FlightConfig::default()));
        let health = HealthEvaluator::new().with_rule(SloRule::ceiling(
            "freshness",
            "visibility_lag_us",
            1_000.0,
            Severity::Degrading,
        ));
        let source = test_source().with_flight(Arc::clone(&recorder), health);
        (source, recorder)
    }

    #[test]
    fn serves_all_commands_over_framed_protocol() {
        let mut server = TelemetryServer::start("127.0.0.1:0", test_source()).unwrap();
        let addr = server.addr();
        assert_eq!(fetch(addr, "metrics").unwrap(), "{\"completed\":7}");
        assert_eq!(
            fetch(addr, "stages").unwrap(),
            "{\"stage_round1_p50_us\":42}"
        );
        let slow = fetch(addr, "slow").unwrap();
        assert_eq!(slow.lines().count(), 2);
        assert_eq!(
            fetch(addr, "bogus").unwrap(),
            "{\"error\":\"unknown command\"}"
        );
        // Recorder commands without a recorder attached.
        assert_eq!(
            fetch(addr, "health").unwrap(),
            "{\"error\":\"no flight recorder\"}"
        );
        assert_eq!(
            fetch(addr, "rates").unwrap(),
            "{\"error\":\"no flight recorder\"}"
        );
        assert_eq!(
            fetch(addr, "history qps").unwrap(),
            "{\"error\":\"no flight recorder\"}"
        );
        assert_eq!(
            fetch(addr, "breakers").unwrap(),
            "{\"error\":\"no circuit breakers\"}"
        );
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn serves_breaker_snapshots_when_attached() {
        let source = test_source().with_breakers(|| "{\"shards\":2,\"open\":1}".to_string());
        let server = TelemetryServer::start("127.0.0.1:0", source).unwrap();
        assert_eq!(
            fetch(server.addr(), "breakers").unwrap(),
            "{\"shards\":2,\"open\":1}"
        );
    }

    #[test]
    fn serves_recorder_commands_when_attached() {
        let (source, recorder) = flight_source();
        let server = TelemetryServer::start("127.0.0.1:0", source).unwrap();
        let addr = server.addr();
        recorder.record_at(0.0, &[("visibility_lag_us".to_string(), 100.0)]);
        recorder.record_at(1.0, &[("visibility_lag_us".to_string(), 300.0)]);
        let history = fetch(addr, "history visibility_lag_us").unwrap();
        assert!(history.starts_with("{\"series\":\"visibility_lag_us\""));
        assert!(history.contains("[1.000,300.000]"));
        // Windows anchor at the newest retained tick: a zero window keeps
        // exactly the newest point.
        let windowed = fetch(addr, "history visibility_lag_us 0").unwrap();
        assert!(windowed.contains("\"points\":[[1.000,300.000]]"));
        let rates = fetch(addr, "rates").unwrap();
        assert!(rates.contains("\"visibility_lag_us\":200.000"));
        let health = fetch(addr, "health").unwrap();
        assert!(health.contains("\"verdict\":\"healthy\""));
        assert_eq!(
            fetch(addr, "history").unwrap(),
            "{\"error\":\"usage: history <series> [window_secs]\"}"
        );
        assert!(fetch(addr, "history nope")
            .unwrap()
            .contains("unknown series"));
    }

    #[test]
    fn one_connection_can_issue_many_requests() {
        let server = TelemetryServer::start("127.0.0.1:0", test_source()).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        for _ in 0..3 {
            write_frame(&mut writer, b"metrics").unwrap();
            writer.flush().unwrap();
            let payload = read_frame(&mut reader, MAX_TELEMETRY_FRAME)
                .unwrap()
                .unwrap();
            assert_eq!(payload, b"{\"completed\":7}");
        }
    }

    #[test]
    fn stalled_client_does_not_wedge_other_clients() {
        let mut server = TelemetryServer::start("127.0.0.1:0", test_source()).unwrap();
        let addr = server.addr();
        // A client that connects and sends nothing holds one slot until
        // its read deadline — other clients must be served immediately.
        let staller = TcpStream::connect(addr).unwrap();
        let started = std::time::Instant::now();
        assert_eq!(fetch(addr, "metrics").unwrap(), "{\"completed\":7}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "fetch had to wait behind the stalled connection"
        );
        drop(staller);
        server.shutdown();
    }

    #[test]
    fn oversized_command_drops_the_connection_only() {
        let server = TelemetryServer::start("127.0.0.1:0", test_source()).unwrap();
        let addr = server.addr();
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let huge = vec![b'a'; MAX_TELEMETRY_COMMAND + 1];
        write_frame(&mut writer, &huge).unwrap();
        writer.flush().unwrap();
        // The server rejects the oversized frame and closes this
        // connection; the endpoint itself keeps serving.
        let mut reader = BufReader::new(stream);
        assert!(matches!(
            read_frame(&mut reader, MAX_TELEMETRY_FRAME),
            Ok(None) | Err(_)
        ));
        assert_eq!(fetch(addr, "metrics").unwrap(), "{\"completed\":7}");
    }

    #[test]
    fn connection_cap_sheds_with_an_error_frame() {
        let mut server = TelemetryServer::start("127.0.0.1:0", test_source()).unwrap();
        let addr = server.addr();
        // Fill every slot with idle connections...
        let mut held = Vec::new();
        for _ in 0..MAX_TELEMETRY_CONNECTIONS {
            held.push(TcpStream::connect(addr).unwrap());
        }
        // ...then poke the accept loop until it has registered them all
        // and starts shedding (accept ordering is not synchronized with
        // the worker-count increment, so retry briefly).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let shed = loop {
            match fetch(addr, "metrics") {
                Ok(resp) if resp == "{\"error\":\"too many connections\"}" => break resp,
                Ok(_) | Err(_) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "cap never engaged with {MAX_TELEMETRY_CONNECTIONS} idle connections held"
                    );
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        assert_eq!(shed, "{\"error\":\"too many connections\"}");
        // Freeing a slot restores service.
        drop(held);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(resp) = fetch(addr, "metrics") {
                if resp == "{\"completed\":7}" {
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "service never recovered after slots freed"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_even_with_no_traffic() {
        let mut server = TelemetryServer::start("127.0.0.1:0", test_source()).unwrap();
        server.shutdown();
        assert!(fetch(server.addr(), "metrics").is_err());
    }
}
