//! Sharded LRU result cache keyed on `(k, τ, ψ, variant, epoch)`.
//!
//! Production TOPS traffic is heavily repetitive — the same `(k, τ)`
//! dashboards refresh, the same city tiles re-query — so answered queries
//! are worth remembering. The key embeds the epoch of the snapshot that
//! produced the answer: an epoch advance makes older keys unreachable, and
//! [`ShardedCache::invalidate_before`] reclaims their space eagerly.
//! Sharding keeps lock contention negligible next to query compute time.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use netclus::{PreferenceFunction, TopsQuery};

use crate::executor::{QueryVariant, ServiceAnswer};

/// The cache key: every field that determines a TOPS answer.
///
/// `τ` and the preference parameters are keyed by their IEEE-754 bit
/// patterns, so keys are `Eq + Hash` without float comparisons; two queries
/// hit the same entry exactly when their parameters are bitwise identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Number of sites requested.
    pub k: usize,
    /// Coverage threshold `τ`, as bits.
    pub tau_bits: u64,
    /// Preference function discriminant.
    pub pref_tag: u8,
    /// Preference function parameter (λ, α or the normalizer), as bits;
    /// zero for parameterless variants.
    pub pref_param_bits: u64,
    /// Algorithm variant (Inc-Greedy or FM, with the FM parameters).
    pub variant: VariantKey,
    /// Epoch of the snapshot the answer must come from.
    pub epoch: u64,
}

/// The hashable form of [`QueryVariant`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VariantKey {
    /// Inc-Greedy over cluster representatives.
    Greedy,
    /// FM-sketch greedy with `(copies, seed)`.
    Fm(usize, u64),
}

/// The hashable `(tag, parameter bits)` form of a [`PreferenceFunction`] —
/// shared by the result-cache key and the round-1 candidate-memo key so
/// every cache in the stack agrees on ψ identity.
pub fn preference_key(preference: &PreferenceFunction) -> (u8, u64) {
    match *preference {
        PreferenceFunction::Binary => (0, 0),
        PreferenceFunction::LinearDecay => (1, 0),
        PreferenceFunction::ExponentialDecay { lambda } => (2, lambda.to_bits()),
        PreferenceFunction::ConvexProbability { alpha } => (3, alpha.to_bits()),
        PreferenceFunction::MinInconvenience { normalizer_m } => (4, normalizer_m.to_bits()),
    }
}

impl QueryKey {
    /// Builds the key for `query` answered by `variant` against `epoch`.
    pub fn new(query: &TopsQuery, variant: QueryVariant, epoch: u64) -> Self {
        let (pref_tag, pref_param_bits) = preference_key(&query.preference);
        QueryKey {
            k: query.k,
            tau_bits: query.tau.to_bits(),
            pref_tag,
            pref_param_bits,
            variant: match variant {
                QueryVariant::Greedy => VariantKey::Greedy,
                QueryVariant::Fm { copies, seed } => VariantKey::Fm(copies, seed),
            },
            epoch,
        }
    }

    /// The same key re-targeted at another epoch.
    pub fn at_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    fn shard_of(&self, shards: usize) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % shards
    }
}

/// A point-in-time view of the cache counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by LRU pressure.
    pub evictions: u64,
    /// Entries purged by epoch invalidation.
    pub invalidated: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Shard {
    map: HashMap<QueryKey, Entry>,
    tick: u64,
}

struct Entry {
    value: Arc<ServiceAnswer>,
    last_used: u64,
}

/// The sharded LRU cache.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidated: AtomicU64,
}

impl ShardedCache {
    /// Creates a cache holding at most `capacity` answers across `shards`
    /// shards (both clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity_per_shard = capacity.max(1).div_ceil(shards);
        ShardedCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, bumping its recency on a hit.
    pub fn get(&self, key: &QueryKey) -> Option<Arc<ServiceAnswer>> {
        let mut shard = self.lock_shard(key);
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`ShardedCache::get`] but without touching the hit/miss
    /// counters — for internal re-probes of a request whose submit-time
    /// lookup was already counted. Still bumps recency.
    pub fn peek(&self, key: &QueryKey) -> Option<Arc<ServiceAnswer>> {
        let mut shard = self.lock_shard(key);
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.get_mut(key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.value)
        })
    }

    /// Inserts an answer, evicting the least-recently-used entry of the
    /// shard if it is full.
    pub fn insert(&self, key: QueryKey, value: Arc<ServiceAnswer>) {
        let mut shard = self.lock_shard(&key);
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.capacity_per_shard && !shard.map.contains_key(&key) {
            // O(shard capacity) victim scan — fine at the default ~128
            // entries/shard; revisit (tick-ordered index) before raising
            // cache_capacity by orders of magnitude.
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Purges every entry whose epoch is older than `epoch`. Called on
    /// epoch advance; returns the number of entries removed.
    pub fn invalidate_before(&self, epoch: u64) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            let before = shard.map.len();
            shard.map.retain(|k, _| k.epoch >= epoch);
            removed += before - shard.map.len();
        }
        self.invalidated
            .fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").map.len())
                .sum(),
        }
    }

    fn lock_shard(&self, key: &QueryKey) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[key.shard_of(self.shards.len())]
            .lock()
            .expect("cache shard poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(epoch: u64) -> Arc<ServiceAnswer> {
        Arc::new(ServiceAnswer {
            epoch,
            corpus_len: 0,
            site_count: 0,
            sites: Vec::new(),
            utility: 0.0,
            covered: 0,
            instance: 0,
            representatives: 0,
            compute_time: std::time::Duration::ZERO,
        })
    }

    fn key(k: usize, tau: f64, epoch: u64) -> QueryKey {
        QueryKey::new(&TopsQuery::binary(k, tau), QueryVariant::Greedy, epoch)
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ShardedCache::new(16, 4);
        assert!(cache.get(&key(1, 800.0, 0)).is_none());
        cache.insert(key(1, 800.0, 0), answer(0));
        assert!(cache.get(&key(1, 800.0, 0)).is_some());
        // Same parameters, different epoch → different entry.
        assert!(cache.get(&key(1, 800.0, 1)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
    }

    #[test]
    fn distinct_parameters_get_distinct_keys() {
        let base = key(3, 800.0, 0);
        assert_ne!(base, key(4, 800.0, 0));
        assert_ne!(base, key(3, 800.5, 0));
        assert_ne!(base, key(3, 800.0, 1));
        assert_ne!(
            base,
            QueryKey::new(
                &TopsQuery::binary(3, 800.0),
                QueryVariant::Fm {
                    copies: 30,
                    seed: 1
                },
                0
            )
        );
        let graded = TopsQuery {
            k: 3,
            tau: 800.0,
            preference: PreferenceFunction::LinearDecay,
        };
        assert_ne!(base, QueryKey::new(&graded, QueryVariant::Greedy, 0));
    }

    #[test]
    fn peek_finds_entries_without_counting() {
        let cache = ShardedCache::new(16, 4);
        cache.insert(key(1, 800.0, 0), answer(0));
        assert!(cache.peek(&key(1, 800.0, 0)).is_some());
        assert!(cache.peek(&key(9, 800.0, 0)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        // One shard, capacity 2: the least-recently-touched key must go.
        let cache = ShardedCache::new(2, 1);
        cache.insert(key(1, 100.0, 0), answer(0));
        cache.insert(key(2, 100.0, 0), answer(0));
        cache.get(&key(1, 100.0, 0)); // refresh key 1
        cache.insert(key(3, 100.0, 0), answer(0)); // evicts key 2
        assert!(cache.get(&key(1, 100.0, 0)).is_some());
        assert!(cache.get(&key(2, 100.0, 0)).is_none());
        assert!(cache.get(&key(3, 100.0, 0)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn epoch_invalidation_purges_stale_entries() {
        let cache = ShardedCache::new(64, 8);
        for e in 0..4u64 {
            cache.insert(key(1, 500.0, e), answer(e));
            cache.insert(key(2, 500.0, e), answer(e));
        }
        let removed = cache.invalidate_before(2);
        assert_eq!(removed, 4);
        assert!(cache.get(&key(1, 500.0, 1)).is_none());
        assert!(cache.get(&key(1, 500.0, 2)).is_some());
        assert_eq!(cache.stats().invalidated, 4);
    }
}
