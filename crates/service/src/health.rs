//! SLO health evaluation over flight-recorder history.
//!
//! A [`HealthEvaluator`] holds declarative [`SloRule`]s and renders a
//! single `healthy`/`degraded`/`unhealthy` verdict with per-rule detail,
//! reading everything from a [`FlightRecorder`] — the rules see the same
//! retained history the `history`/`rates` telemetry commands serve, so a
//! verdict is always explainable from the recorder's own data.
//!
//! Two rule shapes cover the SLOs this service cares about:
//!
//! * **Ceiling** — the newest value of a series must stay at or below a
//!   limit (hot-path p99, ingest→visible freshness lag). Fires on the
//!   instantaneous value, so it recovers as soon as the series does.
//! * **Burn rate** — SRE-style error-budget burn over *two* windows. The
//!   error fraction (increase of an error counter over the increase of a
//!   total counter) is divided by the budget; the rule fires only when
//!   **both** the fast and the slow window burn above the threshold.
//!   The slow window filters transient blips; the fast window ends the
//!   alert quickly once the spike stops (it recovers first, un-firing
//!   the conjunction) — the standard multi-window construction.
//!
//! Missing data never fires a rule: before a series exists (cold start,
//! recorder not yet sampling) the rule reports `no data` and stays
//! silent, so health cannot flap during startup.

use crate::flight::FlightRecorder;

/// Overall service health, the worst severity among firing rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// No rule is firing.
    Healthy,
    /// At least one [`Severity::Degrading`] rule fires, nothing worse.
    Degraded,
    /// At least one [`Severity::Critical`] rule fires.
    Unhealthy,
}

impl Verdict {
    /// Lowercase wire name (`healthy`/`degraded`/`unhealthy`).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Healthy => "healthy",
            Verdict::Degraded => "degraded",
            Verdict::Unhealthy => "unhealthy",
        }
    }
}

/// How bad a firing rule is for the overall verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Firing pulls the verdict to [`Verdict::Degraded`].
    Degrading,
    /// Firing pulls the verdict to [`Verdict::Unhealthy`].
    Critical,
}

impl Severity {
    fn verdict(self) -> Verdict {
        match self {
            Severity::Degrading => Verdict::Degraded,
            Severity::Critical => Verdict::Unhealthy,
        }
    }
}

#[derive(Clone, Debug)]
enum RuleKind {
    Ceiling {
        series: String,
        max: f64,
    },
    BurnRate {
        errors_series: String,
        total_series: String,
        /// Allowed error fraction (e.g. `0.01` = 1% error budget).
        budget: f64,
        fast_secs: f64,
        slow_secs: f64,
        /// Burn multiple both windows must exceed to fire.
        threshold: f64,
    },
}

/// One declarative SLO rule.
#[derive(Clone, Debug)]
pub struct SloRule {
    name: String,
    severity: Severity,
    kind: RuleKind,
}

impl SloRule {
    /// The newest value of `series` must stay `<= max`.
    pub fn ceiling(
        name: impl Into<String>,
        series: impl Into<String>,
        max: f64,
        severity: Severity,
    ) -> SloRule {
        SloRule {
            name: name.into(),
            severity,
            kind: RuleKind::Ceiling {
                series: series.into(),
                max,
            },
        }
    }

    /// Multi-window burn rate: fires when the error-budget burn
    /// (`Δerrors/Δtotal ÷ budget`) exceeds `threshold` over **both** the
    /// fast and the slow trailing window.
    // A burn-rate rule genuinely has this many knobs; a builder would
    // just smear one declaration across eight calls.
    #[allow(clippy::too_many_arguments)]
    pub fn burn_rate(
        name: impl Into<String>,
        errors_series: impl Into<String>,
        total_series: impl Into<String>,
        budget: f64,
        fast_secs: f64,
        slow_secs: f64,
        threshold: f64,
        severity: Severity,
    ) -> SloRule {
        SloRule {
            name: name.into(),
            severity,
            kind: RuleKind::BurnRate {
                errors_series: errors_series.into(),
                total_series: total_series.into(),
                budget: budget.max(f64::EPSILON),
                fast_secs,
                slow_secs,
                threshold,
            },
        }
    }

    /// The rule's name (appears in `firing` lists and JSON keys).
    pub fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&self, recorder: &FlightRecorder) -> RuleOutcome {
        match &self.kind {
            RuleKind::Ceiling { series, max } => {
                let (firing, value, detail) = match recorder.last(series) {
                    Some(v) => (v > *max, Some(v), format!("{series}={v:.1} limit={max:.1}")),
                    None => (false, None, format!("{series}: no data")),
                };
                RuleOutcome {
                    name: self.name.clone(),
                    severity: self.severity,
                    firing,
                    value,
                    limit: *max,
                    detail,
                }
            }
            RuleKind::BurnRate {
                errors_series,
                total_series,
                budget,
                fast_secs,
                slow_secs,
                threshold,
            } => {
                let burn = |window: f64| -> Option<f64> {
                    let (errs, _) = recorder.window_increase(errors_series, window)?;
                    let (total, _) = recorder.window_increase(total_series, window)?;
                    if total <= 0.0 {
                        // No traffic in the window burns no budget.
                        return Some(0.0);
                    }
                    Some((errs / total) / budget)
                };
                match (burn(*fast_secs), burn(*slow_secs)) {
                    (Some(fast), Some(slow)) => RuleOutcome {
                        name: self.name.clone(),
                        severity: self.severity,
                        firing: fast > *threshold && slow > *threshold,
                        value: Some(fast.max(slow)),
                        limit: *threshold,
                        detail: format!(
                            "burn fast({fast_secs:.0}s)={fast:.2}x slow({slow_secs:.0}s)={slow:.2}x threshold={threshold:.2}x"
                        ),
                    },
                    _ => RuleOutcome {
                        name: self.name.clone(),
                        severity: self.severity,
                        firing: false,
                        value: None,
                        limit: *threshold,
                        detail: format!("{errors_series}/{total_series}: no data"),
                    },
                }
            }
        }
    }
}

/// The evaluated state of one rule.
#[derive(Clone, Debug)]
pub struct RuleOutcome {
    /// Rule name.
    pub name: String,
    /// Severity if firing.
    pub severity: Severity,
    /// Whether the rule is firing right now.
    pub firing: bool,
    /// The observed value compared against `limit` (ceiling value or
    /// worst-window burn multiple); `None` without data.
    pub value: Option<f64>,
    /// The configured limit (ceiling max or burn threshold).
    pub limit: f64,
    /// Human-readable evaluation detail.
    pub detail: String,
}

/// A full health evaluation: verdict plus every rule's outcome.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Overall verdict (worst firing severity).
    pub verdict: Verdict,
    /// One outcome per configured rule, in rule order.
    pub outcomes: Vec<RuleOutcome>,
}

impl HealthReport {
    /// Names of the rules currently firing.
    pub fn firing(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| o.firing)
            .map(|o| o.name.as_str())
            .collect()
    }

    /// Renders one flat JSON line:
    /// `{"verdict":"degraded","firing":["freshness"],"rule_freshness_firing":1,
    ///   "rule_freshness_value":…,"rule_freshness_limit":…,"rule_freshness_detail":"…",…}`.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(64 + self.outcomes.len() * 96);
        s.push_str("{\"verdict\":\"");
        s.push_str(self.verdict.as_str());
        s.push_str("\",\"firing\":[");
        for (i, name) in self.firing().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(name);
            s.push('"');
        }
        s.push(']');
        for o in &self.outcomes {
            s.push_str(&format!(
                ",\"rule_{}_firing\":{}",
                o.name,
                u8::from(o.firing)
            ));
            if let Some(v) = o.value {
                s.push_str(&format!(",\"rule_{}_value\":{v:.3}", o.name));
            }
            s.push_str(&format!(",\"rule_{}_limit\":{:.3}", o.name, o.limit));
            s.push_str(&format!(
                ",\"rule_{}_detail\":\"{}\"",
                o.name,
                o.detail.replace('"', "'")
            ));
        }
        s.push('}');
        s
    }
}

/// Declarative SLO rule set evaluated against a [`FlightRecorder`].
#[derive(Clone, Debug, Default)]
pub struct HealthEvaluator {
    rules: Vec<SloRule>,
}

impl HealthEvaluator {
    /// An evaluator with no rules (always healthy).
    pub fn new() -> Self {
        HealthEvaluator::default()
    }

    /// Adds a rule (builder style).
    #[must_use]
    pub fn with_rule(mut self, rule: SloRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// The configured rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluates every rule against the recorder's current history.
    pub fn evaluate(&self, recorder: &FlightRecorder) -> HealthReport {
        let outcomes: Vec<RuleOutcome> = self.rules.iter().map(|r| r.evaluate(recorder)).collect();
        let verdict = outcomes
            .iter()
            .filter(|o| o.firing)
            .map(|o| o.severity.verdict())
            .max()
            .unwrap_or(Verdict::Healthy);
        HealthReport { verdict, outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightConfig;
    use std::time::Duration;

    fn recorder() -> FlightRecorder {
        FlightRecorder::new(FlightConfig {
            tick: Duration::from_millis(1),
            capacity: 256,
            downsample_every: 1_000,
            coarse_capacity: 4,
        })
    }

    fn record(rec: &FlightRecorder, at: f64, pairs: &[(&str, f64)]) {
        let sample: Vec<(String, f64)> = pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        rec.record_at(at, &sample);
    }

    #[test]
    fn ceiling_fires_on_last_value_and_recovers() {
        let rec = recorder();
        let eval = HealthEvaluator::new().with_rule(SloRule::ceiling(
            "freshness",
            "visibility_lag_us",
            1_000.0,
            Severity::Degrading,
        ));
        // No data yet: silent, healthy.
        let report = eval.evaluate(&rec);
        assert_eq!(report.verdict, Verdict::Healthy);
        assert!(report.outcomes[0].detail.contains("no data"));

        record(&rec, 0.0, &[("visibility_lag_us", 200.0)]);
        assert_eq!(eval.evaluate(&rec).verdict, Verdict::Healthy);

        record(&rec, 1.0, &[("visibility_lag_us", 5_000.0)]);
        let report = eval.evaluate(&rec);
        assert_eq!(report.verdict, Verdict::Degraded);
        assert_eq!(report.firing(), vec!["freshness"]);
        let json = report.to_json_line();
        assert!(json.contains("\"verdict\":\"degraded\""));
        assert!(json.contains("\"firing\":[\"freshness\"]"));
        assert!(json.contains("\"rule_freshness_firing\":1"));

        record(&rec, 2.0, &[("visibility_lag_us", 0.0)]);
        assert_eq!(eval.evaluate(&rec).verdict, Verdict::Healthy);
    }

    #[test]
    fn critical_rule_outranks_degrading_rule() {
        let rec = recorder();
        record(&rec, 0.0, &[("a", 10.0), ("b", 10.0)]);
        let eval = HealthEvaluator::new()
            .with_rule(SloRule::ceiling("soft", "a", 1.0, Severity::Degrading))
            .with_rule(SloRule::ceiling("hard", "b", 1.0, Severity::Critical));
        let report = eval.evaluate(&rec);
        assert_eq!(report.verdict, Verdict::Unhealthy);
        assert_eq!(report.firing(), vec!["soft", "hard"]);
    }

    #[test]
    fn burn_rate_needs_both_windows_and_recovers_fast_window_first() {
        let rec = recorder();
        // 1 Hz ticks; budget 10% errors, 2x threshold, fast=3s slow=10s.
        let eval = HealthEvaluator::new().with_rule(SloRule::burn_rate(
            "errors",
            "shed",
            "requests",
            0.10,
            3.0,
            10.0,
            2.0,
            Severity::Critical,
        ));
        // Phase 1 (t=0..5): clean traffic, 10 req/s, no errors.
        let mut shed = 0.0;
        let mut requests = 0.0;
        let mut t = 0.0;
        let step = |rec: &FlightRecorder,
                    t: &mut f64,
                    shed: &mut f64,
                    req: &mut f64,
                    err_per_tick: f64| {
            *req += 10.0;
            *shed += err_per_tick;
            record(rec, *t, &[("shed", *shed), ("requests", *req)]);
            *t += 1.0;
        };
        for _ in 0..5 {
            step(&rec, &mut t, &mut shed, &mut requests, 0.0);
        }
        assert_eq!(eval.evaluate(&rec).verdict, Verdict::Healthy);

        // Phase 2 (t=5..12): a spike sheds 50% of traffic — burn 5x over
        // the budget. The fast window crosses immediately; the slow
        // window needs enough spiky ticks before the conjunction fires.
        let mut fired_at = None;
        for i in 0..7 {
            step(&rec, &mut t, &mut shed, &mut requests, 5.0);
            if eval.evaluate(&rec).verdict == Verdict::Unhealthy && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        let report = eval.evaluate(&rec);
        assert_eq!(
            report.verdict,
            Verdict::Unhealthy,
            "sustained spike must fire"
        );
        assert_eq!(report.firing(), vec!["errors"]);
        assert!(
            fired_at.expect("spike never fired") > 0,
            "slow window must lag the spike onset (blip filtering)"
        );

        // Phase 3: the spike stops. The fast window recovers first and
        // un-fires the conjunction even while the slow window still
        // remembers the spike.
        let mut recovered_at = None;
        for i in 0..8 {
            step(&rec, &mut t, &mut shed, &mut requests, 0.0);
            let report = eval.evaluate(&rec);
            if report.verdict == Verdict::Healthy && recovered_at.is_none() {
                recovered_at = Some((i, report));
            }
        }
        let (i, report) = recovered_at.expect("never recovered after spike");
        assert!(
            i < 5,
            "fast window should recover well before the slow one drains"
        );
        // The slow window still shows burn in the detail even though the
        // rule is no longer firing.
        assert!(report.outcomes[0].detail.contains("slow"));
    }

    #[test]
    fn burn_rate_with_no_traffic_is_silent() {
        let rec = recorder();
        record(&rec, 0.0, &[("shed", 0.0), ("requests", 0.0)]);
        record(&rec, 1.0, &[("shed", 0.0), ("requests", 0.0)]);
        let eval = HealthEvaluator::new().with_rule(SloRule::burn_rate(
            "errors",
            "shed",
            "requests",
            0.01,
            2.0,
            5.0,
            1.0,
            Severity::Critical,
        ));
        assert_eq!(eval.evaluate(&rec).verdict, Verdict::Healthy);
    }
}
