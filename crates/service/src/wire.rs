//! Centralized wire limits for every framed endpoint.
//!
//! Each framed protocol in the workspace — the ingest GPS codec, the WAL,
//! the telemetry endpoint, and the shard-server protocol — reads frames
//! through [`crate::framing::read_frame`] with a `max_len` cap. Those caps
//! used to be per-endpoint magic numbers; this module is the single place
//! they live, so the relationships between them (a shard response must
//! never exceed what the router will read, a command frame is always tiny)
//! are stated once and tested once.
//!
//! Endpoints re-export the constant they bound themselves with, so
//! call-site code keeps reading naturally (`MAX_TELEMETRY_FRAME`) while
//! the value has exactly one definition.

/// Absolute ceiling on any frame in the system. Nothing — not even a WAL
/// batch — may exceed this; every other limit below is `<=` it.
pub const MAX_FRAME: usize = 16 << 20;

/// Largest WAL batch payload (the biggest frames in the system: a full
/// routed update batch plus headers).
pub const MAX_BATCH_FRAME: usize = MAX_FRAME;

/// Largest telemetry **response** frame (metrics history dumps, slow-query
/// span logs).
pub const MAX_TELEMETRY_FRAME: usize = 4 << 20;

/// Largest command/control frame (telemetry commands, shard-protocol
/// handshakes and heartbeats). Tiny by design: a peer that sends a large
/// "command" is broken or hostile, and the endpoint drops it before
/// buffering.
pub const MAX_COMMAND_FRAME: usize = 1_024;

/// Largest ingest GPS record payload.
pub const MAX_RECORD_FRAME: usize = 1 << 20;

/// Largest shard-protocol **request** frame (`ApplyBatch` with a full
/// routed update batch is the biggest request).
pub const MAX_SHARD_REQUEST: usize = 8 << 20;

/// Largest shard-protocol **response** frame (a `Round1Response` carrying
/// up to [`MAX_WIRE_CANDIDATES`] candidate rows with coverage).
pub const MAX_SHARD_RESPONSE: usize = 8 << 20;

/// Largest data slice one `ResyncChunk` may carry. A corpus-snapshot
/// transfer (replica catch-up) is chunked at this size so every chunk —
/// plus its fixed header — stays comfortably under
/// [`MAX_SHARD_RESPONSE`]; a decoder seeing a larger chunk length
/// rejects the frame instead of allocating.
pub const MAX_RESYNC_CHUNK: usize = 1 << 20;

/// Largest complete corpus-snapshot blob a resync client will assemble.
/// A server advertising a larger `total_len` is broken or hostile, and
/// the client aborts the transfer instead of buffering without bound.
pub const MAX_RESYNC_BLOB: usize = 256 << 20;

/// Most candidate rows a single `Round1Response` may carry. Round 1
/// returns at most `k` candidates per shard; `k` beyond this bound is a
/// malformed request, and a decoder seeing a larger count rejects the
/// frame instead of allocating.
pub const MAX_WIRE_CANDIDATES: usize = 4_096;

// The limits form the lattice the endpoints assume: commands are the
// smallest frames, every endpoint cap fits under the absolute ceiling,
// and shard responses fit in what the router-side client reads. Checked
// at compile time — a reordering is a build error, not a test failure.
const _: () = {
    assert!(MAX_COMMAND_FRAME <= MAX_RECORD_FRAME);
    assert!(MAX_RECORD_FRAME <= MAX_TELEMETRY_FRAME);
    assert!(MAX_TELEMETRY_FRAME <= MAX_FRAME);
    assert!(MAX_SHARD_REQUEST <= MAX_FRAME);
    assert!(MAX_SHARD_RESPONSE <= MAX_FRAME);
    assert!(MAX_BATCH_FRAME <= MAX_FRAME);
    // A max-candidate response must plausibly fit the response cap: even
    // at ~1 KiB of coverage rows per candidate there is room.
    assert!(MAX_WIRE_CANDIDATES * 1024 <= MAX_SHARD_RESPONSE);
    // A full resync chunk plus its header fits the response cap with an
    // order of magnitude to spare.
    assert!(MAX_RESYNC_CHUNK * 2 <= MAX_SHARD_RESPONSE);
    // A resync transfer is chunked, so the blob ceiling sits above the
    // chunk size (many chunks per blob) without any frame obligation.
    assert!(MAX_RESYNC_CHUNK <= MAX_RESYNC_BLOB);
};
