//! The cross-process serving contract (PR 9), over real loopback TCP.
//!
//! Three layers:
//!
//! 1. **Equivalence** — a proptest that a router scattered over remote
//!    [`ShardServer`]s (framed TCP, the server's own provider/memo
//!    caches) answers **bit-identically** to the in-process router on
//!    the same corpus, for shard counts 1, 2 and 4, across interleaved
//!    update batches applied through the epoch-lockstep `Apply` RPC.
//! 2. **Socket chaos** — scripted server-side fault windows (stall a
//!    reply past the io deadline, corrupt a frame's CRC, slam the
//!    connection shut, inject a typed error) plus a hard server
//!    shutdown mid-stream. Every query terminates promptly with either
//!    a full bit-exact answer or a degraded one carrying a sound
//!    conservative utility bound; failures surface only through the
//!    typed [`ShardFailure`](netclus_service::ShardFailure) taxonomy.
//! 3. **Frame corruption** — any byte truncation or flip of a valid
//!    shard-protocol frame decodes to a typed error (io or
//!    [`WireError`](netclus_service::shard_proto::WireError)), never a
//!    panic or a hang; flips that touch the CRC or payload bytes are
//!    *guaranteed* to be rejected by the CRC check.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use netclus::prelude::*;
use netclus::shard::Candidate;
use netclus_roadnet::{NodeId, Point, RegionPartition, RoadNetwork, RoadNetworkBuilder};
use netclus_service::framing::{read_frame, write_frame};
use netclus_service::shard_proto::{
    round1_request, Request, RespError, Response, SHARD_PROTOCOL_VERSION,
};
use netclus_service::trace::Round1Source;
use netclus_service::wire::MAX_FRAME;
use netclus_service::{
    BreakerConfig, FaultAction, FaultPlan, FaultRule, RemoteShardConfig, RoutedOp, ShardRouter,
    ShardRouterConfig, ShardServer, ShardServerConfig, SnapshotStore, UpdateOp,
};
use netclus_trajectory::{TrajId, Trajectory, TrajectorySet};
use proptest::prelude::*;

/// Splits a sharded index into per-shard [`ShardServer`]s listening on
/// loopback, returning the servers, their addresses (shard order) and
/// the partition the remote router routes by.
fn spawn_cluster(
    net: &Arc<RoadNetwork>,
    sharded: ShardedNetClusIndex,
    cfg_for: impl Fn(u32) -> ShardServerConfig,
) -> (Vec<ShardServer>, Vec<SocketAddr>, RegionPartition) {
    let (partition, views, _replication) = sharded.into_parts();
    let mut servers = Vec::with_capacity(views.len());
    let mut addrs = Vec::with_capacity(views.len());
    for view in views {
        let store = SnapshotStore::with_shared_net(Arc::clone(net), view.trajs, view.index);
        let server = ShardServer::start("127.0.0.1:0", view.id, store, cfg_for(view.id))
            .expect("start shard server");
        addrs.push(server.addr());
        servers.push(server);
    }
    (servers, addrs, partition)
}

// ---------------------------------------------------------------------------
// Layer 1: remote scatter-gather is bit-identical to in-process.
// ---------------------------------------------------------------------------

/// A region-confined walk: `(region, start, len)`.
type Walk = (usize, usize, usize);

/// A random multi-region instance with an update schedule (the
/// router-equivalence shape, kept small — every case spins real TCP
/// clusters for three shard counts).
#[derive(Clone, Debug)]
struct Instance {
    regions: usize,
    n: usize,
    walks: Vec<Walk>,
    /// Update phases: added walks plus whether to remove the oldest
    /// live trajectory first.
    phases: Vec<(Vec<Walk>, bool)>,
    taus: Vec<f64>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2usize..=3, 6usize..10)
        .prop_flat_map(|(regions, n)| {
            let walk = (0..regions, 0..n.saturating_sub(2), 2usize..5);
            let walks = prop::collection::vec(walk.clone(), 2..6);
            let phase = (prop::collection::vec(walk, 1..3), any::<bool>());
            let phases = prop::collection::vec(phase, 1..3);
            let taus = prop::collection::vec((6u32..40).prop_map(|s| s as f64 * 50.0), 2);
            (Just(regions), Just(n), walks, phases, taus)
        })
        .prop_map(|(regions, n, walks, phases, taus)| Instance {
            regions,
            n,
            walks,
            phases,
            taus,
        })
}

/// `regions` identical two-way corridors 1000 km apart, so every corpus
/// built from region-confined walks respects a region-aligned partition.
fn build_net(inst: &Instance) -> (RoadNetwork, Vec<u32>) {
    let mut b = RoadNetworkBuilder::new();
    let mut region_of = Vec::new();
    for r in 0..inst.regions {
        let base = (r * inst.n) as u32;
        for i in 0..inst.n {
            b.add_node(Point::new(r as f64 * 1.0e6 + i as f64 * 90.0, 0.0));
            region_of.push(r as u32);
        }
        for i in 0..inst.n as u32 - 1 {
            b.add_two_way(NodeId(base + i), NodeId(base + i + 1), 90.0)
                .unwrap();
        }
    }
    (b.build().unwrap(), region_of)
}

fn walk_trajectory(inst: &Instance, (region, start, len): Walk) -> Trajectory {
    let base = region * inst.n;
    let end = (start + len).min(inst.n - 1);
    Trajectory::new(
        ((base + start) as u32..=(base + end) as u32)
            .map(NodeId)
            .collect(),
    )
}

fn netclus_config() -> NetClusConfig {
    NetClusConfig {
        tau_min: 200.0,
        tau_max: 2_400.0,
        threads: 1,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For shard counts 1, 2 and 4 and across every epoch of a random
    /// update schedule, the remote-transport router (every shard a TCP
    /// server with its own caches) answers bit-identically to the
    /// in-process router on the same corpus, and the `Apply` RPC keeps
    /// remote epochs in lockstep with local ones.
    #[test]
    fn remote_router_is_bit_identical_to_in_process(inst in instance_strategy()) {
        let (net, region_of) = build_net(&inst);
        let sites: Vec<NodeId> = net.nodes().collect();
        let cfg = netclus_config();
        let queries: Vec<TopsQuery> = inst
            .taus
            .iter()
            .flat_map(|&tau| [4usize, 2, 6].map(|k| TopsQuery::binary(k, tau)))
            .collect();

        let mut trajs = TrajectorySet::for_network(&net);
        for &w in &inst.walks {
            trajs.add(walk_trajectory(&inst, w));
        }
        let batches: Vec<Vec<UpdateOp>> = inst
            .phases
            .iter()
            .map(|(adds, remove_first)| {
                let mut ops = Vec::new();
                if *remove_first {
                    ops.push(UpdateOp::RemoveTrajectory(TrajId(0)));
                }
                for &w in adds {
                    ops.push(UpdateOp::AddTrajectory(walk_trajectory(&inst, w)));
                }
                ops
            })
            .collect();

        let shared_net = Arc::new(net.clone());
        for shards in [1usize, 2, 4] {
            let assignment: Vec<u32> = region_of.iter().map(|&r| r % shards as u32).collect();
            let partition = RegionPartition::from_assignment(assignment, shards);
            let build = || ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, cfg);

            let local = ShardRouter::start(
                Arc::clone(&shared_net),
                build(),
                ShardRouterConfig::default(),
            )
            .expect("start in-process router");
            let (mut servers, addrs, remote_partition) =
                spawn_cluster(&shared_net, build(), |_| ShardServerConfig::default());
            let remote = ShardRouter::connect(
                Arc::clone(&shared_net),
                remote_partition,
                &addrs,
                ShardRouterConfig::default(),
                RemoteShardConfig::default(),
            )
            .expect("connect remote router");
            prop_assert_eq!(remote.transport_kinds(), vec!["remote"; shards]);

            for epoch in 0..=batches.len() {
                if epoch > 0 {
                    let batch = &batches[epoch - 1];
                    let rl = local.apply_updates(batch.clone());
                    let rr = remote.apply_updates(batch.clone());
                    prop_assert_eq!(rl.epoch, epoch as u64, "local epoch");
                    prop_assert_eq!(rr.epoch, epoch as u64, "remote epoch lockstep");
                    prop_assert_eq!(
                        (rl.applied, rl.rejected),
                        (rr.applied, rr.rejected),
                        "apply outcomes must match"
                    );
                }
                for q in &queries {
                    let a = local.query_blocking(*q).expect("local answer");
                    let b = remote.query_blocking(*q).expect("remote answer");
                    prop_assert!(!b.degraded && !b.stale, "remote answer must be full");
                    prop_assert_eq!(b.epoch, epoch as u64, "remote answer epoch");
                    prop_assert_eq!(
                        &b.sites, &a.sites,
                        "remote vs in-process sites: shards={} epoch={} k={} tau={}",
                        shards, epoch, q.k, q.tau
                    );
                    prop_assert_eq!(
                        b.utility.to_bits(), a.utility.to_bits(),
                        "remote vs in-process utility: shards={} epoch={}", shards, epoch
                    );
                    prop_assert_eq!(b.covered, a.covered, "covered count");
                }
            }

            // The remote lanes really carried the traffic.
            let report = remote.metrics_report().shards.expect("shard section");
            prop_assert!(report.transport_requests > 0, "no RPCs recorded");
            prop_assert_eq!(report.transport_errors, 0, "healthy run must be error-free");
            for lane in &report.lanes {
                prop_assert_eq!(lane.transport, "remote");
            }
            remote.shutdown();
            local.shutdown();
            for server in &mut servers {
                server.shutdown();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 2: socket-level chaos against real shard servers.
// ---------------------------------------------------------------------------

/// Four far-separated corridors with region-confined walks of different
/// mass (so a missing shard changes the reachable utility).
fn chaos_fixture() -> (
    Arc<RoadNetwork>,
    TrajectorySet,
    Vec<NodeId>,
    RegionPartition,
) {
    let mut b = RoadNetworkBuilder::new();
    for region in 0..4 {
        let x0 = region as f64 * 1_000_000.0;
        let base = b.node_count() as u32;
        for i in 0..12 {
            b.add_node(Point::new(x0 + i as f64 * 100.0, 0.0));
        }
        for i in 0..11u32 {
            b.add_two_way(NodeId(base + i), NodeId(base + i + 1), 100.0)
                .unwrap();
        }
    }
    let net = Arc::new(b.build().unwrap());
    let mut trajs = TrajectorySet::for_network(&net);
    for region in 0..4u32 {
        let base = region * 12;
        for s in 0..(3 + region % 3) {
            trajs.add(Trajectory::new(
                (base + s..base + s + 6).map(NodeId).collect(),
            ));
        }
    }
    let sites: Vec<NodeId> = net.nodes().collect();
    let partition = RegionPartition::build(&net, 4);
    (net, trajs, sites, partition)
}

/// Scripted socket faults — a stalled reply, a corrupted frame, a
/// slammed connection, an injected error, and finally a hard server
/// shutdown — all map onto the typed failure taxonomy: the router keeps
/// answering (degraded, with a sound conservative bound) and recovers
/// to bit-exact answers once a window closes. No query ever hangs.
#[test]
fn socket_chaos_degrades_soundly_and_recovers() {
    let (net, trajs, sites, partition) = chaos_fixture();
    let netclus_cfg = NetClusConfig {
        tau_min: 200.0,
        tau_max: 3_000.0,
        threads: 1,
        ..Default::default()
    };
    let build = || ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, netclus_cfg);

    // Fault-free in-process reference for exactness and bound checks.
    let reference = ShardRouter::start(Arc::clone(&net), build(), ShardRouterConfig::uncached())
        .expect("start reference");
    let q = TopsQuery::binary(3, 800.0);
    let full = reference.query_blocking(q).expect("reference answer");

    // Per-server scripted windows on the server-side round-1 sequence
    // counter (hellos and applies do not consume it): query 0 loses
    // shards 1 (stall → io timeout), 2 (CRC-corrupted frame) and 3
    // (slammed connection); query 1 loses only shard 3 (typed injected
    // error); query 2 is clean.
    let stall = Duration::from_secs(2);
    let plan_for = |shard: u32| -> Option<FaultPlan> {
        match shard {
            1 => Some(FaultPlan::new(9).with_rule(FaultRule::outage(
                1,
                FaultAction::Stall(stall),
                0,
                1,
            ))),
            2 => Some(FaultPlan::new(9).with_rule(FaultRule::outage(
                2,
                FaultAction::CorruptFrame,
                0,
                1,
            ))),
            3 => Some(
                FaultPlan::new(9)
                    .with_rule(FaultRule::outage(3, FaultAction::DropConnection, 0, 1))
                    .with_rule(FaultRule::outage(3, FaultAction::Error, 1, 2)),
            ),
            _ => None,
        }
    };
    let (mut servers, addrs, remote_partition) =
        spawn_cluster(&net, build(), |shard| ShardServerConfig {
            fault_plan: plan_for(shard),
            ..Default::default()
        });
    // Uncached router so every query scatters one round-1 RPC to every
    // shard (deterministic fault-window sequencing); breaker effectively
    // disabled — breaker behavior has its own suite, and open-breaker
    // skips would desync the scripted windows.
    let remote = ShardRouter::connect(
        Arc::clone(&net),
        remote_partition,
        &addrs,
        ShardRouterConfig {
            breaker: BreakerConfig {
                failure_threshold: 1_000,
                cooldown: Duration::from_millis(10),
            },
            ..ShardRouterConfig::uncached()
        },
        RemoteShardConfig {
            io_timeout: Duration::from_millis(300),
            ..Default::default()
        },
    )
    .expect("connect remote router");

    let timed = |label: &str| {
        let begin = Instant::now();
        let answer = remote
            .query(q, &netclus_service::QueryOptions::default())
            .unwrap_or_else(|e| {
                panic!("{label}: query must not fail outright (survivors exist): {e:?}")
            });
        let elapsed = begin.elapsed();
        assert!(
            elapsed < Duration::from_secs(10),
            "{label}: query must never hang, took {elapsed:?}"
        );
        answer
    };
    let assert_sound_bound = |answer: &netclus_service::ShardedServiceAnswer, label: &str| {
        assert!(
            (0.0..=1.0).contains(&answer.utility_bound),
            "{label}: bound out of range: {}",
            answer.utility_bound
        );
        let true_ratio = answer.utility / full.utility;
        assert!(
            answer.utility_bound <= true_ratio + 1e-9,
            "{label}: bound {} exceeds true ratio {true_ratio}",
            answer.utility_bound
        );
        assert!(answer.utility_bound > 0.0, "{label}: survivors carry mass");
    };

    // Query 0 — three simultaneous socket faults, three distinct typed
    // classifications, one degraded answer from the surviving shard.
    let a = timed("three-fault scatter");
    assert!(a.degraded && !a.stale);
    assert_eq!(a.epoch, 0);
    assert_eq!(a.shards_missing, vec![1, 2, 3]);
    assert_sound_bound(&a, "three-fault scatter");

    // Let the stalled server thread unwind and every reconnect backoff
    // window pass before the next scatter.
    std::thread::sleep(stall + Duration::from_millis(200));

    // Query 1 — shards 1 and 2 reconnect clean; shard 3's second window
    // injects a typed error.
    let a = timed("injected-error scatter");
    assert!(a.degraded && !a.stale);
    assert_eq!(a.shards_missing, vec![3]);
    assert_sound_bound(&a, "injected-error scatter");

    // Query 2 — all windows exhausted: full, bit-exact recovery.
    let a = timed("recovered scatter");
    assert!(!a.degraded && !a.stale, "missing: {:?}", a.shards_missing);
    assert_eq!(a.utility_bound, 1.0);
    assert_eq!(a.sites, full.sites);
    assert_eq!(a.utility.to_bits(), full.utility.to_bits());

    // Hard outage — shard 3's process goes away entirely; answers stay
    // available, degraded with a sound bound.
    servers[3].shutdown();
    let a = timed("process-outage scatter");
    assert!(a.degraded && !a.stale);
    assert!(a.shards_missing.contains(&3), "dead shard must be missing");
    assert_sound_bound(&a, "process-outage scatter");

    // The taxonomy and transport counters saw all of it.
    let report = remote.metrics_report().shards.expect("shard section");
    assert!(
        report.transport_errors >= 4,
        "stall+corrupt+slam+error+outage"
    );
    assert!(
        report.transport_reconnects >= 4,
        "per-lane hello + recoveries"
    );
    assert!(report.transport_requests > report.transport_errors);
    for lane in &report.lanes {
        assert_eq!(lane.transport, "remote");
    }
    let fault = remote.fault_report();
    assert!(fault.degraded_answers >= 3);
    assert!(
        fault.shard_timeouts >= 1,
        "the stall must read as a timeout"
    );
    assert!(fault.shard_failures >= 1);

    remote.shutdown();
    reference.shutdown();
    for server in &mut servers {
        server.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Layer 3: frame truncation/corruption is always a typed rejection.
// ---------------------------------------------------------------------------

/// Valid framed messages covering every request and response shape
/// (fixed-width fields, length-prefixed vectors, strings, coverage
/// rows), as `(is_request, framed bytes)`.
fn sample_frames() -> Vec<(bool, Vec<u8>)> {
    let round = netclus::shard::ShardRoundOne {
        candidates: vec![Candidate {
            node: NodeId(3),
            cluster: 1,
            gain: 4.25,
            row: vec![(2, 150.0), (5, 600.5)],
        }],
        k: 3,
        instance: 0,
        representatives: 4,
        local_utility: 4.25,
        elapsed: Duration::from_micros(77),
        solve_us: 41,
        shard_hint: 2,
    };
    let requests = [
        Request::Hello {
            version: SHARD_PROTOCOL_VERSION,
            shard: 2,
        },
        round1_request(7, 1, &TopsQuery::binary(4, 1_200.0)),
        Request::Apply {
            ops: vec![
                RoutedOp::AddTrajectoryAt(
                    TrajId(9),
                    Trajectory::new(vec![NodeId(0), NodeId(1), NodeId(2)]),
                ),
                RoutedOp::RemoveTrajectory(TrajId(4)),
            ],
        },
        Request::Heartbeat,
    ];
    let responses = [
        Response::HelloAck {
            version: SHARD_PROTOCOL_VERSION,
            shard: 2,
            epoch: 5,
            traj_id_bound: 120,
            live_trajs: 80,
        },
        Response::Round1Ok {
            epoch: 5,
            bound: 120,
            source: Round1Source::Memo,
            round,
        },
        Response::ApplyAck {
            epoch: 6,
            live_trajs: 81,
            results: vec![true, false, true],
        },
        Response::ReportJson {
            json: "{\"epoch\":6}".to_string(),
        },
        Response::Error(RespError::Injected),
    ];
    let mut frames = Vec::new();
    for (is_request, payload) in requests
        .iter()
        .map(|r| (true, r.encode()))
        .chain(responses.iter().map(|r| (false, r.encode())))
    {
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).expect("frame");
        frames.push((is_request, framed));
    }
    frames
}

/// Every prefix of every valid frame reads as a typed io error or a
/// clean EOF — never a payload, never a panic, never a blocked read.
#[test]
fn every_frame_truncation_is_rejected() {
    for (_, frame) in sample_frames() {
        for cut in 0..frame.len() {
            let mut r = &frame[..cut];
            if let Ok(Some(_)) = read_frame(&mut r, MAX_FRAME) {
                panic!("truncated frame yielded a payload (cut {cut})");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any single-byte corruption of a valid frame is rejected without a
    /// panic: flips at or past the CRC field are *guaranteed* to fail
    /// the checksum, and a length-field flip that still yields a payload
    /// must fail typed message decoding (the decoder never panics).
    #[test]
    fn any_frame_corruption_decodes_to_a_typed_error(
        pick in any::<usize>(),
        pos_pick in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let frames = sample_frames();
        let (is_request, frame) = &frames[pick % frames.len()];
        let pos = pos_pick % frame.len();
        let mut mutated = frame.clone();
        mutated[pos] ^= mask;

        let mut r = &mutated[..];
        match read_frame(&mut r, MAX_FRAME) {
            Err(_) | Ok(None) => {}
            Ok(Some(payload)) => {
                // The CRC covers bytes 4.. — a flip there can never
                // survive the check. Only a length-field flip (pos < 4)
                // may still produce a payload, and then the message
                // decoder must reject it typed.
                prop_assert!(pos < 4, "CRC accepted a corrupted frame (pos {})", pos);
                let rejected = if *is_request {
                    Request::decode(&payload).is_err()
                } else {
                    Response::decode(&payload).is_err()
                };
                prop_assert!(rejected, "corrupted payload decoded to a message");
            }
        }
    }
}
