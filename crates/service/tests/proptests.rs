//! Property-based tests for the serving layer's cache keys and
//! invalidation semantics.

use std::sync::Arc;
use std::time::Duration;

use netclus::{PreferenceFunction, TopsQuery};
use netclus_service::{QueryKey, QueryVariant, ServiceAnswer, ShardedCache};
use proptest::prelude::*;

/// A strategy over full query parameter tuples:
/// `(k, τ, pref selector, pref param, fm selector, copies, seed, epoch)`.
fn params() -> impl Strategy<Value = (usize, f64, u8, f64, bool, usize, u64, u64)> {
    (
        1usize..20,
        100.0f64..5_000.0,
        0u8..5,
        0.5f64..4.0,
        proptest::arbitrary::any::<bool>(),
        1usize..64,
        proptest::arbitrary::any::<u64>(),
        0u64..6,
    )
}

fn build(p: &(usize, f64, u8, f64, bool, usize, u64, u64)) -> (TopsQuery, QueryVariant, u64) {
    let &(k, tau, pref_sel, pref_param, fm, copies, seed, epoch) = p;
    let preference = match pref_sel {
        0 => PreferenceFunction::Binary,
        1 => PreferenceFunction::LinearDecay,
        2 => PreferenceFunction::ExponentialDecay { lambda: pref_param },
        3 => PreferenceFunction::ConvexProbability { alpha: pref_param },
        _ => PreferenceFunction::MinInconvenience {
            normalizer_m: pref_param * 1_000.0,
        },
    };
    // FM only applies to the binary preference.
    let variant = if fm && preference.is_binary() {
        QueryVariant::Fm { copies, seed }
    } else {
        QueryVariant::Greedy
    };
    (TopsQuery { k, tau, preference }, variant, epoch)
}

fn dummy_answer(epoch: u64) -> Arc<ServiceAnswer> {
    Arc::new(ServiceAnswer {
        epoch,
        corpus_len: 1,
        site_count: 1,
        sites: Vec::new(),
        utility: 0.0,
        covered: 0,
        instance: 0,
        representatives: 0,
        compute_time: Duration::ZERO,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Key equality is exactly parameter equality: identical parameters
    /// produce identical keys, and any single-field perturbation changes
    /// the key.
    #[test]
    fn key_equality_matches_parameter_equality(p in params()) {
        let (q, v, e) = build(&p);
        let key = QueryKey::new(&q, v, e);
        // Reflexive: rebuilding from the same parameters gives the same key.
        prop_assert_eq!(key, QueryKey::new(&q, v, e));

        // Perturb k.
        let mut q2 = q;
        q2.k += 1;
        prop_assert!(QueryKey::new(&q2, v, e) != key);
        // Perturb τ by one ULP-scale step.
        let mut q3 = q;
        q3.tau += 0.25;
        prop_assert!(QueryKey::new(&q3, v, e) != key);
        // Perturb the epoch.
        prop_assert!(QueryKey::new(&q, v, e + 1) != key);
        prop_assert_eq!(key.at_epoch(e + 1), QueryKey::new(&q, v, e + 1));
        // Perturb the variant.
        let v2 = match v {
            QueryVariant::Greedy => QueryVariant::Fm { copies: 7, seed: 7 },
            QueryVariant::Fm { copies, seed } => QueryVariant::Fm { copies: copies + 1, seed },
        };
        prop_assert!(QueryKey::new(&q, v2, e) != key);
        // Perturb the preference family.
        let mut q4 = q;
        q4.preference = match q.preference {
            PreferenceFunction::Binary => PreferenceFunction::LinearDecay,
            _ => PreferenceFunction::Binary,
        };
        prop_assert!(QueryKey::new(&q4, QueryVariant::Greedy, e)
            != QueryKey::new(&q, QueryVariant::Greedy, e));
    }

    /// Round-tripping a key through the cache honors equality: the stored
    /// answer is returned for an equal key and only for it.
    #[test]
    fn cache_lookup_respects_key_equality(a in params(), b in params()) {
        let (qa, va, ea) = build(&a);
        let (qb, vb, eb) = build(&b);
        let ka = QueryKey::new(&qa, va, ea);
        let kb = QueryKey::new(&qb, vb, eb);
        let cache = ShardedCache::new(1_024, 4);
        cache.insert(ka, dummy_answer(ea));
        prop_assert!(cache.get(&ka).is_some());
        prop_assert_eq!(cache.get(&kb).is_some(), ka == kb);
    }

    /// Epoch invalidation is a clean partition: entries strictly below the
    /// cutoff vanish, all others survive.
    #[test]
    fn invalidation_partitions_by_epoch(
        entries in prop::collection::vec(params(), 1..40),
        cutoff in 0u64..7,
    ) {
        let cache = ShardedCache::new(4_096, 8);
        let keys: Vec<QueryKey> = entries
            .iter()
            .map(|p| {
                let (q, v, e) = build(p);
                let k = QueryKey::new(&q, v, e);
                cache.insert(k, dummy_answer(e));
                k
            })
            .collect();
        cache.invalidate_before(cutoff);
        for k in &keys {
            let alive = cache.get(k).is_some();
            if k.epoch >= cutoff {
                prop_assert!(alive, "epoch {} wrongly purged (cutoff {cutoff})", k.epoch);
            } else {
                prop_assert!(!alive, "epoch {} survived cutoff {cutoff}", k.epoch);
            }
        }
    }
}
