//! Observability contracts, end to end: every counter a router run
//! increments must surface in the metrics JSON (a full destructure makes
//! adding a `ShardReport` field without serializing it a compile error),
//! the query-path tracer must attribute traced wall time to named stages,
//! and the framed telemetry endpoint must serve all three documents over
//! a real socket.

use std::sync::Arc;

use netclus::prelude::*;
use netclus_roadnet::{NodeId, Point, RegionPartition, RoadNetworkBuilder};
use netclus_service::{
    telemetry, NetClusService, ServiceConfig, ServiceRequest, ShardReport, ShardRouter,
    ShardRouterConfig, Stage, TelemetryServer, TelemetrySource, TraceConfig, UpdateOp,
};
use netclus_trajectory::{Trajectory, TrajectorySet};

const REGIONS: usize = 2;
const N: usize = 10;

/// Two disconnected 10-node corridors 1000 km apart, so region-confined
/// walks respect the region-aligned partition.
fn build_world() -> (netclus_roadnet::RoadNetwork, TrajectorySet, Vec<NodeId>) {
    let mut b = RoadNetworkBuilder::new();
    for r in 0..REGIONS {
        let base = (r * N) as u32;
        for i in 0..N {
            b.add_node(Point::new(r as f64 * 1.0e6 + i as f64 * 90.0, 0.0));
        }
        for i in 0..N as u32 - 1 {
            b.add_two_way(NodeId(base + i), NodeId(base + i + 1), 90.0)
                .unwrap();
        }
    }
    let net = b.build().unwrap();
    let mut trajs = TrajectorySet::for_network(&net);
    for r in 0..REGIONS {
        let base = (r * N) as u32;
        for (start, len) in [(0u32, 5u32), (2, 6), (1, 4), (3, 5)] {
            let end = (start + len).min(N as u32 - 1);
            trajs.add(Trajectory::new(
                (base + start..=base + end).map(NodeId).collect(),
            ));
        }
    }
    let sites: Vec<NodeId> = net.nodes().collect();
    (net, trajs, sites)
}

fn netclus_config() -> NetClusConfig {
    NetClusConfig {
        tau_min: 200.0,
        tau_max: 2_400.0,
        threads: 1,
        ..Default::default()
    }
}

/// A started router plus a dashboard-shaped run that touches every lane:
/// cold first-touches, memo prefix hits, provider-cache hits (k above the
/// memoized run) and an epoch advance.
fn run_router(trace: TraceConfig) -> ShardRouter {
    let (net, trajs, sites) = build_world();
    let assignment: Vec<u32> = (0..REGIONS * N).map(|i| (i / N) as u32).collect();
    let partition = RegionPartition::from_assignment(assignment, REGIONS);
    let cfg = netclus_config();
    let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, cfg);
    let router = ShardRouter::start(
        Arc::new(net),
        sharded,
        ShardRouterConfig {
            trace,
            ..Default::default()
        },
    )
    .expect("start router");
    for round in 0..2 {
        if round > 0 {
            router.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(vec![
                NodeId(0),
                NodeId(1),
            ]))]);
        }
        for &tau in &[600.0, 900.0] {
            for k in [4usize, 2, 1, 6, 3] {
                router
                    .query_blocking(TopsQuery::binary(k, tau))
                    .expect("router answered");
            }
        }
    }
    router
}

/// Satellite contract: every `ShardReport` counter the run incremented
/// appears in the JSON line with its non-default value. The destructure
/// has no `..`, so growing the struct without serializing the new field
/// fails this test at compile time.
#[test]
fn every_incremented_shard_counter_serializes() {
    let router = run_router(TraceConfig::default());
    let report = router.metrics_report();
    let json = report.to_json_line();
    router.shutdown();

    let ShardReport {
        lanes,
        merge,
        fanout_queries,
        providers,
        rounds,
        hot,
        cold,
        trajectories,
        boundary_trajs,
        replicas,
        replica_lag_max,
        fault,
        transport_requests,
        transport_errors,
        transport_reconnects,
        transport_rpc,
    } = report.shards.expect("router report has a shard section");

    let has = |key: &str, v: String| {
        let needle = format!("\"{key}\":{v}");
        assert!(json.contains(&needle), "{needle} not in {json}");
    };

    assert!(fanout_queries > 0, "run fanned out queries");
    has("fanout_queries", fanout_queries.to_string());
    assert!(merge.count > 0, "merges happened");
    has("merge_mean_us", merge.mean_micros.to_string());
    has("merge_p99_us", merge.p99_micros.to_string());
    assert!(rounds.hits > 0, "memo prefix hits happened (k descended)");
    has("round_hits", rounds.hits.to_string());
    has("round_misses", rounds.misses.to_string());
    has("round_evictions", rounds.evictions.to_string());
    has("round_invalidated", rounds.invalidated.to_string());
    has("round_entries", rounds.entries.to_string());
    assert!(providers.hits > 0, "provider-cache hits happened (k rose)");
    assert!(providers.misses > 0, "cold first-touches missed");
    has("provider_hits", providers.hits.to_string());
    has("provider_misses", providers.misses.to_string());
    has("provider_coalesced", providers.coalesced.to_string());
    assert!(hot.count > 0, "hot fan-outs recorded");
    assert!(cold.count > 0, "cold fan-outs recorded");
    has("router_hot_queries", hot.count.to_string());
    has("router_hot_p50_us", hot.p50_micros.to_string());
    has("router_cold_queries", cold.count.to_string());
    has("router_cold_p50_us", cold.p50_micros.to_string());
    assert!(trajectories > 0 && replicas > 0);
    has("shard_trajectories", trajectories.to_string());
    has("boundary_trajs", boundary_trajs.to_string());
    has("shard_replicas", replicas.to_string());
    // Lockstep applies keep every replica current: the lag gauge is
    // present and zero on a healthy run.
    assert_eq!(replica_lag_max, 0, "lockstep replicas never lag");
    has("replica_lag_max", replica_lag_max.to_string());
    // A fault-free run serializes an all-zero fault section — the keys
    // must be present (flight series exist from tick one) and zero.
    has("degraded_answers", fault.degraded_answers.to_string());
    has("breaker_opens", fault.breaker_opens.to_string());
    has("worker_panics", fault.worker_panics.to_string());
    has("abandoned_gathers", fault.abandoned_gathers.to_string());
    assert_eq!(fault, netclus_service::FaultReport::default());
    // An all-in-process router issues no transport RPCs, but the keys
    // (and the per-lane transport tag) must still serialize.
    assert_eq!((transport_requests, transport_errors), (0, 0));
    has("transport_requests", transport_requests.to_string());
    has("transport_errors", transport_errors.to_string());
    has("transport_reconnects", transport_reconnects.to_string());
    has("transport_rpc_p50_us", transport_rpc.p50_micros.to_string());

    assert_eq!(lanes.len(), REGIONS, "one lane per shard");
    for lane in &lanes {
        assert!(lane.queries > 0, "shard {} executed tasks", lane.shard);
        has(
            &format!("shard{}_queries", lane.shard),
            lane.queries.to_string(),
        );
        has(
            &format!("shard{}_p50_us", lane.shard),
            lane.latency.p50_micros.to_string(),
        );
        has(
            &format!("shard{}_replicated_trajs", lane.shard),
            lane.replicated_trajs.to_string(),
        );
        // Load gauges: ≥ 2 tasks per shard ran, so the qps EWMA moved off
        // zero, and both heat fractions are proper fractions.
        assert!(lane.qps_ewma > 0.0, "shard {} qps gauge", lane.shard);
        assert!((0.0..=1.0).contains(&lane.cache_heat));
        assert!((0.0..=1.0).contains(&lane.cold_fraction));
        for gauge in ["qps_ewma", "cache_heat", "cold_fraction"] {
            let key = format!("\"shard{}_{gauge}\":", lane.shard);
            assert!(json.contains(&key), "{key} missing from {json}");
        }
        assert_eq!(lane.transport, "in_process");
        has(
            &format!("shard{}_transport", lane.shard),
            format!("\"{}\"", lane.transport),
        );
    }

    // Process gauges ride along on router reports too.
    assert!(
        report.process.arena_resident_bytes.unwrap_or(0) > 0,
        "arena gauge"
    );
    assert!(json.contains("\"arena_resident_bytes\":"));
    assert!(json.contains("\"rss_bytes\":"));
}

/// With the slow threshold at zero every query is tail-retained; each
/// trace must cover the query's wall time with named contiguous stages.
#[test]
fn tracer_attributes_wall_time_to_stages() {
    let router = run_router(TraceConfig {
        slow_threshold_us: 0,
        ..TraceConfig::default()
    });
    let tracer = router.tracer();
    assert_eq!(tracer.traces(), 20, "every query fed the tracer");
    let (slow, _sampled, _evicted) = tracer.retention();
    assert_eq!(slow, 20, "threshold 0 retains everything as slow");

    for st in [Stage::Admission, Stage::Round1, Stage::Merge, Stage::Reply] {
        assert_eq!(
            tracer.stages().summary(st).count,
            20,
            "stage {} histogram fed once per query",
            st.name()
        );
    }
    // Per-shard round-1 solves appear as child spans under Solve.
    assert!(tracer.stages().summary(Stage::Solve).count > 0);

    let records = tracer.slow_queries();
    assert_eq!(records.len(), 20);
    let mut saw_cold = false;
    for r in &records {
        saw_cold |= !r.meta.hot;
        // Stages are contiguous, so the only unattributed time is µs
        // truncation (≤ 1 µs per top-level span) plus the finish-call
        // epilogue — a hair on real traces, a visible slice of a 15 µs
        // one. Allow that fixed slack on top of the 95% contract.
        let slack_us = 1 + r.spans.iter().filter(|s| !s.child).count() as u64;
        assert!(
            r.attributed_us() + slack_us >= r.total_us - r.total_us / 20,
            "trace seq {} attributes only {} of {} µs",
            r.seq,
            r.attributed_us(),
            r.total_us
        );
        let line = r.to_json_line();
        for key in ["\"seq\":", "\"total_us\":", "\"spans\":[", "\"trigger\":"] {
            assert!(line.contains(key), "{key} missing from {line}");
        }
    }
    assert!(saw_cold, "first touches were traced as cold fan-outs");

    let stats = tracer.stats_json_line();
    for key in [
        "\"stage_admission_count\":",
        "\"stage_round1_p50_us\":",
        "\"stage_merge_p99_us\":",
        "\"slow_retained\":20",
    ] {
        assert!(stats.contains(key), "{key} missing from {stats}");
    }
    router.shutdown();
}

/// The executor's tracer covers the single-index query lifecycle.
#[test]
fn executor_tracer_covers_the_query_lifecycle() {
    let (net, trajs, sites) = build_world();
    let index = NetClusIndex::build(&net, &trajs, &sites, netclus_config());
    let service = NetClusService::start(
        net,
        trajs,
        index,
        ServiceConfig {
            workers: 2,
            trace: TraceConfig {
                slow_threshold_us: 0,
                ..TraceConfig::default()
            },
            ..Default::default()
        },
    )
    .expect("start service");
    for &tau in &[600.0, 900.0] {
        for k in [3usize, 5, 3] {
            service
                .query_blocking(ServiceRequest::greedy(TopsQuery::binary(k, tau)))
                .expect("service answered");
        }
    }
    let tracer = service.tracer();
    assert!(tracer.stages().summary(Stage::Admission).count > 0);
    assert!(tracer.stages().summary(Stage::CacheProbe).count > 0);
    assert!(tracer.stages().summary(Stage::ProviderGet).count > 0);
    assert!(tracer.stages().summary(Stage::Solve).count > 0);
    assert!(!tracer.slow_queries().is_empty());
    let report = service.metrics_report();
    assert!(report.process.arena_resident_bytes.unwrap_or(0) > 0);
    service.shutdown();
}

/// The framed telemetry endpoint serves live router documents over TCP.
#[test]
fn telemetry_endpoint_serves_live_router_documents() {
    let router = Arc::new(run_router(TraceConfig {
        slow_threshold_us: 0,
        ..TraceConfig::default()
    }));
    let source = TelemetrySource::new(
        {
            let r = Arc::clone(&router);
            move || r.metrics_report().to_json_line()
        },
        {
            let r = Arc::clone(&router);
            move || r.tracer().stats_json_line()
        },
        {
            let r = Arc::clone(&router);
            move || r.tracer().slow_log_jsonl()
        },
    );
    let mut server = TelemetryServer::start("127.0.0.1:0", source).expect("bind telemetry");
    let addr = server.addr();

    let metrics = telemetry::fetch(addr, "metrics").expect("fetch metrics");
    for key in ["\"epoch\":", "\"shard0_qps_ewma\":", "\"rss_bytes\":"] {
        assert!(metrics.contains(key), "{key} missing from {metrics}");
    }
    let stages = telemetry::fetch(addr, "stages").expect("fetch stages");
    assert!(stages.contains("\"stage_round1_p50_us\":"));
    let slow = telemetry::fetch(addr, "slow").expect("fetch slow log");
    assert!(slow.lines().count() >= 1, "slow log has retained traces");
    assert!(slow.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    let err = telemetry::fetch(addr, "bogus").expect("fetch unknown");
    assert!(err.contains("unknown command"));

    server.shutdown();
    router.shutdown();
}
