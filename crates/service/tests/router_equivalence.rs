//! The PR-5 exactness contract, end to end: a `ShardRouter` with the
//! per-shard provider cache, the round-1 candidate memo and lazy greedy
//! enabled returns answers **bit-identical** to
//!
//! 1. the cold uncached router (same code path, caches disabled), and
//! 2. the monolithic `NetClusIndex` rebuilt from scratch at every epoch,
//!
//! on random partition-respecting corpora for shard counts 1, 2 and 4,
//! across interleaved update batches (trajectory adds and removes). The
//! update interleaving is what proves epoch invalidation correct: a stale
//! provider or memoized round surviving an epoch advance would answer
//! from the old corpus and diverge from the rebuilt monolithic reference.
//!
//! The query stream is dashboard-shaped on purpose — repeated τ with `k`
//! first descending (prefix-slicing memo hits) then exceeding the
//! memoized run (miss + provider-cache hit + memo upgrade) — so the
//! equivalence is asserted *through* every cache path, not around them.

use std::sync::Arc;

use netclus::prelude::*;
use netclus_roadnet::{NodeId, Point, RegionPartition, RoadNetwork, RoadNetworkBuilder};
use netclus_service::{ShardRouter, ShardRouterConfig, UpdateOp};
use netclus_trajectory::{TrajId, Trajectory, TrajectorySet};
use proptest::prelude::*;

/// A region-confined walk: `(region, start, len)`.
type Walk = (usize, usize, usize);

/// A random multi-region instance with an update schedule.
#[derive(Clone, Debug)]
struct Instance {
    regions: usize,
    /// Nodes per region (a two-way corridor).
    n: usize,
    /// Initial walks.
    walks: Vec<Walk>,
    /// Update phases: each a list of added walks plus whether to remove
    /// the oldest live trajectory first.
    phases: Vec<(Vec<Walk>, bool)>,
    /// Dashboard thresholds (meters, multiples of 50 — pre-quantized).
    taus: Vec<f64>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2usize..=3, 6usize..12)
        .prop_flat_map(|(regions, n)| {
            let walk = (0..regions, 0..n.saturating_sub(2), 2usize..6);
            let walks = prop::collection::vec(walk.clone(), 2..8);
            let phase = (prop::collection::vec(walk, 1..4), any::<bool>());
            let phases = prop::collection::vec(phase, 1..3);
            let taus = prop::collection::vec((6u32..40).prop_map(|s| s as f64 * 50.0), 2);
            (Just(regions), Just(n), walks, phases, taus)
        })
        .prop_map(|(regions, n, walks, phases, taus)| Instance {
            regions,
            n,
            walks,
            phases,
            taus,
        })
}

/// Materializes the network: `regions` identical two-way corridors placed
/// 1000 km apart (mutually unreachable), so every corpus built from
/// region-confined walks respects any region-aligned partition.
fn build_net(inst: &Instance) -> (RoadNetwork, Vec<u32>) {
    let mut b = RoadNetworkBuilder::new();
    let mut region_of = Vec::new();
    for r in 0..inst.regions {
        let base = (r * inst.n) as u32;
        for i in 0..inst.n {
            b.add_node(Point::new(r as f64 * 1.0e6 + i as f64 * 90.0, 0.0));
            region_of.push(r as u32);
        }
        for i in 0..inst.n as u32 - 1 {
            b.add_two_way(NodeId(base + i), NodeId(base + i + 1), 90.0)
                .unwrap();
        }
    }
    (b.build().unwrap(), region_of)
}

fn walk_trajectory(inst: &Instance, (region, start, len): Walk) -> Trajectory {
    let base = region * inst.n;
    let end = (start + len).min(inst.n - 1);
    Trajectory::new(
        ((base + start) as u32..=(base + end) as u32)
            .map(NodeId)
            .collect(),
    )
}

fn netclus_config() -> NetClusConfig {
    NetClusConfig {
        tau_min: 200.0,
        tau_max: 2_400.0,
        threads: 1,
        ..Default::default()
    }
}

/// The dashboard query stream: for each τ, `k` descends (memo prefix
/// hits), then jumps above the memoized run (miss → provider hit →
/// upgrade), then repeats (hit again).
fn query_stream(taus: &[f64]) -> Vec<TopsQuery> {
    let mut queries = Vec::new();
    for &tau in taus {
        for k in [4usize, 2, 1, 6, 3] {
            queries.push(TopsQuery::binary(k, tau));
        }
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cached_router_is_bit_identical_to_cold_router_and_monolithic(
        inst in instance_strategy(),
    ) {
        let (net, region_of) = build_net(&inst);
        let sites: Vec<NodeId> = net.nodes().collect();
        let cfg = netclus_config();
        let queries = query_stream(&inst.taus);

        // Initial corpus.
        let mut trajs = TrajectorySet::for_network(&net);
        for &w in &inst.walks {
            trajs.add(walk_trajectory(&inst, w));
        }

        // Materialize the update schedule once: the routed id assignment
        // is deterministic (sequential from the initial bound), so the
        // monolithic mirror can replay it with `insert_at`.
        let batches: Vec<Vec<UpdateOp>> = inst
            .phases
            .iter()
            .map(|(adds, remove_first)| {
                let mut ops = Vec::new();
                if *remove_first {
                    ops.push(UpdateOp::RemoveTrajectory(TrajId(0)));
                }
                for &w in adds {
                    ops.push(UpdateOp::AddTrajectory(walk_trajectory(&inst, w)));
                }
                ops
            })
            .collect();

        // Monolithic reference: replay the schedule, rebuilding the index
        // from scratch at every epoch, and record the expected answer of
        // every (epoch, query) pair.
        let mut expected: Vec<Vec<(Vec<NodeId>, u64)>> = Vec::new();
        {
            let mut mono_trajs = trajs.clone();
            let mut next_id = mono_trajs.id_bound() as u32;
            for epoch in 0..=batches.len() {
                if epoch > 0 {
                    for op in &batches[epoch - 1] {
                        match op {
                            UpdateOp::AddTrajectory(t) => {
                                assert!(mono_trajs.insert_at(TrajId(next_id), t.clone()));
                                next_id += 1;
                            }
                            UpdateOp::RemoveTrajectory(id) => {
                                assert!(mono_trajs.remove(*id).is_some(), "removed twice");
                            }
                            _ => unreachable!("schedule only adds/removes trajectories"),
                        }
                    }
                }
                let mono = NetClusIndex::build(&net, &mono_trajs, &sites, cfg);
                expected.push(
                    queries
                        .iter()
                        .map(|q| {
                            let a = mono.query(&mono_trajs, q);
                            (a.solution.sites, a.solution.utility.to_bits())
                        })
                        .collect(),
                );
            }
        }

        let shared_net = Arc::new(net.clone());
        for shards in [1usize, 2, 4] {
            let assignment: Vec<u32> = region_of.iter().map(|&r| r % shards as u32).collect();
            let partition = RegionPartition::from_assignment(assignment, shards);
            let build = || {
                ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, cfg)
            };
            let hot = ShardRouter::start(
                Arc::clone(&shared_net),
                build(),
                ShardRouterConfig::default(),
            )
            .expect("start router");
            let cold = ShardRouter::start(
                Arc::clone(&shared_net),
                build(),
                ShardRouterConfig::uncached(),
            )
            .expect("start router");
            for (epoch, wants) in expected.iter().enumerate() {
                if epoch > 0 {
                    let batch = &batches[epoch - 1];
                    let rh = hot.apply_updates(batch.clone());
                    let rc = cold.apply_updates(batch.clone());
                    prop_assert_eq!(rh.epoch, epoch as u64);
                    prop_assert_eq!((rh.applied, rh.rejected), (rc.applied, rc.rejected));
                }
                for (q, (want_sites, want_utility)) in queries.iter().zip(wants) {
                    let a = hot.query_blocking(*q).expect("hot router answered");
                    let b = cold.query_blocking(*q).expect("cold router answered");
                    prop_assert_eq!(a.epoch, epoch as u64, "hot epoch");
                    prop_assert_eq!(b.epoch, epoch as u64, "cold epoch");
                    prop_assert_eq!(
                        &a.sites, &b.sites,
                        "hot vs cold diverged: shards={} epoch={} k={} tau={}",
                        shards, epoch, q.k, q.tau
                    );
                    prop_assert_eq!(
                        a.utility.to_bits(), b.utility.to_bits(),
                        "hot vs cold utility: shards={} epoch={}", shards, epoch
                    );
                    prop_assert_eq!(
                        &a.sites, want_sites,
                        "router vs monolithic: shards={} epoch={} k={} tau={}",
                        shards, epoch, q.k, q.tau
                    );
                    prop_assert_eq!(
                        a.utility.to_bits(), *want_utility,
                        "router vs monolithic utility: shards={} epoch={}", shards, epoch
                    );
                }
            }
            // The warm router actually exercised its caches — this test
            // must prove the hot *path*, not an accidentally-cold one.
            let report = hot.metrics_report().shards.expect("shard section");
            prop_assert!(report.rounds.hits > 0, "memo never hit");
            prop_assert!(report.providers.hits > 0, "provider cache never hit");
            prop_assert!(report.hot.count > 0, "no hot fan-outs recorded");
            let cold_report = cold.metrics_report().shards.expect("shard section");
            prop_assert_eq!(cold_report.hot.count, 0, "cold router must stay cold");
            hot.shutdown();
            cold.shutdown();
        }
    }
}
