//! Flight-recorder + health integration, end to end over the wire: a
//! real service feeds a sampler thread, the telemetry endpoint serves
//! `history`/`rates`/`health` from the recorder over framed TCP, and the
//! health verdict walks healthy → degraded → healthy across an injected
//! freshness stall with the freshness rule named as the firing cause.
//!
//! The stall is injected through the same gauge the ingest pipeline
//! maintains (`visibility_lag_us`): the sampler closure overlays a
//! test-controlled value on the service's real flattened metrics
//! surface, so everything downstream of the gauge — sampler, recorder
//! retention, TCP commands, SLO evaluation — is the production path.
//! (The pipeline end of the gauge is exercised by the `netclus_top`
//! example, which stalls a real `Ingestor`.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use netclus::prelude::*;
use netclus_roadnet::{NodeId, Point, RoadNetworkBuilder};
use netclus_service::{
    telemetry, FlightConfig, FlightRecorder, FlightSampler, HealthEvaluator, NetClusService,
    ServiceConfig, ServiceRequest, Severity, SloRule, TelemetryServer, TelemetrySource,
};
use netclus_trajectory::{Trajectory, TrajectorySet};

/// Freshness SLO for the test: fire when ingest→visible lag exceeds 50 ms.
const FRESHNESS_CEILING_US: f64 = 50_000.0;

fn start_service() -> NetClusService {
    let mut b = RoadNetworkBuilder::new();
    let nodes: Vec<_> = (0..8)
        .map(|i| b.add_node(Point::new(i as f64 * 300.0, 0.0)))
        .collect();
    for w in nodes.windows(2) {
        b.add_two_way(w[0], w[1], 300.0).unwrap();
    }
    let net = b.build().unwrap();
    let mut trajs = TrajectorySet::for_network(&net);
    trajs.add(Trajectory::new(nodes[0..5].to_vec()));
    trajs.add(Trajectory::new(nodes[3..8].to_vec()));
    let sites: Vec<NodeId> = net.nodes().collect();
    let index = NetClusIndex::build(
        &net,
        &trajs,
        &sites,
        NetClusConfig {
            tau_min: 400.0,
            tau_max: 2_400.0,
            threads: 1,
            ..Default::default()
        },
    );
    NetClusService::start(net, trajs, index, ServiceConfig::default()).expect("start service")
}

fn wait_for(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn telemetry_serves_recorder_history_rates_and_health_transitions() {
    let service = Arc::new(start_service());
    for _ in 0..4 {
        service
            .submit(ServiceRequest::greedy(TopsQuery::binary(2, 800.0)))
            .expect("submit")
            .wait()
            .expect("answer");
    }

    let recorder = Arc::new(FlightRecorder::new(FlightConfig {
        tick: Duration::from_millis(20),
        capacity: 512,
        downsample_every: 8,
        coarse_capacity: 64,
    }));
    // The injected fault: the test plays the role of a stalled ingest
    // publisher by raising the visibility-lag gauge the sampler overlays
    // on the real service sample.
    let lag_us = Arc::new(AtomicU64::new(0));
    let mut sampler = {
        let service = Arc::clone(&service);
        let lag_us = Arc::clone(&lag_us);
        FlightSampler::start(Arc::clone(&recorder), move || {
            let mut sample = service.flight_sample();
            sample.push((
                "visibility_lag_us".to_string(),
                lag_us.load(Ordering::Relaxed) as f64,
            ));
            sample
        })
    };

    let health = HealthEvaluator::new()
        .with_rule(SloRule::ceiling(
            "freshness",
            "visibility_lag_us",
            FRESHNESS_CEILING_US,
            Severity::Degrading,
        ))
        .with_rule(SloRule::ceiling(
            "hot_p99",
            "latency_p99_us",
            10_000_000.0,
            Severity::Critical,
        ));
    let source = TelemetrySource::new(
        {
            let s = Arc::clone(&service);
            move || s.metrics_report().to_json_line()
        },
        {
            let s = Arc::clone(&service);
            move || s.tracer().stats_json_line()
        },
        {
            let s = Arc::clone(&service);
            move || s.tracer().slow_log_jsonl()
        },
    )
    .with_flight(Arc::clone(&recorder), health);
    let mut server = TelemetryServer::start("127.0.0.1:0", source).expect("bind telemetry");
    let addr = server.addr();

    // Phase 1 — healthy: the recorder fills with real service series and
    // every recorder command answers over the wire.
    assert!(
        wait_for(Duration::from_secs(10), || recorder.ticks() >= 3),
        "sampler never filled the recorder"
    );
    let health_line = telemetry::fetch(addr, "health").expect("fetch health");
    assert!(
        health_line.contains("\"verdict\":\"healthy\""),
        "expected healthy before the stall: {health_line}"
    );
    assert!(health_line.contains("\"rule_freshness_firing\":0"));
    let history = telemetry::fetch(addr, "history completed").expect("fetch history");
    assert!(
        history.starts_with("{\"series\":\"completed\"") && history.contains("\"points\":[["),
        "real service counters must reach the recorder: {history}"
    );
    let rates = telemetry::fetch(addr, "rates").expect("fetch rates");
    assert!(
        rates.contains("\"interval_secs\":") && rates.contains("\"completed\":"),
        "rates must cover recorded series: {rates}"
    );

    // Phase 2 — stall: freshness lag jumps over the ceiling. The series
    // visibly rises in retained history and the verdict degrades with the
    // freshness rule as the named cause.
    lag_us.store(500_000, Ordering::Relaxed);
    assert!(
        wait_for(Duration::from_secs(10), || {
            telemetry::fetch(addr, "health").is_ok_and(|h| h.contains("\"verdict\":\"degraded\""))
        }),
        "health never degraded during the stall"
    );
    let health_line = telemetry::fetch(addr, "health").expect("fetch health");
    assert!(
        health_line.contains("\"firing\":[\"freshness\"]"),
        "the freshness rule must be the firing cause: {health_line}"
    );
    assert!(health_line.contains("\"rule_freshness_firing\":1"));
    assert!(health_line.contains("\"rule_hot_p99_firing\":0"));
    let history = telemetry::fetch(addr, "history visibility_lag_us").expect("fetch history");
    assert!(
        history.contains("500000.000"),
        "freshness series must show the stall: {history}"
    );

    // Phase 3 — recovery: the backlog clears, the gauge drops, and the
    // verdict returns to healthy (the ceiling reads the newest value, so
    // recovery is immediate once a fresh tick lands).
    lag_us.store(0, Ordering::Relaxed);
    assert!(
        wait_for(Duration::from_secs(10), || {
            telemetry::fetch(addr, "health").is_ok_and(|h| h.contains("\"verdict\":\"healthy\""))
        }),
        "health never recovered after the stall"
    );
    // Retained history still shows the whole arc: flat, spike, flat.
    let history = telemetry::fetch(addr, "history visibility_lag_us").expect("fetch history");
    assert!(history.contains("500000.000"), "spike must stay retained");
    assert!(
        history.ends_with("0.000]]}"),
        "newest point must be recovered: {history}"
    );

    sampler.shutdown();
    server.shutdown();
    service.shutdown();
}
