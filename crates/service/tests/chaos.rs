//! Chaos suite for the fault-tolerant sharded serving path (PR 8).
//!
//! Three layers, all driving the production `ShardRouter::query` path
//! with deterministic seeded [`FaultPlan`]s:
//!
//! 1. **Property chaos** — random fault plans (delays, injected errors,
//!    worker panics, dropped replies; always-on and windowed) over 2- and
//!    4-shard routers. Invariants: no query ever hangs, every failure is
//!    a *typed* `QueryError`, epochs never tear, and every full
//!    (non-degraded, non-stale) answer is **bit-identical** to an
//!    uncached fault-free reference router — chaos may degrade answers
//!    but must never silently corrupt one.
//! 2. **Deterministic end-to-end arc** — the acceptance scenario: 1 of 4
//!    shards scripted to fail; the router keeps answering degraded with
//!    a conservative utility lower bound (`bound ≤ true ratio ≤ 1`), the
//!    breaker opens then half-open-probes closed after recovery, no
//!    query blocks past its deadline, and a panicked worker never wedges
//!    a gather.
//! 3. **SLO smoke** — the `router_degraded_rate` burn-rate rule over the
//!    flight-recorder series the router exports: the health verdict
//!    degrades under a scripted outage and recovers after it clears.

use std::sync::Arc;
use std::time::{Duration, Instant};

use netclus::prelude::*;
use netclus_roadnet::{NodeId, Point, RegionPartition, RoadNetwork, RoadNetworkBuilder};
use netclus_service::{
    BreakerConfig, BreakerState, FaultAction, FaultPlan, FaultRule, FlightConfig, FlightRecorder,
    HealthEvaluator, QueryError, QueryOptions, Severity, ShardRouter, ShardRouterConfig, SloRule,
    UpdateOp, Verdict,
};
use netclus_trajectory::{Trajectory, TrajectorySet};
use proptest::prelude::*;

/// Injected worker panics are part of the plan, not test failures — keep
/// their backtraces out of the test output while still printing real
/// ones. Installed once per process; delegates anything else.
fn silence_injected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected panic"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// `regions` far-separated 12-node corridors with region-confined walks.
fn fixture(
    regions: usize,
) -> (
    Arc<RoadNetwork>,
    TrajectorySet,
    Vec<NodeId>,
    RegionPartition,
) {
    let mut b = RoadNetworkBuilder::new();
    for region in 0..regions {
        let x0 = region as f64 * 1_000_000.0;
        let base = b.node_count() as u32;
        for i in 0..12 {
            b.add_node(Point::new(x0 + i as f64 * 100.0, 0.0));
        }
        for i in 0..11u32 {
            b.add_two_way(NodeId(base + i), NodeId(base + i + 1), 100.0)
                .unwrap();
        }
    }
    let net = Arc::new(b.build().unwrap());
    let mut trajs = TrajectorySet::for_network(&net);
    for region in 0..regions as u32 {
        let base = region * 12;
        // Region sizes differ so missing shards carry different mass.
        for s in 0..(3 + region % 3) {
            trajs.add(Trajectory::new(
                (base + s..base + s + 6).map(NodeId).collect(),
            ));
        }
    }
    let sites: Vec<NodeId> = net.nodes().collect();
    let partition = RegionPartition::build(&net, regions);
    (net, trajs, sites, partition)
}

fn start_router(regions: usize, cfg: ShardRouterConfig) -> ShardRouter {
    let (net, trajs, sites, partition) = fixture(regions);
    let netclus_cfg = NetClusConfig {
        tau_min: 200.0,
        tau_max: 3_000.0,
        threads: 1,
        ..Default::default()
    };
    let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, netclus_cfg);
    ShardRouter::start(net, sharded, cfg).expect("start router")
}

/// Same corpus behind `replicas` bit-identical replica transports per
/// shard (PR 10's replica sets).
fn start_replicated_router(regions: usize, replicas: usize, cfg: ShardRouterConfig) -> ShardRouter {
    let (net, trajs, sites, partition) = fixture(regions);
    let netclus_cfg = NetClusConfig {
        tau_min: 200.0,
        tau_max: 3_000.0,
        threads: 1,
        ..Default::default()
    };
    let sharded = ShardedNetClusIndex::build(&net, &trajs, &sites, &partition, netclus_cfg);
    ShardRouter::start_replicated(net, sharded, replicas, cfg).expect("start replicated router")
}

/// The dashboard-shaped query stream every test replays.
const QUERIES: [(usize, f64); 6] = [
    (1, 400.0),
    (2, 800.0),
    (3, 600.0),
    (2, 800.0),
    (4, 1_200.0),
    (1, 1_000.0),
];

/// One randomized injection rule: `(shard, action, probability bucket,
/// windowed flag, window start, window length)`.
type RuleSpec = (u32, u8, u8, u8, u64, u64);

fn build_plan(seed: u64, shards: u32, specs: &[RuleSpec], replica: Option<u32>) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for &(shard, action, prob, windowed, from, len) in specs {
        let action = match action % 4 {
            0 => FaultAction::Delay(Duration::from_millis(2)),
            1 => FaultAction::Error,
            2 => FaultAction::Panic,
            _ => FaultAction::Drop,
        };
        plan = plan.with_rule(FaultRule {
            shard: shard % shards,
            replica,
            action,
            probability: [0.0, 0.5, 1.0][(prob % 3) as usize],
            window: (windowed == 1).then_some((from, from + len)),
        });
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random fault plans: queries always terminate with either an
    /// answer or a typed error, full answers stay bit-exact against a
    /// fault-free uncached reference, degraded answers carry a sound
    /// conservative bound, and epochs never tear.
    #[test]
    fn random_fault_plans_never_hang_and_full_answers_stay_exact(
        shards in prop_oneof![Just(2usize), Just(4usize)],
        seed in any::<u64>(),
        specs in prop::collection::vec(
            (0u32..4, 0u8..4, 0u8..3, 0u8..2, 0u64..4, 1u64..4),
            0..4,
        ),
    ) {
        silence_injected_panics();
        let router = start_router(shards, ShardRouterConfig::default());
        let reference = start_router(shards, ShardRouterConfig::uncached());
        router.set_fault_plan(Some(build_plan(seed, shards as u32, &specs, None)));

        for (i, &(k, tau)) in QUERIES.iter().enumerate() {
            let q = TopsQuery::binary(k, tau);
            // Generous deadline on odd queries: injected 2 ms delays must
            // never trip it, so timeouts cannot mask the exactness check.
            let opts = if i % 2 == 1 {
                QueryOptions::with_deadline(Duration::from_secs(30))
            } else {
                QueryOptions::default()
            };
            match router.query(q, &opts) {
                Ok(answer) => {
                    prop_assert_eq!(answer.epoch, 0, "epoch must never tear");
                    prop_assert!(
                        (0.0..=1.0).contains(&answer.utility_bound),
                        "bound out of range: {}",
                        answer.utility_bound
                    );
                    let full = reference.query_blocking(q).expect("reference query");
                    if !answer.degraded && !answer.stale {
                        prop_assert!(answer.shards_missing.is_empty());
                        prop_assert_eq!(answer.utility_bound, 1.0);
                        prop_assert_eq!(&answer.sites, &full.sites, "k={} τ={}", k, tau);
                        prop_assert_eq!(
                            answer.utility.to_bits(),
                            full.utility.to_bits(),
                            "full answers must stay bit-identical under chaos"
                        );
                    } else if !answer.stale {
                        prop_assert!(!answer.shards_missing.is_empty());
                        if full.utility > 0.0 {
                            let true_ratio = answer.utility / full.utility;
                            prop_assert!(
                                answer.utility_bound <= true_ratio + 1e-9,
                                "bound {} must not exceed true ratio {}",
                                answer.utility_bound,
                                true_ratio
                            );
                        }
                    }
                }
                // The only residual failures, both typed.
                Err(QueryError::DeadlineExceeded { .. }) | Err(QueryError::Unavailable { .. }) => {}
                Err(QueryError::Submit(e)) => panic!("unexpected submit failure: {e:?}"),
            }
        }

        let fault = router.fault_report();
        prop_assert!(fault.breaker_open_shards <= shards as u64);
        prop_assert!(fault.worker_respawns <= fault.worker_panics);
        router.shutdown();
        reference.shutdown();
    }

    /// Replica sets change the contract: random chaos confined to ONE
    /// replica per shard (replica 0 — delays, errors, panics, drops) must
    /// never degrade an answer at all. Every query returns full and
    /// bit-identical to the unreplicated fault-free reference, and the
    /// kills surface as replica failovers, not degraded merges.
    #[test]
    fn single_replica_chaos_never_degrades_an_answer(
        shards in prop_oneof![Just(2usize), Just(4usize)],
        seed in any::<u64>(),
        specs in prop::collection::vec(
            (0u32..4, 0u8..4, 0u8..3, 0u8..2, 0u64..4, 1u64..4),
            0..4,
        ),
    ) {
        silence_injected_panics();
        let router = start_replicated_router(shards, 2, ShardRouterConfig::default());
        let reference = start_router(shards, ShardRouterConfig::uncached());
        // Random rules all scoped to replica 0, plus one guaranteed
        // hard-kill of shard 0's preferred replica so at least one real
        // failover happens every case.
        let plan = build_plan(seed, shards as u32, &specs, Some(0))
            .with_rule(FaultRule::always(0, FaultAction::Error).on_replica(0));
        router.set_fault_plan(Some(plan));

        for &(k, tau) in QUERIES.iter() {
            let q = TopsQuery::binary(k, tau);
            let answer = router
                .query(q, &QueryOptions::default())
                .expect("a live sibling per shard means no typed failures");
            prop_assert!(
                !answer.degraded && !answer.stale,
                "single-replica chaos must never degrade: k={} τ={}",
                k,
                tau
            );
            prop_assert_eq!(answer.epoch, 0);
            prop_assert_eq!(answer.utility_bound, 1.0);
            let full = reference.query_blocking(q).expect("reference query");
            prop_assert_eq!(&answer.sites, &full.sites, "k={} τ={}", k, tau);
            prop_assert_eq!(
                answer.utility.to_bits(),
                full.utility.to_bits(),
                "failover answers must stay bit-identical"
            );
        }

        let fault = router.fault_report();
        prop_assert_eq!(fault.degraded_answers, 0);
        prop_assert_eq!(fault.stale_answers, 0);
        prop_assert_eq!(fault.unavailable_answers, 0);
        prop_assert!(fault.replica_failovers >= 1, "{:?}", fault);
        router.shutdown();
        reference.shutdown();
    }
}

/// The acceptance arc, scripted end to end: 1-of-4-shards outage →
/// degraded answers with a sound bound → breaker opens and skips → a
/// deadline bounds the wait under a slow shard → a panicked worker is
/// survived → recovery closes the breaker through a half-open probe and
/// answers go back to bit-exact.
#[test]
fn one_of_four_shards_outage_arc_degrades_brakes_and_recovers() {
    silence_injected_panics();
    let router = start_router(
        4,
        ShardRouterConfig {
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(50),
            },
            ..Default::default()
        },
    );
    let reference = start_router(4, ShardRouterConfig::uncached());
    let q = TopsQuery::binary(3, 800.0);
    let full = reference.query_blocking(q).expect("reference answer");

    // Phase 0 — healthy: bit-exact, bound trivially 1.
    let healthy = router.query_blocking(q).expect("healthy answer");
    assert!(!healthy.degraded && !healthy.stale);
    assert_eq!(healthy.sites, full.sites);
    assert_eq!(healthy.utility.to_bits(), full.utility.to_bits());
    assert_eq!(healthy.utility_bound, 1.0);

    // Phase 1 — shard 3 hard-fails: answers degrade with a sound bound;
    // after `failure_threshold` failures the breaker opens and the third
    // query skips the shard without even scattering to it.
    router.set_fault_plan(Some(
        FaultPlan::new(7).with_rule(FaultRule::always(3, FaultAction::Error)),
    ));
    for _ in 0..3 {
        let a = router.query_blocking(q).expect("degraded answer");
        assert!(a.degraded && !a.stale);
        assert_eq!(a.shards_missing, vec![3]);
        let true_ratio = a.utility / full.utility;
        assert!(
            a.utility_bound <= true_ratio + 1e-9 && true_ratio <= 1.0 + 1e-9,
            "bound {} vs true ratio {true_ratio}",
            a.utility_bound
        );
        assert!(a.utility_bound > 0.0, "survivors carry utility");
    }
    let fault = router.fault_report();
    assert_eq!(fault.degraded_answers, 3);
    assert!(fault.breaker_opens >= 1, "breaker must have opened");
    assert!(fault.breaker_skips >= 1, "open breaker must skip the shard");
    assert_eq!(fault.breaker_open_shards, 1);
    let snaps = router.breaker_snapshots();
    assert_eq!(snaps[3].state, BreakerState::Open);

    // Phase 2 — a slow shard under a deadline: the budget bounds the
    // wait well under the injected delay and the answer still arrives,
    // degraded, from the surviving shards.
    router.set_fault_plan(Some(
        FaultPlan::new(7)
            .with_rule(FaultRule::always(3, FaultAction::Error))
            .with_rule(FaultRule::always(
                1,
                FaultAction::Delay(Duration::from_millis(400)),
            )),
    ));
    let begin = Instant::now();
    let a = router
        .query(q, &QueryOptions::with_deadline(Duration::from_millis(120)))
        .expect("deadline-bounded degraded answer");
    let elapsed = begin.elapsed();
    assert!(
        elapsed < Duration::from_millis(400),
        "deadline must bound the wait, took {elapsed:?}"
    );
    assert!(a.degraded);
    assert!(a.shards_missing.contains(&1), "slow shard timed out");
    assert!(a.shards_missing.contains(&3), "open breaker still skipped");
    assert!(router.fault_report().shard_timeouts >= 1);

    // Phase 3 — a worker panic mid-gather: the reply is typed, the
    // gather completes degraded, and the supervisor respawns the worker.
    router.set_fault_plan(Some(
        FaultPlan::new(7)
            .with_rule(FaultRule::outage(2, FaultAction::Panic, 0, u64::MAX))
            .with_rule(FaultRule::always(3, FaultAction::Error)),
    ));
    let a = router.query_blocking(q).expect("gather survives the panic");
    assert!(a.degraded);
    assert!(a.shards_missing.contains(&2), "panicked shard is missing");
    let until = Instant::now() + Duration::from_secs(5);
    while router.fault_report().worker_respawns < 1 && Instant::now() < until {
        std::thread::sleep(Duration::from_millis(5));
    }
    let fault = router.fault_report();
    assert!(fault.worker_panics >= 1, "panic must be counted");
    assert!(fault.worker_respawns >= 1, "pool must respawn");

    // Phase 4 — recovery: the plan clears, the cooldown elapses, and the
    // next query half-open-probes shard 3 back to closed. Answers return
    // to bit-exact against the fault-free reference.
    router.set_fault_plan(None);
    std::thread::sleep(Duration::from_millis(60));
    let recovered = router.query_blocking(q).expect("recovered answer");
    assert!(!recovered.degraded && !recovered.stale);
    assert_eq!(recovered.sites, full.sites);
    assert_eq!(recovered.utility.to_bits(), full.utility.to_bits());
    let fault = router.fault_report();
    assert!(fault.breaker_probes >= 1, "recovery goes through a probe");
    assert!(
        fault.breaker_closes >= 1,
        "probe success closes the breaker"
    );
    assert_eq!(fault.breaker_open_shards, 0);
    for snap in router.breaker_snapshots() {
        assert_eq!(snap.state, BreakerState::Closed);
    }
    router.shutdown();
    reference.shutdown();
}

/// The PR 10 acceptance arc over replica sets, scripted end to end:
/// killing one replica of EVERY shard never costs a single full answer
/// (failover, not degradation), epoch-lockstep updates keep flowing to
/// the survivors with zero replica lag, only losing a shard's *whole*
/// replica set opens the degraded lane with its conservative bound, and
/// after the outage clears the answers return to bit-exact.
#[test]
fn replica_kill_arc_fails_over_then_only_full_set_loss_degrades() {
    silence_injected_panics();
    let router = start_replicated_router(
        4,
        2,
        ShardRouterConfig {
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(50),
            },
            ..Default::default()
        },
    );
    let reference = start_router(4, ShardRouterConfig::uncached());
    let q = TopsQuery::binary(3, 800.0);
    let full = reference.query_blocking(q).expect("reference answer");

    // Phase 0 — healthy: bit-exact through the replica sets.
    let healthy = router.query_blocking(q).expect("healthy answer");
    assert!(!healthy.degraded && !healthy.stale);
    assert_eq!(healthy.sites, full.sites);
    assert_eq!(healthy.utility.to_bits(), full.utility.to_bits());

    // Phase 1 — kill the preferred replica (0) of EVERY shard: each lane
    // fails over to its sibling and every answer stays full + bit-exact.
    let kill_preferred = || {
        let mut plan = FaultPlan::new(13);
        for s in 0..4 {
            plan = plan.with_rule(FaultRule::always(s, FaultAction::Error).on_replica(0));
        }
        plan
    };
    router.set_fault_plan(Some(kill_preferred()));
    for _ in 0..3 {
        let a = router.query_blocking(q).expect("failover answer");
        assert!(!a.degraded && !a.stale, "a live sibling means no degrade");
        assert_eq!(a.sites, full.sites);
        assert_eq!(a.utility.to_bits(), full.utility.to_bits());
    }
    let fault = router.fault_report();
    assert_eq!(fault.degraded_answers, 0);
    assert!(fault.replica_failovers >= 4, "one per shard: {fault:?}");

    // Phase 2 — updates keep flowing mid-outage: the apply fan-out
    // reaches BOTH replicas of every shard (round-1 faults don't touch
    // the apply path), so the lockstep epoch advances with zero lag and
    // answers at the new epoch stay bit-exact.
    let batch = vec![UpdateOp::AddTrajectory(Trajectory::new(
        (0..5).map(NodeId).collect(),
    ))];
    let receipt = router.apply_updates(batch.clone());
    assert_eq!(receipt.epoch, 1);
    assert_eq!(router.replica_lag_max(), 0, "lockstep spans the outage");
    let r2 = reference.apply_updates(batch);
    assert_eq!(r2.epoch, 1);
    let fresh_full = reference.query_blocking(q).expect("reference at epoch 1");
    let fresh = router
        .query_blocking(q)
        .expect("failover answer at epoch 1");
    assert!(!fresh.degraded);
    assert_eq!(fresh.epoch, 1);
    assert_eq!(fresh.sites, fresh_full.sites);
    assert_eq!(fresh.utility.to_bits(), fresh_full.utility.to_bits());

    // Phase 3 — shard 2 loses its LAST replica too: only now does the
    // PR 8 degraded lane open, with the sound conservative bound.
    router.set_fault_plan(Some(
        kill_preferred().with_rule(FaultRule::always(2, FaultAction::Error).on_replica(1)),
    ));
    let degraded = router.query_blocking(q).expect("degraded answer");
    assert!(degraded.degraded && !degraded.stale);
    assert_eq!(degraded.shards_missing, vec![2]);
    let true_ratio = degraded.utility / fresh_full.utility;
    assert!(
        degraded.utility_bound <= true_ratio + 1e-9 && true_ratio <= 1.0 + 1e-9,
        "bound {} vs true ratio {true_ratio}",
        degraded.utility_bound
    );
    assert_eq!(router.fault_report().degraded_answers, 1);

    // Phase 4 — the killed replicas come back: the plan clears, the
    // breaker cooldown elapses, and answers return to full + bit-exact
    // with zero further degraded answers.
    router.set_fault_plan(None);
    std::thread::sleep(Duration::from_millis(60));
    let recovered = router.query_blocking(q).expect("recovered answer");
    assert!(!recovered.degraded && !recovered.stale);
    assert_eq!(recovered.sites, fresh_full.sites);
    assert_eq!(recovered.utility.to_bits(), fresh_full.utility.to_bits());
    assert_eq!(router.fault_report().degraded_answers, 1, "no new degrades");
    router.shutdown();
    reference.shutdown();
}

/// Degraded-mode SLO smoke: the `router_degraded_rate` burn-rate rule
/// over the router's own flight series (`degraded_answers` /
/// `completed`) fires during a scripted outage and recovers once the
/// fast window is clean again.
#[test]
fn router_degraded_rate_slo_burns_and_recovers() {
    silence_injected_panics();
    // A short breaker cooldown so the recovery phase can re-admit the
    // failed shard through a probe right after the plan clears.
    let router = start_router(
        2,
        ShardRouterConfig {
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(10),
            },
            ..Default::default()
        },
    );
    let recorder = FlightRecorder::new(FlightConfig {
        tick: Duration::from_secs(1),
        capacity: 512,
        downsample_every: 8,
        coarse_capacity: 64,
    });
    let health = HealthEvaluator::new().with_rule(SloRule::burn_rate(
        "router_degraded_rate",
        "degraded_answers",
        "completed",
        0.10,
        3.0,
        10.0,
        2.0,
        Severity::Degrading,
    ));
    let q = TopsQuery::binary(2, 800.0);
    let tick = |t: u64| recorder.record_at(t as f64, &router.flight_sample());

    // Healthy baseline: real traffic, zero degraded answers.
    for t in 0..6 {
        router.query_blocking(q).expect("healthy query");
        tick(t);
    }
    let report = health.evaluate(&recorder);
    assert_eq!(report.verdict, Verdict::Healthy, "baseline must be healthy");

    // Outage: shard 1 hard-fails, every answer degrades; the burn rate
    // saturates both windows and the verdict degrades with the rule as
    // the named cause.
    router.set_fault_plan(Some(
        FaultPlan::new(3).with_rule(FaultRule::always(1, FaultAction::Error)),
    ));
    for t in 6..18 {
        let a = router.query_blocking(q).expect("degraded query");
        assert!(a.degraded);
        tick(t);
    }
    let report = health.evaluate(&recorder);
    assert_eq!(
        report.verdict,
        Verdict::Degraded,
        "outage must fire the SLO"
    );
    assert_eq!(report.firing(), vec!["router_degraded_rate"]);

    // Recovery: the plan clears, the breaker cooldown elapses so the
    // first recovered query probes the shard closed, healthy traffic
    // resumes, and the fast window recovering un-fires the conjunction.
    router.set_fault_plan(None);
    std::thread::sleep(Duration::from_millis(20));
    for t in 18..30 {
        let a = router.query_blocking(q).expect("recovered query");
        assert!(!a.degraded);
        tick(t);
    }
    let report = health.evaluate(&recorder);
    assert_eq!(report.verdict, Verdict::Healthy, "SLO must recover");
    router.shutdown();
}
