//! Synthetic city road-network generators.
//!
//! The paper evaluates on the Beijing OSM network plus three MNTG-generated
//! city workloads whose *topologies* drive Fig. 11: New York (star), Atlanta
//! (mesh), Bangalore (polycentric). These generators synthesize strongly
//! connected networks with exactly those geometric properties:
//!
//! * [`grid_city`] — a jittered Manhattan mesh with random street removals
//!   (Atlanta-like; also the local fabric of the other generators);
//! * [`star_city`] — a dense core with radial corridors and ladder side
//!   streets (New York-like);
//! * [`polycentric_city`] — several mesh sub-centers joined by arterials
//!   (Bangalore-like);
//! * [`ring_radial_city`] — a mesh overlaid with concentric ring roads and
//!   radial avenues (Beijing-like).
//!
//! Each generator returns a [`City`]: the network plus suggested workload
//! hotspots matching its topology. All randomness flows through the caller's
//! seeded RNG; generation is deterministic given the seed.

use netclus_roadnet::{
    strongly_connected_components, NodeId, Point, RoadNetwork, RoadNetworkBuilder,
};
use rand::RngExt;

/// An origin/destination attraction zone for workload generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hotspot {
    /// Zone center.
    pub center: Point,
    /// Gaussian spread of trip endpoints around the center, meters.
    pub radius: f64,
    /// Relative sampling weight.
    pub weight: f64,
}

/// A generated city: network plus topology-appropriate hotspots.
#[derive(Clone, Debug)]
pub struct City {
    /// Generator label (e.g. `"grid"`, `"star"`).
    pub name: String,
    /// The strongly connected road network.
    pub net: RoadNetwork,
    /// Suggested OD hotspots for [`crate::workload`].
    pub hotspots: Vec<Hotspot>,
}

/// Configuration for [`grid_city`].
#[derive(Clone, Copy, Debug)]
pub struct GridCityConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Nominal block edge length, meters.
    pub spacing_m: f64,
    /// Node position jitter as a fraction of spacing (0 = perfect grid).
    pub jitter: f64,
    /// Fraction of two-way street segments randomly removed (the survivors'
    /// largest strongly connected component is kept).
    pub removal_fraction: f64,
}

impl Default for GridCityConfig {
    fn default() -> Self {
        GridCityConfig {
            rows: 40,
            cols: 40,
            spacing_m: 150.0,
            jitter: 0.25,
            removal_fraction: 0.08,
        }
    }
}

/// Generates an Atlanta-like jittered mesh.
///
/// Trips in a mesh city are spread evenly, so the suggested hotspots are a
/// single city-wide uniform zone.
pub fn grid_city<R: RngExt>(cfg: &GridCityConfig, rng: &mut R) -> City {
    let net = grid_patch(cfg, Point::new(0.0, 0.0), rng);
    let bb = net.bounding_box();
    let center = Point::new((bb.min.x + bb.max.x) / 2.0, (bb.min.y + bb.max.y) / 2.0);
    let radius = bb.width().max(bb.height()) / 2.0;
    City {
        name: "grid".to_string(),
        net,
        hotspots: vec![Hotspot {
            center,
            radius,
            weight: 1.0,
        }],
    }
}

/// Configuration for [`star_city`].
#[derive(Clone, Copy, Debug)]
pub struct StarCityConfig {
    /// Rows/cols of the dense core mesh.
    pub core_size: usize,
    /// Core block spacing, meters.
    pub core_spacing_m: f64,
    /// Number of radial corridors.
    pub spokes: usize,
    /// Nodes per corridor.
    pub spoke_len: usize,
    /// Spacing between corridor nodes, meters.
    pub spoke_spacing_m: f64,
}

impl Default for StarCityConfig {
    fn default() -> Self {
        StarCityConfig {
            core_size: 14,
            core_spacing_m: 150.0,
            spokes: 7,
            spoke_len: 60,
            spoke_spacing_m: 160.0,
        }
    }
}

/// Generates a New York-like star city: dense core, radial corridors with
/// ladder side streets. Hotspots: one strong core zone plus one zone at each
/// corridor end — trips funnel through the center.
pub fn star_city<R: RngExt>(cfg: &StarCityConfig, rng: &mut R) -> City {
    let core_cfg = GridCityConfig {
        rows: cfg.core_size,
        cols: cfg.core_size,
        spacing_m: cfg.core_spacing_m,
        jitter: 0.2,
        removal_fraction: 0.04,
    };
    let core_extent = (cfg.core_size - 1) as f64 * cfg.core_spacing_m;
    let core_origin = Point::new(-core_extent / 2.0, -core_extent / 2.0);
    let mut b = builder_of(grid_patch(&core_cfg, core_origin, rng));

    let mut hotspots = vec![Hotspot {
        center: Point::new(0.0, 0.0),
        radius: core_extent / 2.0,
        weight: 3.0,
    }];

    let core_radius = core_extent / 2.0;
    for s in 0..cfg.spokes {
        let angle = s as f64 / cfg.spokes as f64 * std::f64::consts::TAU;
        let (dx, dy) = (angle.cos(), angle.sin());
        // Attach the corridor to the closest existing node to its base.
        let base_pt = Point::new(dx * core_radius, dy * core_radius);
        let base = nearest_builder_node(&b, base_pt);
        let mut prev = base;
        for i in 1..=cfg.spoke_len {
            let r = core_radius + i as f64 * cfg.spoke_spacing_m;
            let jitter = cfg.spoke_spacing_m * 0.15;
            let p = Point::new(
                dx * r + rng.random_range(-jitter..jitter),
                dy * r + rng.random_range(-jitter..jitter),
            );
            let v = b.add_node(p);
            b.add_two_way(prev, v, dist(&b, prev, v))
                .expect("valid corridor edge");
            // Ladder rib every 3rd corridor node: a short perpendicular
            // street pair hanging off the corridor.
            if i % 3 == 0 {
                let (px, py) = (-dy, dx);
                for side in [-1.0, 1.0] {
                    let q = Point::new(
                        p.x + px * side * cfg.spoke_spacing_m * 0.6,
                        p.y + py * side * cfg.spoke_spacing_m * 0.6,
                    );
                    let u = b.add_node(q);
                    b.add_two_way(v, u, dist(&b, v, u)).expect("rib edge");
                }
            }
            prev = v;
        }
        let end_r = core_radius + cfg.spoke_len as f64 * cfg.spoke_spacing_m;
        hotspots.push(Hotspot {
            center: Point::new(dx * end_r, dy * end_r),
            radius: cfg.spoke_spacing_m * 4.0,
            weight: 1.0,
        });
    }

    City {
        name: "star".to_string(),
        net: b.build().expect("nonempty star city"),
        hotspots,
    }
}

/// Configuration for [`polycentric_city`].
#[derive(Clone, Copy, Debug)]
pub struct PolycentricCityConfig {
    /// Number of sub-centers (≥ 2).
    pub centers: usize,
    /// Rows/cols of each sub-center mesh.
    pub center_size: usize,
    /// Block spacing inside sub-centers, meters.
    pub spacing_m: f64,
    /// Distance of outer sub-centers from the city middle, meters.
    pub layout_radius_m: f64,
}

impl Default for PolycentricCityConfig {
    fn default() -> Self {
        PolycentricCityConfig {
            centers: 5,
            center_size: 16,
            spacing_m: 140.0,
            layout_radius_m: 4200.0,
        }
    }
}

/// Generates a Bangalore-like polycentric city: `centers` mesh patches (one
/// central, the rest on a ring) joined by two-way arterials between adjacent
/// centers and to the middle. Hotspots: one per sub-center.
pub fn polycentric_city<R: RngExt>(cfg: &PolycentricCityConfig, rng: &mut R) -> City {
    assert!(cfg.centers >= 2, "polycentric city needs ≥ 2 centers");
    let patch_cfg = GridCityConfig {
        rows: cfg.center_size,
        cols: cfg.center_size,
        spacing_m: cfg.spacing_m,
        jitter: 0.25,
        removal_fraction: 0.06,
    };
    let extent = (cfg.center_size - 1) as f64 * cfg.spacing_m;

    let mut centers = vec![Point::new(0.0, 0.0)];
    for i in 0..cfg.centers - 1 {
        let angle = i as f64 / (cfg.centers - 1) as f64 * std::f64::consts::TAU;
        centers.push(Point::new(
            angle.cos() * cfg.layout_radius_m,
            angle.sin() * cfg.layout_radius_m,
        ));
    }

    let mut b = RoadNetworkBuilder::new();
    let mut patch_nodes: Vec<Vec<NodeId>> = Vec::new();
    for c in &centers {
        let origin = Point::new(c.x - extent / 2.0, c.y - extent / 2.0);
        let patch = grid_patch(&patch_cfg, origin, rng);
        let offset = b.node_count() as u32;
        let mut ids = Vec::with_capacity(patch.node_count());
        for v in patch.nodes() {
            ids.push(b.add_node(patch.point(v)));
        }
        for v in patch.nodes() {
            for (u, w) in patch.out_edges(v) {
                b.add_edge(NodeId(v.0 + offset), NodeId(u.0 + offset), w)
                    .expect("patch edge");
            }
        }
        patch_nodes.push(ids);
    }

    // Arterials: center-0 to every ring center, plus consecutive ring pairs.
    let mut links: Vec<(usize, usize)> = (1..cfg.centers).map(|i| (0, i)).collect();
    for i in 1..cfg.centers {
        let j = if i + 1 < cfg.centers { i + 1 } else { 1 };
        if j != i {
            links.push((i, j));
        }
    }
    for (i, j) in links {
        let (a, bnode) = closest_pair(&b, &patch_nodes[i], &patch_nodes[j]);
        let w = dist(&b, a, bnode);
        b.add_two_way(a, bnode, w).expect("arterial");
    }

    let hotspots = centers
        .iter()
        .map(|&c| Hotspot {
            center: c,
            radius: extent / 2.0,
            weight: 1.0,
        })
        .collect();

    City {
        name: "polycentric".to_string(),
        net: b.build().expect("nonempty polycentric city"),
        hotspots,
    }
}

/// Configuration for [`multi_region_city`].
#[derive(Clone, Copy, Debug)]
pub struct MultiRegionCityConfig {
    /// Number of city cores (≥ 2), laid out left to right.
    pub regions: usize,
    /// Rows/cols of each core's mesh.
    pub region_size: usize,
    /// Block spacing inside cores, meters.
    pub spacing_m: f64,
    /// Gap between adjacent core bounding boxes, meters (bridged by a
    /// corridor road).
    pub gap_m: f64,
    /// Spacing between corridor nodes, meters.
    pub corridor_spacing_m: f64,
}

impl Default for MultiRegionCityConfig {
    fn default() -> Self {
        MultiRegionCityConfig {
            regions: 4,
            region_size: 12,
            spacing_m: 150.0,
            gap_m: 6_000.0,
            corridor_spacing_m: 400.0,
        }
    }
}

/// Generates a multi-region city: `regions` mesh cores in a row, adjacent
/// cores joined by a single two-way corridor road (a chain of nodes across
/// the gap). The shape is built for **sharded serving**: a spatial
/// partitioner splits cleanly between cores, intra-core trips stay inside
/// one shard, and corridor trips (core `i` → core `j`) become the
/// boundary trajectories that exercise cross-shard replication.
///
/// Hotspots: one per core (equal weight), so a hotspot-pair workload
/// produces a natural mix of intra- and inter-core traffic.
pub fn multi_region_city<R: RngExt>(cfg: &MultiRegionCityConfig, rng: &mut R) -> City {
    assert!(cfg.regions >= 2, "multi-region city needs ≥ 2 regions");
    let patch_cfg = GridCityConfig {
        rows: cfg.region_size,
        cols: cfg.region_size,
        spacing_m: cfg.spacing_m,
        jitter: 0.25,
        removal_fraction: 0.06,
    };
    let extent = (cfg.region_size - 1) as f64 * cfg.spacing_m;
    let pitch = extent + cfg.gap_m;

    let mut b = RoadNetworkBuilder::new();
    let mut region_nodes: Vec<Vec<NodeId>> = Vec::new();
    let mut hotspots = Vec::new();
    for r in 0..cfg.regions {
        let origin = Point::new(r as f64 * pitch, 0.0);
        let patch = grid_patch(&patch_cfg, origin, rng);
        let offset = b.node_count() as u32;
        let mut ids = Vec::with_capacity(patch.node_count());
        for v in patch.nodes() {
            ids.push(b.add_node(patch.point(v)));
        }
        for v in patch.nodes() {
            for (u, w) in patch.out_edges(v) {
                b.add_edge(NodeId(v.0 + offset), NodeId(u.0 + offset), w)
                    .expect("patch edge");
            }
        }
        region_nodes.push(ids);
        hotspots.push(Hotspot {
            center: Point::new(r as f64 * pitch + extent / 2.0, extent / 2.0),
            radius: extent / 2.0,
            weight: 1.0,
        });
    }

    // Corridors: chain the closest node pair of each adjacent core pair.
    for r in 0..cfg.regions - 1 {
        let (a, c) = closest_pair(&b, &region_nodes[r], &region_nodes[r + 1]);
        let (pa, pc) = (builder_point(&b, a), builder_point(&b, c));
        let gap = pa.distance(&pc);
        let hops = (gap / cfg.corridor_spacing_m).ceil().max(1.0) as usize;
        let mut prev = a;
        for h in 1..hops {
            let p = pa.lerp(&pc, h as f64 / hops as f64);
            let v = b.add_node(p);
            b.add_two_way(prev, v, dist(&b, prev, v))
                .expect("corridor edge");
            prev = v;
        }
        b.add_two_way(prev, c, dist(&b, prev, c))
            .expect("corridor closure");
    }

    City {
        name: "multi-region".to_string(),
        net: b.build().expect("nonempty multi-region city"),
        hotspots,
    }
}

/// Configuration for [`ring_radial_city`].
#[derive(Clone, Copy, Debug)]
pub struct RingRadialCityConfig {
    /// Underlying mesh configuration.
    pub mesh: GridCityConfig,
    /// Number of concentric ring roads.
    pub rings: usize,
    /// Number of radial avenues.
    pub radials: usize,
}

impl Default for RingRadialCityConfig {
    fn default() -> Self {
        RingRadialCityConfig {
            mesh: GridCityConfig {
                rows: 48,
                cols: 48,
                spacing_m: 160.0,
                jitter: 0.25,
                removal_fraction: 0.08,
            },
            rings: 4,
            radials: 8,
        }
    }
}

/// Generates a Beijing-like city: a large mesh overlaid with concentric ring
/// roads and radial avenues (direct long edges between mesh nodes near the
/// ring/radial alignments). Hotspots: the center plus zones on the middle
/// ring, mimicking Beijing's polycentric ring structure.
pub fn ring_radial_city<R: RngExt>(cfg: &RingRadialCityConfig, rng: &mut R) -> City {
    let net = grid_patch(&cfg.mesh, Point::new(0.0, 0.0), rng);
    let bb = net.bounding_box();
    let center = Point::new((bb.min.x + bb.max.x) / 2.0, (bb.min.y + bb.max.y) / 2.0);
    let max_r = bb.width().min(bb.height()) / 2.0;

    let mut b = builder_of(net);

    // Ring roads: connect consecutive nodes near each ring circle.
    for ring in 1..=cfg.rings {
        let r = max_r * ring as f64 / (cfg.rings as f64 + 0.5);
        let steps = (r * std::f64::consts::TAU / (cfg.mesh.spacing_m * 2.0)).ceil() as usize;
        let mut prev: Option<NodeId> = None;
        let mut first: Option<NodeId> = None;
        for s in 0..steps {
            let angle = s as f64 / steps as f64 * std::f64::consts::TAU;
            let p = Point::new(center.x + r * angle.cos(), center.y + r * angle.sin());
            let v = nearest_builder_node(&b, p);
            if let Some(u) = prev {
                if u != v {
                    let w = dist(&b, u, v);
                    b.add_two_way(u, v, w).expect("ring edge");
                }
            } else {
                first = Some(v);
            }
            prev = Some(v);
        }
        if let (Some(u), Some(v)) = (prev, first) {
            if u != v {
                let w = dist(&b, u, v);
                b.add_two_way(u, v, w).expect("ring closure");
            }
        }
    }

    // Radial avenues: chains of long edges from center outward.
    for s in 0..cfg.radials {
        let angle = s as f64 / cfg.radials as f64 * std::f64::consts::TAU;
        let mut prev = nearest_builder_node(&b, center);
        let step = cfg.mesh.spacing_m * 3.0;
        let mut r = step;
        while r < max_r {
            let p = Point::new(center.x + r * angle.cos(), center.y + r * angle.sin());
            let v = nearest_builder_node(&b, p);
            if v != prev {
                let w = dist(&b, prev, v);
                b.add_two_way(prev, v, w).expect("radial edge");
                prev = v;
            }
            r += step;
        }
    }

    let mut hotspots = vec![Hotspot {
        center,
        radius: max_r * 0.25,
        weight: 3.0,
    }];
    let mid_r = max_r * 0.6;
    for i in 0..5 {
        let angle = i as f64 / 5.0 * std::f64::consts::TAU;
        hotspots.push(Hotspot {
            center: Point::new(
                center.x + mid_r * angle.cos(),
                center.y + mid_r * angle.sin(),
            ),
            radius: max_r * 0.18,
            weight: 1.0,
        });
    }

    City {
        name: "ring-radial".to_string(),
        net: b.build().expect("nonempty ring-radial city"),
        hotspots,
    }
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

/// Builds a jittered mesh patch with `cfg` whose south-west corner sits at
/// `origin`, returning the largest strongly connected component.
fn grid_patch<R: RngExt>(cfg: &GridCityConfig, origin: Point, rng: &mut R) -> RoadNetwork {
    assert!(cfg.rows >= 2 && cfg.cols >= 2, "mesh needs ≥ 2x2 nodes");
    assert!(
        (0.0..0.5).contains(&cfg.removal_fraction),
        "removal_fraction must be in [0, 0.5)"
    );
    let mut b = RoadNetworkBuilder::with_capacity(cfg.rows * cfg.cols, cfg.rows * cfg.cols * 4);
    let j = cfg.spacing_m * cfg.jitter;
    for y in 0..cfg.rows {
        for x in 0..cfg.cols {
            let jx = if j > 0.0 {
                rng.random_range(-j..j)
            } else {
                0.0
            };
            let jy = if j > 0.0 {
                rng.random_range(-j..j)
            } else {
                0.0
            };
            b.add_node(Point::new(
                origin.x + x as f64 * cfg.spacing_m + jx,
                origin.y + y as f64 * cfg.spacing_m + jy,
            ));
        }
    }
    let id = |x: usize, y: usize| NodeId((y * cfg.cols + x) as u32);
    for y in 0..cfg.rows {
        for x in 0..cfg.cols {
            if x + 1 < cfg.cols && rng.random::<f64>() >= cfg.removal_fraction {
                let (u, v) = (id(x, y), id(x + 1, y));
                let w = dist(&b, u, v);
                b.add_two_way(u, v, w).expect("mesh edge");
            }
            if y + 1 < cfg.rows && rng.random::<f64>() >= cfg.removal_fraction {
                let (u, v) = (id(x, y), id(x, y + 1));
                let w = dist(&b, u, v);
                b.add_two_way(u, v, w).expect("mesh edge");
            }
        }
    }
    let net = b.build().expect("mesh nonempty");
    largest_scc_subgraph(&net)
}

/// Extracts the induced subgraph on the largest strongly connected
/// component, relabeling nodes densely.
pub fn largest_scc_subgraph(net: &RoadNetwork) -> RoadNetwork {
    let scc = strongly_connected_components(net);
    let keep = scc.largest_component();
    if keep.len() == net.node_count() {
        return net.clone();
    }
    let mut map = vec![u32::MAX; net.node_count()];
    let mut b = RoadNetworkBuilder::with_capacity(keep.len(), keep.len() * 4);
    for &v in &keep {
        map[v.index()] = b.add_node(net.point(v)).0;
    }
    for &v in &keep {
        for (u, w) in net.out_edges(v) {
            if map[u.index()] != u32::MAX {
                b.add_edge(NodeId(map[v.index()]), NodeId(map[u.index()]), w)
                    .expect("induced edge");
            }
        }
    }
    b.build().expect("largest SCC nonempty")
}

/// Reopens a frozen network for further construction.
fn builder_of(net: RoadNetwork) -> RoadNetworkBuilder {
    let mut b = RoadNetworkBuilder::with_capacity(net.node_count(), net.edge_count());
    for v in net.nodes() {
        b.add_node(net.point(v));
    }
    for v in net.nodes() {
        for (u, w) in net.out_edges(v) {
            b.add_edge(v, u, w).expect("copied edge");
        }
    }
    b
}

/// Euclidean distance between two builder nodes, floored at 1 m so edge
/// weights stay valid even when jitter places nodes on top of each other.
fn dist(b: &RoadNetworkBuilder, u: NodeId, v: NodeId) -> f64 {
    builder_point(b, u).distance(&builder_point(b, v)).max(1.0)
}

/// Nearest builder node to `p` by linear scan (generation-time only).
fn nearest_builder_node(b: &RoadNetworkBuilder, p: Point) -> NodeId {
    let mut best = (NodeId(0), f64::INFINITY);
    for i in 0..b.node_count() {
        let v = NodeId(i as u32);
        let d = builder_point(b, v).distance_sq(&p);
        if d < best.1 {
            best = (v, d);
        }
    }
    best.0
}

/// Closest pair of nodes between two groups (squared-distance scan).
fn closest_pair(b: &RoadNetworkBuilder, xs: &[NodeId], ys: &[NodeId]) -> (NodeId, NodeId) {
    let mut best = (xs[0], ys[0], f64::INFINITY);
    for &x in xs {
        let px = builder_point(b, x);
        for &y in ys {
            let d = px.distance_sq(&builder_point(b, y));
            if d < best.2 {
                best = (x, y, d);
            }
        }
    }
    (best.0, best.1)
}

fn builder_point(b: &RoadNetworkBuilder, v: NodeId) -> Point {
    b.point(v).expect("node exists in builder")
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclus_roadnet::is_strongly_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_city_is_strongly_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let city = grid_city(
            &GridCityConfig {
                rows: 12,
                cols: 12,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(is_strongly_connected(&city.net));
        assert!(city.net.node_count() > 100);
        assert_eq!(city.hotspots.len(), 1);
    }

    #[test]
    fn grid_city_is_deterministic() {
        let cfg = GridCityConfig {
            rows: 8,
            cols: 8,
            ..Default::default()
        };
        let a = grid_city(&cfg, &mut StdRng::seed_from_u64(5));
        let b = grid_city(&cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.net.node_count(), b.net.node_count());
        assert_eq!(a.net.edge_count(), b.net.edge_count());
        let c = grid_city(&cfg, &mut StdRng::seed_from_u64(6));
        // Different seed ⇒ (almost surely) different jitter, possibly same counts.
        assert_eq!(a.net.node_count() > 0, c.net.node_count() > 0);
    }

    #[test]
    fn star_city_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = StarCityConfig {
            core_size: 6,
            spokes: 4,
            spoke_len: 10,
            ..Default::default()
        };
        let city = star_city(&cfg, &mut rng);
        assert!(is_strongly_connected(&city.net));
        // Core + spokes + one hotspot per spoke end + core hotspot.
        assert_eq!(city.hotspots.len(), 5);
        // Spoke ends are far from the core.
        let bb = city.net.bounding_box();
        assert!(bb.width() > cfg.spoke_len as f64 * cfg.spoke_spacing_m);
    }

    #[test]
    fn polycentric_city_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = PolycentricCityConfig {
            centers: 4,
            center_size: 6,
            ..Default::default()
        };
        let city = polycentric_city(&cfg, &mut rng);
        assert!(is_strongly_connected(&city.net));
        assert_eq!(city.hotspots.len(), 4);
    }

    #[test]
    fn multi_region_city_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = MultiRegionCityConfig {
            regions: 3,
            region_size: 6,
            ..Default::default()
        };
        let city = multi_region_city(&cfg, &mut rng);
        assert!(is_strongly_connected(&city.net));
        assert_eq!(city.hotspots.len(), 3);
        // Cores sit far apart: the bounding box spans ≥ 2 gaps.
        let bb = city.net.bounding_box();
        assert!(bb.width() > 2.0 * cfg.gap_m);
        // Deterministic given the seed.
        let again = multi_region_city(&cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(city.net.node_count(), again.net.node_count());
        assert_eq!(city.net.edge_count(), again.net.edge_count());
    }

    #[test]
    fn ring_radial_city_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = RingRadialCityConfig {
            mesh: GridCityConfig {
                rows: 14,
                cols: 14,
                ..Default::default()
            },
            rings: 2,
            radials: 4,
        };
        let city = ring_radial_city(&cfg, &mut rng);
        assert!(is_strongly_connected(&city.net));
        assert!(city.hotspots.len() >= 2);
        // Ring/radial overlay adds edges on top of the mesh.
        let mesh_only = grid_patch(
            &cfg.mesh,
            Point::new(0.0, 0.0),
            &mut StdRng::seed_from_u64(4),
        );
        assert!(city.net.edge_count() > mesh_only.edge_count());
    }

    #[test]
    fn largest_scc_extraction() {
        // Two islands: triangle (0,1,2) and pair (3,4).
        let mut b = RoadNetworkBuilder::new();
        for i in 0..5 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            b.add_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        b.add_two_way(NodeId(3), NodeId(4), 1.0).unwrap();
        let net = b.build().unwrap();
        let sub = largest_scc_subgraph(&net);
        assert_eq!(sub.node_count(), 3);
        assert!(is_strongly_connected(&sub));
    }
}
