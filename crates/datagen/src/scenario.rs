//! Ready-made evaluation scenarios mirroring the paper's datasets (Table 6).
//!
//! | Paper dataset | Preset | Topology | Default size (scale = 1) |
//! |---------------|--------|----------|--------------------------|
//! | Beijing-Small (1k traj, 50 sites) | [`beijing_small`] | mesh | ~400 nodes, 1,000 traj, 50 sites |
//! | Beijing (123k traj, 270k sites)   | [`beijing_like`]  | ring-radial | ~25k nodes, 20k traj, all-node sites |
//! | New York (9,950 traj)             | [`new_york_like`] | star | ~17k nodes, 9,950 traj |
//! | Atlanta (9,950 traj)              | [`atlanta_like`]  | mesh | ~19k nodes, 9,950 traj |
//! | Bangalore (9,950 traj)            | [`bangalore_like`]| polycentric | ~3k nodes, 9,950 traj |
//!
//! The real corpora are not redistributable; these presets generate
//! topology-matched synthetic equivalents, scaled so that every experiment
//! of the benchmark harness completes on one machine (see DESIGN.md §5/§7).
//! The `scale` knob multiplies both node and trajectory counts; `--full`
//! in the harness requests paper scale.

use netclus_roadnet::{GridIndex, NodeId, RoadNetwork};
use netclus_trajectory::TrajectorySet;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::city::{
    grid_city, multi_region_city, polycentric_city, ring_radial_city, star_city, City,
    GridCityConfig, Hotspot, MultiRegionCityConfig, PolycentricCityConfig, RingRadialCityConfig,
    StarCityConfig,
};
use crate::sites::{select_sites, SiteSelection};
use crate::workload::{WorkloadConfig, WorkloadGenerator};

/// Scenario sizing and seeding knobs.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Master RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Multiplies node and trajectory counts (1.0 = harness default scale).
    pub scale: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0x4E45_5443,
            scale: 1.0,
        }
    }
}

impl ScenarioConfig {
    /// A scenario config with the default seed and the given scale.
    pub fn with_scale(scale: f64) -> Self {
        ScenarioConfig {
            scale,
            ..Default::default()
        }
    }
}

/// A fully materialized evaluation scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable label (e.g. `"beijing-like"`).
    pub name: String,
    /// The road network.
    pub net: RoadNetwork,
    /// Spatial index over the network vertices.
    pub grid: GridIndex,
    /// The trajectory corpus `T`.
    pub trajectories: TrajectorySet,
    /// The candidate sites `S`, sorted by node id.
    pub sites: Vec<NodeId>,
    /// The hotspots the workload was drawn from.
    pub hotspots: Vec<Hotspot>,
}

impl Scenario {
    /// `m`: number of trajectories.
    pub fn trajectory_count(&self) -> usize {
        self.trajectories.len()
    }

    /// `n`: number of candidate sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// One-line summary for harness logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: N={} nodes, |E|={}, m={} trajectories, n={} sites",
            self.name,
            self.net.node_count(),
            self.net.edge_count(),
            self.trajectory_count(),
            self.site_count()
        )
    }
}

/// Side length of a mesh targeting ≈ `nodes` vertices.
fn mesh_dim(nodes: f64) -> usize {
    (nodes.max(64.0).sqrt().round() as usize).max(8)
}

fn materialize(
    name: &str,
    city: City,
    traj_count: usize,
    site_selection: SiteSelection,
    grid_cell_m: f64,
    workload: WorkloadConfig,
    seed: u64,
) -> Scenario {
    let grid = GridIndex::build(&city.net, grid_cell_m);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5745_4C4C);
    let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
    let cfg = WorkloadConfig {
        count: traj_count,
        ..workload
    };
    let trajs = gen.generate(&cfg, &mut rng);
    let trajectories = TrajectorySet::from_trajectories(city.net.node_count(), trajs);
    let mut site_rng = StdRng::seed_from_u64(seed ^ 0x5349_5445);
    let sites = select_sites(&city.net, site_selection, &mut site_rng);
    Scenario {
        name: name.to_string(),
        net: city.net,
        grid,
        trajectories,
        sites,
        hotspots: city.hotspots,
    }
}

/// Beijing-Small analogue (paper Sec. 8.1): a small fixed-area mesh with
/// 1,000 trajectories and 50 random candidate sites — small enough for the
/// exact solver of Fig. 4.
pub fn beijing_small(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let city = grid_city(
        &GridCityConfig {
            rows: 20,
            cols: 20,
            spacing_m: 150.0,
            jitter: 0.25,
            removal_fraction: 0.06,
        },
        &mut rng,
    );
    materialize(
        "beijing-small",
        city,
        1_000,
        SiteSelection::Random(50),
        250.0,
        WorkloadConfig::default(),
        seed,
    )
}

/// Beijing-like scenario: ring-radial topology, ≈ `25k·scale` nodes,
/// `20k·scale` trajectories, every node a candidate site.
pub fn beijing_like(cfg: &ScenarioConfig) -> Scenario {
    let dim = mesh_dim(25_000.0 * cfg.scale);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let city = ring_radial_city(
        &RingRadialCityConfig {
            mesh: GridCityConfig {
                rows: dim,
                cols: dim,
                spacing_m: 160.0,
                jitter: 0.25,
                removal_fraction: 0.08,
            },
            rings: 4,
            radials: 8,
        },
        &mut rng,
    );
    let traj_count = (20_000.0 * cfg.scale).round().max(16.0) as usize;
    materialize(
        "beijing-like",
        city,
        traj_count,
        SiteSelection::AllNodes,
        320.0,
        WorkloadConfig::default(),
        cfg.seed,
    )
}

/// New York-like scenario: star topology (paper Fig. 11 "NYK"); most trips
/// funnel through the core.
pub fn new_york_like(cfg: &ScenarioConfig) -> Scenario {
    // Star parameters sized so core + spokes ≈ 17k·scale nodes at scale 1.
    let core = mesh_dim(6_000.0 * cfg.scale);
    let spoke_len = ((11_000.0 * cfg.scale / 7.0) / (1.0 + 2.0 / 3.0))
        .round()
        .max(6.0) as usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4E59_4B00);
    let city = star_city(
        &StarCityConfig {
            core_size: core,
            core_spacing_m: 140.0,
            spokes: 7,
            spoke_len,
            spoke_spacing_m: 170.0,
        },
        &mut rng,
    );
    let traj_count = (9_950.0 * cfg.scale).round().max(16.0) as usize;
    materialize(
        "new-york-like",
        city,
        traj_count,
        SiteSelection::AllNodes,
        300.0,
        WorkloadConfig {
            uniform_fraction: 0.1,
            ..Default::default()
        },
        cfg.seed ^ 0x4E59_4B00,
    )
}

/// Atlanta-like scenario: uniform mesh topology (paper Fig. 11 "ATL");
/// trips spread over the whole city, yielding the lowest coverage utility.
pub fn atlanta_like(cfg: &ScenarioConfig) -> Scenario {
    let dim = mesh_dim(19_000.0 * cfg.scale);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4154_4C00);
    let city = grid_city(
        &GridCityConfig {
            rows: dim,
            cols: dim,
            spacing_m: 170.0,
            jitter: 0.3,
            removal_fraction: 0.10,
        },
        &mut rng,
    );
    let traj_count = (9_950.0 * cfg.scale).round().max(16.0) as usize;
    materialize(
        "atlanta-like",
        city,
        traj_count,
        SiteSelection::AllNodes,
        340.0,
        WorkloadConfig {
            uniform_fraction: 0.9,
            ..Default::default()
        },
        cfg.seed ^ 0x4154_4C00,
    )
}

/// Bangalore-like scenario: polycentric topology (paper Fig. 11 "BNG") on a
/// much smaller network, concentrating trips between sub-centers.
pub fn bangalore_like(cfg: &ScenarioConfig) -> Scenario {
    let center_size = mesh_dim(3_000.0 * cfg.scale / 5.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x424E_4700);
    let city = polycentric_city(
        &PolycentricCityConfig {
            centers: 5,
            center_size,
            spacing_m: 150.0,
            layout_radius_m: 3_800.0,
        },
        &mut rng,
    );
    let traj_count = (9_950.0 * cfg.scale).round().max(16.0) as usize;
    materialize(
        "bangalore-like",
        city,
        traj_count,
        SiteSelection::AllNodes,
        300.0,
        WorkloadConfig {
            uniform_fraction: 0.1,
            ..Default::default()
        },
        cfg.seed ^ 0x424E_4700,
    )
}

/// Multi-region scenario for sharded serving: `regions` distinct city
/// cores (≈ `1500·scale` nodes each) joined by inter-city corridors, with
/// one hotspot per core. Endpoint pairs are drawn independently across
/// hotspots, so roughly `(regions−1)/regions` of the trips cross a
/// corridor — the boundary trajectories a region partitioner must
/// replicate.
pub fn multi_region(cfg: &ScenarioConfig, regions: usize) -> Scenario {
    let region_size = mesh_dim(1_500.0 * cfg.scale).max(6);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4D52_4547);
    let city = multi_region_city(
        &MultiRegionCityConfig {
            regions,
            region_size,
            spacing_m: 150.0,
            gap_m: 5_000.0,
            corridor_spacing_m: 400.0,
        },
        &mut rng,
    );
    let traj_count = (4_000.0 * cfg.scale).round().max(32.0) as usize;
    materialize(
        &format!("multi-region-{regions}"),
        city,
        traj_count,
        SiteSelection::AllNodes,
        300.0,
        WorkloadConfig {
            uniform_fraction: 0.05,
            waypoint_probability: 0.2,
            ..Default::default()
        },
        cfg.seed ^ 0x4D52_4547,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclus_roadnet::is_strongly_connected;

    fn tiny() -> ScenarioConfig {
        ScenarioConfig {
            seed: 7,
            scale: 0.02,
        }
    }

    #[test]
    fn beijing_small_matches_paper_shape() {
        let s = beijing_small(3);
        assert_eq!(s.trajectory_count(), 1000);
        assert_eq!(s.site_count(), 50);
        assert!(is_strongly_connected(&s.net));
        assert!(s.summary().contains("beijing-small"));
    }

    #[test]
    fn beijing_like_scales() {
        let s = beijing_like(&tiny());
        assert!(s.net.node_count() >= 300, "got {}", s.net.node_count());
        assert_eq!(s.trajectory_count(), 400);
        assert_eq!(s.site_count(), s.net.node_count());
        assert!(is_strongly_connected(&s.net));
    }

    #[test]
    fn city_presets_are_distinct_topologies() {
        let cfg = tiny();
        let ny = new_york_like(&cfg);
        let atl = atlanta_like(&cfg);
        let bng = bangalore_like(&cfg);
        for s in [&ny, &atl, &bng] {
            assert!(is_strongly_connected(&s.net), "{} disconnected", s.name);
            assert!(s.trajectory_count() > 0);
        }
        // Bangalore is by far the smallest network (paper Table 6).
        assert!(bng.net.node_count() < atl.net.node_count());
        assert!(bng.net.node_count() < ny.net.node_count());
    }

    #[test]
    fn multi_region_has_cross_region_traffic() {
        use netclus_roadnet::RegionPartition;
        let s = multi_region(&tiny(), 4);
        assert!(is_strongly_connected(&s.net));
        assert_eq!(s.hotspots.len(), 4);
        // A 4-way spatial partition must see a healthy share of
        // shard-crossing (boundary) trajectories.
        let partition = RegionPartition::build(&s.net, 4);
        let mut boundary = 0usize;
        for (_, t) in s.trajectories.iter() {
            let mut shards: Vec<u32> = t.nodes().iter().map(|&v| partition.shard_of(v)).collect();
            shards.sort_unstable();
            shards.dedup();
            if shards.len() >= 2 {
                boundary += 1;
            }
        }
        let frac = boundary as f64 / s.trajectory_count() as f64;
        assert!(
            frac > 0.2,
            "expected plenty of corridor trips, got {boundary}/{}",
            s.trajectory_count()
        );
        assert!(frac < 0.95, "intra-core trips vanished ({frac:.2})");
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = beijing_small(11);
        let b = beijing_small(11);
        assert_eq!(a.net.node_count(), b.net.node_count());
        assert_eq!(a.sites, b.sites);
        assert_eq!(a.trajectory_count(), b.trajectory_count());
        let ta: Vec<_> = a.trajectories.iter().map(|(_, t)| t.clone()).collect();
        let tb: Vec<_> = b.trajectories.iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(ta, tb);
    }
}
