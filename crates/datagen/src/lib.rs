//! # netclus-datagen — synthetic datasets for the NetClus evaluation
//!
//! The paper evaluates on the T-Drive Beijing taxi corpus and three
//! MNTG-generated city workloads, none of which are redistributable. This
//! crate generates topology-matched synthetic substitutes (DESIGN.md §5):
//!
//! * [`city`] — road-network generators: mesh (Atlanta-like), star
//!   (New York-like), polycentric (Bangalore-like), ring-radial
//!   (Beijing-like);
//! * [`workload`] — hotspot-based trip generation with waypoint deviations,
//!   length-class targeting (Fig. 12), and GPS-trace synthesis for the
//!   map-matching pipeline;
//! * [`gps_stream`] — Poisson-arrival raw GPS streams with per-source
//!   sequence numbers, the input of the `netclus-ingest` write path;
//! * [`sites`] — candidate-site selection and cost/capacity assignment
//!   (Sec. 7 extensions);
//! * [`scenario`] — one preset per paper dataset (Table 6), scaled to run
//!   on a single machine;
//! * [`queries`] — TOPS query-stream generation (open/closed-loop arrival
//!   mixes with dashboard-style repetition) for the serving layer.
//!
//! All generation is deterministic given the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod city;
pub mod gps_stream;
pub mod queries;
pub mod scenario;
pub mod sites;
pub mod workload;

pub use city::{
    grid_city, multi_region_city, polycentric_city, ring_radial_city, star_city, City,
    GridCityConfig, Hotspot, MultiRegionCityConfig, PolycentricCityConfig, RingRadialCityConfig,
    StarCityConfig,
};
pub use gps_stream::{generate_gps_stream, GpsStreamConfig, GpsStreamEvent};
pub use queries::{
    generate_query_workload, ArrivalProcess, QueryKind, QueryWorkloadConfig, TimedQuery,
};
pub use scenario::{
    atlanta_like, bangalore_like, beijing_like, beijing_small, multi_region, new_york_like,
    Scenario, ScenarioConfig,
};
pub use sites::{assign_capacities_normal, assign_costs_normal, select_sites, SiteSelection};
pub use workload::{gaussian, synthesize_gps, WorkloadConfig, WorkloadGenerator};
