//! Deterministic GPS stream synthesis for the ingest pipeline.
//!
//! Where [`workload`](crate::workload) generates finished trajectories,
//! this module generates the *raw input* the write path consumes: a
//! time-ordered stream of noisy GPS traces with *Poisson arrivals* over
//! the road network, attributed to a fleet of sources with per-source
//! sequence numbers — exactly the shape `netclus-ingest` frames expect.
//!
//! Everything is a pure function of the explicit `u64` seed: two calls
//! with the same network, config and seed produce **identical** event
//! vectors (and therefore byte-identical encoded streams), which is what
//! makes ingest benchmarks and crash-recovery tests reproducible.

use netclus_roadnet::{GridIndex, RoadNetwork};
use netclus_trajectory::{GpsPoint, GpsTrace, Trajectory};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::city::Hotspot;
use crate::workload::{synthesize_gps, WorkloadConfig, WorkloadGenerator};

/// GPS-stream shape knobs.
#[derive(Clone, Debug)]
pub struct GpsStreamConfig {
    /// Number of trips (stream events) to generate.
    pub trips: usize,
    /// Poisson arrival rate of trip starts, per second of stream time.
    pub rate_per_sec: f64,
    /// Emitting sources (vehicles); events round-robin across them and
    /// each source numbers its events sequentially from 0.
    pub sources: u32,
    /// Vehicle speed along the route, m/s.
    pub speed_mps: f64,
    /// GPS sampling interval, seconds.
    pub sample_interval_s: f64,
    /// Isotropic GPS noise σ, meters.
    pub noise_sigma_m: f64,
    /// Route-shape configuration (hotspot mix, waypoint deviations, …);
    /// `count` is ignored in favor of `trips`.
    pub workload: WorkloadConfig,
}

impl Default for GpsStreamConfig {
    fn default() -> Self {
        GpsStreamConfig {
            trips: 1_000,
            rate_per_sec: 1.0,
            sources: 16,
            speed_mps: 10.0,
            sample_interval_s: 5.0,
            noise_sigma_m: 12.0,
            workload: WorkloadConfig::default(),
        }
    }
}

/// One stream event: a trip's raw trace plus its provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct GpsStreamEvent {
    /// Emitting source (vehicle) id.
    pub source: u32,
    /// Per-source sequence number, from 0.
    pub seq: u64,
    /// Stream-time offset of the trip start, seconds.
    pub start_time_s: f64,
    /// The noisy trace; fix timestamps are absolute stream time
    /// (`start_time_s` + time along the trip).
    pub trace: GpsTrace,
    /// The ground-truth route the trace was synthesized from (for
    /// match-quality evaluation; the ingest pipeline never sees it).
    pub route: Trajectory,
}

/// Generates a GPS stream over `net`. Deterministic in `seed`: equal
/// inputs give equal (bit-for-bit) outputs.
pub fn generate_gps_stream(
    net: &RoadNetwork,
    grid: &GridIndex,
    hotspots: &[Hotspot],
    cfg: &GpsStreamConfig,
    seed: u64,
) -> Vec<GpsStreamEvent> {
    assert!(cfg.rate_per_sec > 0.0, "arrival rate must be positive");
    assert!(cfg.sources > 0, "need at least one source");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = WorkloadGenerator::new(net, grid, hotspots);
    let routes = gen.generate(
        &WorkloadConfig {
            count: cfg.trips,
            ..cfg.workload.clone()
        },
        &mut rng,
    );

    let mut events = Vec::with_capacity(routes.len());
    let mut clock_s = 0.0f64;
    let mut next_seq = vec![0u64; cfg.sources as usize];
    for (i, route) in routes.into_iter().enumerate() {
        // Exponential inter-arrival times → Poisson arrivals.
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        clock_s += -u.ln() / cfg.rate_per_sec;
        let raw = synthesize_gps(
            net,
            &route,
            cfg.speed_mps,
            cfg.sample_interval_s,
            cfg.noise_sigma_m,
            &mut rng,
        );
        let trace = GpsTrace::new(
            raw.points()
                .iter()
                .map(|p| GpsPoint::new(p.pos, p.t + clock_s))
                .collect(),
        );
        let source = (i as u32) % cfg.sources;
        let seq = next_seq[source as usize];
        next_seq[source as usize] += 1;
        events.push(GpsStreamEvent {
            source,
            seq,
            start_time_s: clock_s,
            trace,
            route,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{grid_city, GridCityConfig};

    fn city() -> crate::city::City {
        let mut rng = StdRng::seed_from_u64(21);
        grid_city(
            &GridCityConfig {
                rows: 12,
                cols: 12,
                spacing_m: 200.0,
                jitter: 0.15,
                removal_fraction: 0.0,
            },
            &mut rng,
        )
    }

    fn stream(seed: u64, trips: usize) -> Vec<GpsStreamEvent> {
        let c = city();
        let grid = GridIndex::build(&c.net, 300.0);
        generate_gps_stream(
            &c.net,
            &grid,
            &c.hotspots,
            &GpsStreamConfig {
                trips,
                rate_per_sec: 0.05,
                sources: 4,
                ..Default::default()
            },
            seed,
        )
    }

    /// The determinism contract: same seed → bit-identical streams;
    /// different seed → different streams.
    #[test]
    fn same_seed_gives_byte_identical_streams() {
        let a = stream(0xDEAD_BEEF, 30);
        let b = stream(0xDEAD_BEEF, 30);
        assert_eq!(a, b);
        // Bit-for-bit, not just approximately: compare the raw f64 bits
        // of every fix.
        for (ea, eb) in a.iter().zip(&b) {
            assert_eq!(ea.start_time_s.to_bits(), eb.start_time_s.to_bits());
            for (pa, pb) in ea.trace.points().iter().zip(eb.trace.points()) {
                assert_eq!(pa.pos.x.to_bits(), pb.pos.x.to_bits());
                assert_eq!(pa.pos.y.to_bits(), pb.pos.y.to_bits());
                assert_eq!(pa.t.to_bits(), pb.t.to_bits());
            }
        }
        let c = stream(0xDEAD_BEF0, 30);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn arrivals_are_increasing_and_sequences_dense() {
        let events = stream(7, 40);
        assert_eq!(events.len(), 40);
        for w in events.windows(2) {
            assert!(
                w[0].start_time_s < w[1].start_time_s,
                "arrivals not increasing"
            );
        }
        // Per-source sequence numbers are dense from 0, in stream order.
        let mut expected = std::collections::HashMap::new();
        for e in &events {
            let seq = expected.entry(e.source).or_insert(0u64);
            assert_eq!(e.seq, *seq, "source {} skipped a sequence", e.source);
            *seq += 1;
        }
        assert_eq!(expected.len(), 4, "all sources emit");
    }

    #[test]
    fn trace_times_are_absolute_stream_time() {
        let events = stream(9, 10);
        for e in &events {
            let first = e.trace.points().first().unwrap();
            assert_eq!(first.t, e.start_time_s);
            assert!(e.trace.points().windows(2).all(|w| w[0].t <= w[1].t));
        }
    }

    #[test]
    fn mean_interarrival_tracks_rate() {
        let events = stream(11, 200);
        let total = events.last().unwrap().start_time_s;
        let mean = total / events.len() as f64;
        // rate 0.05/s → mean gap 20 s; Box–Muller-free exponential
        // sampling should land well within ±40%.
        assert!((12.0..28.0).contains(&mean), "mean inter-arrival {mean}");
    }
}
