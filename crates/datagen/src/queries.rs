//! Query-workload generation for the serving layer.
//!
//! The paper evaluates one query at a time; a serving system sees a
//! *stream* with arrival structure. This module generates deterministic
//! TOPS query mixes over the existing city scenarios:
//!
//! * **Open-loop** arrivals: Poisson process at a configured rate — each
//!   request carries an absolute offset `at` from stream start; the driver
//!   fires it at that time regardless of completions (models internet
//!   traffic, exposes queueing).
//! * **Closed-loop** arrivals: a fixed number of clients, each issuing its
//!   next request after the previous answer plus a think time (models
//!   interactive sessions, self-throttles).
//!
//! Parameter mixes are drawn from small grids (popular `k`s, a τ lattice)
//! with a configurable fraction of **repeated** queries, matching the
//! skew of dashboard-style traffic — this is what makes a result cache
//! worth having.

use std::time::Duration;

use netclus::{PreferenceFunction, TopsQuery};
use rand::RngExt;

/// How requests arrive at the service.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_per_sec`, independent of completions.
    Open {
        /// Mean arrival rate (requests per second).
        rate_per_sec: f64,
    },
    /// `clients` loops of request → answer → think.
    Closed {
        /// Concurrent clients.
        clients: usize,
        /// Think time between an answer and the client's next request.
        think_time: Duration,
    },
}

/// One solver-variant choice in the generated mix (kept service-agnostic:
/// the driver maps it onto its own request type).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Inc-Greedy over the index.
    Greedy,
    /// FM-sketch greedy with `copies` sketch copies.
    Fm {
        /// Sketch copies `f`.
        copies: usize,
    },
}

/// One request in the stream.
#[derive(Clone, Copy, Debug)]
pub struct TimedQuery {
    /// Offset from stream start (meaningful for open-loop arrivals;
    /// zero under closed loop, where pacing is completion-driven).
    pub at: Duration,
    /// The TOPS query.
    pub query: TopsQuery,
    /// Solver variant.
    pub kind: QueryKind,
}

/// Query-mix and arrival configuration.
#[derive(Clone, Debug)]
pub struct QueryWorkloadConfig {
    /// Number of requests to generate.
    pub count: usize,
    /// Popular `k` values, sampled uniformly.
    pub k_choices: Vec<usize>,
    /// τ lattice bounds in meters; values are drawn on `tau_step`
    /// multiples so repeats collide exactly (cacheable traffic).
    pub tau_min: f64,
    /// Upper τ bound (inclusive lattice end).
    pub tau_max: f64,
    /// Lattice step for τ.
    pub tau_step: f64,
    /// Fraction of queries using a graded (linear-decay) preference.
    pub graded_fraction: f64,
    /// Fraction of *binary* queries answered by the FM variant.
    pub fm_fraction: f64,
    /// FM sketch copies for FM queries.
    pub fm_copies: usize,
    /// Fraction of requests that repeat an earlier request verbatim
    /// (dashboard skew; drives cache hits).
    pub repeat_fraction: f64,
    /// Arrival process.
    pub arrival: ArrivalProcess,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig {
            count: 1_000,
            k_choices: vec![1, 3, 5, 10],
            tau_min: 400.0,
            tau_max: 3_200.0,
            tau_step: 200.0,
            graded_fraction: 0.2,
            fm_fraction: 0.3,
            fm_copies: 30,
            repeat_fraction: 0.4,
            arrival: ArrivalProcess::Open {
                rate_per_sec: 500.0,
            },
        }
    }
}

/// Generates a deterministic query stream for `cfg`.
///
/// Open-loop offsets are exponential inter-arrivals; closed-loop streams
/// carry zero offsets (the driver paces by completion + think time).
pub fn generate_query_workload<R: RngExt>(
    cfg: &QueryWorkloadConfig,
    rng: &mut R,
) -> Vec<TimedQuery> {
    assert!(!cfg.k_choices.is_empty(), "need at least one k choice");
    assert!(
        cfg.tau_min > 0.0 && cfg.tau_max >= cfg.tau_min && cfg.tau_step > 0.0,
        "need 0 < τ_min ≤ τ_max and a positive step"
    );
    let steps = ((cfg.tau_max - cfg.tau_min) / cfg.tau_step).floor() as usize + 1;
    let mut out: Vec<TimedQuery> = Vec::with_capacity(cfg.count);
    let mut clock = Duration::ZERO;
    for _ in 0..cfg.count {
        let at = match cfg.arrival {
            ArrivalProcess::Open { rate_per_sec } => {
                let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                clock += Duration::from_secs_f64(-u.ln() / rate_per_sec.max(1e-9));
                clock
            }
            ArrivalProcess::Closed { .. } => Duration::ZERO,
        };
        let (query, kind) = if !out.is_empty() && rng.random::<f64>() < cfg.repeat_fraction {
            let earlier = out[rng.random_range(0..out.len())];
            (earlier.query, earlier.kind)
        } else {
            let k = cfg.k_choices[rng.random_range(0..cfg.k_choices.len())];
            let tau = cfg.tau_min + cfg.tau_step * rng.random_range(0..steps) as f64;
            let preference = if rng.random::<f64>() < cfg.graded_fraction {
                PreferenceFunction::LinearDecay
            } else {
                PreferenceFunction::Binary
            };
            let kind = if preference.is_binary() && rng.random::<f64>() < cfg.fm_fraction {
                QueryKind::Fm {
                    copies: cfg.fm_copies,
                }
            } else {
                QueryKind::Greedy
            };
            (TopsQuery { k, tau, preference }, kind)
        };
        out.push(TimedQuery { at, query, kind });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generate(cfg: &QueryWorkloadConfig, seed: u64) -> Vec<TimedQuery> {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_query_workload(cfg, &mut rng)
    }

    #[test]
    fn deterministic_and_sized() {
        let cfg = QueryWorkloadConfig::default();
        let a = generate(&cfg, 9);
        let b = generate(&cfg, 9);
        assert_eq!(a.len(), 1_000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.query.k, y.query.k);
            assert_eq!(x.query.tau, y.query.tau);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn open_loop_offsets_are_nondecreasing_at_roughly_the_rate() {
        let cfg = QueryWorkloadConfig {
            count: 4_000,
            arrival: ArrivalProcess::Open {
                rate_per_sec: 1_000.0,
            },
            ..Default::default()
        };
        let qs = generate(&cfg, 3);
        for w in qs.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let total = qs.last().unwrap().at.as_secs_f64();
        // 4000 arrivals at 1 kHz ≈ 4 s; allow wide statistical slack.
        assert!((2.0..8.0).contains(&total), "stream spans {total}s");
    }

    #[test]
    fn parameters_come_from_the_configured_lattice() {
        let cfg = QueryWorkloadConfig::default();
        let qs = generate(&cfg, 5);
        let mut fm = 0usize;
        let mut graded = 0usize;
        for q in &qs {
            assert!(cfg.k_choices.contains(&q.query.k));
            assert!(q.query.tau >= cfg.tau_min && q.query.tau <= cfg.tau_max);
            let offset = (q.query.tau - cfg.tau_min) / cfg.tau_step;
            assert!((offset - offset.round()).abs() < 1e-9, "off-lattice τ");
            if matches!(q.kind, QueryKind::Fm { .. }) {
                fm += 1;
                assert!(q.query.preference.is_binary());
            }
            if q.query.preference == PreferenceFunction::LinearDecay {
                graded += 1;
            }
        }
        assert!(fm > 0 && graded > 0);
    }

    #[test]
    fn repeats_create_exact_duplicates() {
        let cfg = QueryWorkloadConfig {
            count: 500,
            repeat_fraction: 0.6,
            ..Default::default()
        };
        let qs = generate(&cfg, 21);
        let mut seen = std::collections::HashSet::new();
        let mut dups = 0usize;
        for q in &qs {
            let key = (
                q.query.k,
                q.query.tau.to_bits(),
                q.query.preference.is_binary(),
                q.kind,
            );
            if !seen.insert(key) {
                dups += 1;
            }
        }
        assert!(dups >= 150, "repeat mix too thin: {dups}");
    }

    #[test]
    #[should_panic(expected = "k choice")]
    fn empty_k_choices_rejected() {
        let cfg = QueryWorkloadConfig {
            k_choices: vec![],
            ..Default::default()
        };
        generate(&cfg, 1);
    }
}
