//! Synthetic trajectory workloads.
//!
//! Substitutes the paper's T-Drive taxi corpus and MNTG traffic traces:
//! trips are sampled between hotspot zones (or uniformly), routed on the
//! network with optional waypoint deviations — real commuters do *not*
//! follow exact shortest paths, a point the paper stresses against prior
//! work — and optionally filtered into route-length classes (Fig. 12).
//! A GPS synthesizer turns generated routes back into noisy traces so the
//! full map-matching pipeline (paper Fig. 2) can be exercised end to end.

use netclus_roadnet::{DijkstraEngine, GridIndex, NodeId, Point, RoadNetwork};
use netclus_trajectory::{GpsPoint, GpsTrace, Trajectory};
use rand::RngExt;

use crate::city::Hotspot;

/// Configuration for trajectory workload generation.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of trajectories to generate.
    pub count: usize,
    /// Fraction of trip endpoints drawn uniformly from the whole extent
    /// instead of from hotspots (0 = pure hotspot traffic).
    pub uniform_fraction: f64,
    /// Probability that a trip routes via a random intermediate waypoint,
    /// deviating from the pure shortest path.
    pub waypoint_probability: f64,
    /// Radius around the OD midpoint from which waypoints are drawn,
    /// as a fraction of the OD distance.
    pub waypoint_spread: f64,
    /// Minimum accepted route length, meters (0 = unbounded).
    pub min_route_m: f64,
    /// Maximum accepted route length, meters (`f64::INFINITY` = unbounded).
    pub max_route_m: f64,
    /// Attempts per trajectory before giving up on the length constraint.
    pub max_attempts: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            count: 1000,
            uniform_fraction: 0.2,
            waypoint_probability: 0.35,
            waypoint_spread: 0.35,
            min_route_m: 0.0,
            max_route_m: f64::INFINITY,
            max_attempts: 40,
        }
    }
}

impl WorkloadConfig {
    /// Restricts generated routes to `[min_km, max_km)` kilometers.
    pub fn with_length_class_km(mut self, min_km: f64, max_km: f64) -> Self {
        self.min_route_m = min_km * 1000.0;
        self.max_route_m = max_km * 1000.0;
        self
    }
}

/// Generates trajectory workloads over one network.
pub struct WorkloadGenerator<'a> {
    net: &'a RoadNetwork,
    grid: &'a GridIndex,
    hotspots: Vec<Hotspot>,
    hotspot_cdf: Vec<f64>,
    dijkstra: DijkstraEngine,
}

impl<'a> WorkloadGenerator<'a> {
    /// Creates a generator; `hotspots` may be empty (pure uniform traffic).
    pub fn new(net: &'a RoadNetwork, grid: &'a GridIndex, hotspots: &[Hotspot]) -> Self {
        let total: f64 = hotspots.iter().map(|h| h.weight).sum();
        let mut cdf = Vec::with_capacity(hotspots.len());
        let mut acc = 0.0;
        for h in hotspots {
            acc += h.weight / total.max(f64::MIN_POSITIVE);
            cdf.push(acc);
        }
        let mut dijkstra = DijkstraEngine::new(net.node_count());
        dijkstra.set_track_parents(true);
        WorkloadGenerator {
            net,
            grid,
            hotspots: hotspots.to_vec(),
            hotspot_cdf: cdf,
            dijkstra,
        }
    }

    /// Generates up to `cfg.count` trajectories (fewer only if the length
    /// constraints are infeasible within the attempt budget).
    pub fn generate<R: RngExt>(&mut self, cfg: &WorkloadConfig, rng: &mut R) -> Vec<Trajectory> {
        let mut out = Vec::with_capacity(cfg.count);
        let budget = cfg.count.saturating_mul(cfg.max_attempts).max(cfg.count);
        let mut attempts = 0usize;
        while out.len() < cfg.count && attempts < budget {
            attempts += 1;
            if let Some(t) = self.try_one(cfg, rng) {
                out.push(t);
            }
        }
        out
    }

    /// One trip attempt; `None` if OD sampling, routing, or the length
    /// constraint failed.
    fn try_one<R: RngExt>(&mut self, cfg: &WorkloadConfig, rng: &mut R) -> Option<Trajectory> {
        let target_len = if cfg.max_route_m.is_finite() {
            Some((cfg.min_route_m + cfg.max_route_m) / 2.0)
        } else {
            None
        };
        let origin = self.sample_endpoint(cfg, rng)?;
        let dest = match target_len {
            // Bias the destination search so the straight-line OD distance
            // roughly matches the target route length (circuity ≈ 1.3).
            Some(t) => self.sample_endpoint_near(origin, t / 1.3, rng)?,
            None => self.sample_endpoint(cfg, rng)?,
        };
        if origin == dest {
            return None;
        }

        let route = if rng.random::<f64>() < cfg.waypoint_probability {
            let waypoint = self.sample_waypoint(origin, dest, cfg.waypoint_spread, rng)?;
            let leg1 = self.shortest_path(origin, waypoint)?;
            let leg2 = self.shortest_path(waypoint, dest)?;
            let mut nodes = leg1;
            nodes.extend_from_slice(&leg2[1..]);
            nodes
        } else {
            self.shortest_path(origin, dest)?
        };

        let traj = Trajectory::new(route);
        let len = traj.route_length(self.net);
        if len < cfg.min_route_m || len >= cfg.max_route_m {
            return None;
        }
        Some(traj)
    }

    fn sample_endpoint<R: RngExt>(&self, cfg: &WorkloadConfig, rng: &mut R) -> Option<NodeId> {
        let bb = self.net.bounding_box();
        let p = if self.hotspots.is_empty() || rng.random::<f64>() < cfg.uniform_fraction {
            Point::new(
                rng.random_range(bb.min.x..=bb.max.x),
                rng.random_range(bb.min.y..=bb.max.y),
            )
        } else {
            let u: f64 = rng.random();
            let idx = self
                .hotspot_cdf
                .iter()
                .position(|&c| u <= c)
                .unwrap_or(self.hotspots.len() - 1);
            let h = &self.hotspots[idx];
            let (gx, gy) = gaussian_pair(rng);
            Point::new(h.center.x + gx * h.radius, h.center.y + gy * h.radius)
        };
        self.grid.nearest(self.net, p).map(|(v, _)| v)
    }

    /// Samples a node at straight-line distance ≈ `radius` from `origin`.
    fn sample_endpoint_near<R: RngExt>(
        &self,
        origin: NodeId,
        radius: f64,
        rng: &mut R,
    ) -> Option<NodeId> {
        let o = self.net.point(origin);
        let angle = rng.random_range(0.0..std::f64::consts::TAU);
        let r = radius * rng.random_range(0.9..1.1);
        let p = Point::new(o.x + r * angle.cos(), o.y + r * angle.sin());
        self.grid.nearest(self.net, p).map(|(v, _)| v)
    }

    fn sample_waypoint<R: RngExt>(
        &self,
        origin: NodeId,
        dest: NodeId,
        spread: f64,
        rng: &mut R,
    ) -> Option<NodeId> {
        let (o, d) = (self.net.point(origin), self.net.point(dest));
        let mid = o.lerp(&d, rng.random_range(0.3..0.7));
        let s = o.distance(&d) * spread;
        let (gx, gy) = gaussian_pair(rng);
        let p = Point::new(mid.x + gx * s, mid.y + gy * s);
        self.grid.nearest(self.net, p).map(|(v, _)| v)
    }

    fn shortest_path(&mut self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        self.dijkstra
            .run_bounded_until(self.net.forward(), from, f64::INFINITY, |v, _| v == to);
        self.dijkstra.path_to(to)
    }
}

/// Standard-normal pair via Box–Muller (keeps `rand` the only RNG dep).
fn gaussian_pair<R: RngExt>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Samples one standard-normal value.
pub fn gaussian<R: RngExt>(rng: &mut R) -> f64 {
    gaussian_pair(rng).0
}

/// Synthesizes a noisy GPS trace from a route: the vehicle moves along the
/// route polyline at `speed_mps`, emitting a fix every `interval_s` seconds
/// with isotropic Gaussian noise of `noise_sigma_m` meters.
pub fn synthesize_gps<R: RngExt>(
    net: &RoadNetwork,
    traj: &Trajectory,
    speed_mps: f64,
    interval_s: f64,
    noise_sigma_m: f64,
    rng: &mut R,
) -> GpsTrace {
    assert!(speed_mps > 0.0 && interval_s > 0.0);
    let nodes = traj.nodes();
    let cum = traj.cumulative_distances(net);
    let total = *cum.last().unwrap();
    let mut fixes = Vec::new();
    let mut t = 0.0f64;
    loop {
        let along = (t * speed_mps).min(total);
        // Locate the segment containing `along`.
        let seg = match cum.binary_search_by(|c| c.total_cmp(&along)) {
            Ok(i) => i.min(nodes.len().saturating_sub(2)),
            Err(i) => i.saturating_sub(1).min(nodes.len().saturating_sub(2)),
        };
        let pos = if nodes.len() == 1 {
            net.point(nodes[0])
        } else {
            let seg_len = (cum[seg + 1] - cum[seg]).max(f64::MIN_POSITIVE);
            let frac = ((along - cum[seg]) / seg_len).clamp(0.0, 1.0);
            net.point(nodes[seg]).lerp(&net.point(nodes[seg + 1]), frac)
        };
        let (gx, gy) = gaussian_pair(rng);
        fixes.push(GpsPoint::new(
            Point::new(pos.x + gx * noise_sigma_m, pos.y + gy * noise_sigma_m),
            t,
        ));
        if along >= total {
            break;
        }
        t += interval_s;
    }
    GpsTrace::new(fixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{grid_city, GridCityConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_city() -> crate::city::City {
        let mut rng = StdRng::seed_from_u64(11);
        grid_city(
            &GridCityConfig {
                rows: 15,
                cols: 15,
                spacing_m: 200.0,
                jitter: 0.2,
                removal_fraction: 0.05,
            },
            &mut rng,
        )
    }

    #[test]
    fn generates_requested_count() {
        let city = small_city();
        let grid = GridIndex::build(&city.net, 300.0);
        let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
        let mut rng = StdRng::seed_from_u64(1);
        let trajs = gen.generate(
            &WorkloadConfig {
                count: 50,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(trajs.len(), 50);
        for t in &trajs {
            assert!(t.len() >= 2, "trivial trajectory generated");
            // Consecutive nodes must be connected (valid routes).
            for w in t.nodes().windows(2) {
                assert!(city.net.edge_weight(w[0], w[1]).is_some());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let city = small_city();
        let grid = GridIndex::build(&city.net, 300.0);
        let cfg = WorkloadConfig {
            count: 20,
            ..Default::default()
        };
        let a = WorkloadGenerator::new(&city.net, &grid, &city.hotspots)
            .generate(&cfg, &mut StdRng::seed_from_u64(99));
        let b = WorkloadGenerator::new(&city.net, &grid, &city.hotspots)
            .generate(&cfg, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn length_class_constraint_is_respected() {
        let city = small_city();
        let grid = GridIndex::build(&city.net, 300.0);
        let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = WorkloadConfig {
            count: 20,
            ..Default::default()
        }
        .with_length_class_km(1.0, 2.0);
        let trajs = gen.generate(&cfg, &mut rng);
        assert!(!trajs.is_empty());
        for t in &trajs {
            let len = t.route_length(&city.net);
            assert!((1000.0..2000.0).contains(&len), "length {len}");
        }
    }

    #[test]
    fn waypoints_deviate_from_shortest_path() {
        let city = small_city();
        let grid = GridIndex::build(&city.net, 300.0);
        let mut rng = StdRng::seed_from_u64(5);
        // All trips via waypoints...
        let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
        let wp = gen.generate(
            &WorkloadConfig {
                count: 30,
                waypoint_probability: 1.0,
                ..Default::default()
            },
            &mut rng,
        );
        // ...must on average be longer than the direct shortest path.
        let mut engine = DijkstraEngine::new(city.net.node_count());
        let mut longer = 0usize;
        let mut total = 0usize;
        for t in &wp {
            let (o, d) = (t.origin(), t.destination());
            if o == d {
                continue;
            }
            engine.run_bounded_until(city.net.forward(), o, f64::INFINITY, |v, _| v == d);
            if let Some(direct) = engine.distance(d) {
                total += 1;
                if t.route_length(&city.net) > direct + 1.0 {
                    longer += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            longer * 3 >= total,
            "waypoint trips should often exceed the shortest path ({longer}/{total})"
        );
    }

    #[test]
    fn gps_synthesis_and_sanity() {
        let city = small_city();
        let grid = GridIndex::build(&city.net, 300.0);
        let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
        let mut rng = StdRng::seed_from_u64(7);
        let traj = gen
            .generate(
                &WorkloadConfig {
                    count: 1,
                    ..Default::default()
                },
                &mut rng,
            )
            .pop()
            .unwrap();
        let trace = synthesize_gps(&city.net, &traj, 10.0, 5.0, 15.0, &mut rng);
        assert!(trace.len() >= 2);
        // Duration should match route length / speed (± one interval).
        let expect = traj.route_length(&city.net) / 10.0;
        assert!((trace.duration() - expect).abs() <= 5.0 + 1e-9);
        // First fix near the origin.
        let d0 = trace.points()[0]
            .pos
            .distance(&city.net.point(traj.origin()));
        assert!(d0 < 100.0, "first fix {d0} m from origin");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn static_single_node_gps() {
        let city = small_city();
        let traj = Trajectory::new(vec![NodeId(0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let trace = synthesize_gps(&city.net, &traj, 10.0, 5.0, 0.0, &mut rng);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.points()[0].pos, city.net.point(NodeId(0)));
    }
}
