//! Candidate-site selection and attribute assignment.
//!
//! The paper takes the candidate set `S ⊆ V` as an application input
//! (Sec. 2) and, for the TOPS-COST / TOPS-CAPACITY extensions (Sec. 7),
//! draws per-site costs and capacities from normal distributions. This
//! module reproduces those inputs.

use netclus_roadnet::{NodeId, RoadNetwork};
use rand::RngExt;

use crate::workload::gaussian;

/// How to choose the candidate sites from the vertex set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SiteSelection {
    /// Every vertex is a candidate (the paper's default: "the number of
    /// candidate sites is the same as the number of nodes", Sec. 8.1).
    AllNodes,
    /// A uniform random sample of exactly `n` vertices (without
    /// replacement).
    Random(usize),
    /// A uniform random fraction `f ∈ (0, 1]` of the vertices.
    RandomFraction(f64),
}

/// Selects candidate sites, sorted by node id (deterministic given the RNG).
pub fn select_sites<R: RngExt>(
    net: &RoadNetwork,
    selection: SiteSelection,
    rng: &mut R,
) -> Vec<NodeId> {
    let n = net.node_count();
    match selection {
        SiteSelection::AllNodes => net.nodes().collect(),
        SiteSelection::Random(k) => {
            assert!(k >= 1 && k <= n, "cannot select {k} sites from {n} nodes");
            sample_without_replacement(n, k, rng)
        }
        SiteSelection::RandomFraction(f) => {
            assert!(f > 0.0 && f <= 1.0, "fraction must be in (0, 1], got {f}");
            let k = ((n as f64 * f).round() as usize).clamp(1, n);
            sample_without_replacement(n, k, rng)
        }
    }
}

/// Floyd's algorithm: uniform k-subset of `0..n`, returned sorted.
fn sample_without_replacement<R: RngExt>(n: usize, k: usize, rng: &mut R) -> Vec<NodeId> {
    use std::collections::BTreeSet;
    let mut chosen: BTreeSet<usize> = BTreeSet::new();
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().map(NodeId::from_index).collect()
}

/// Draws per-site costs from `N(mean, std)` clamped below at `floor`
/// (the paper's Fig. 7a/9 setup: mean 1.0, σ ∈ [0, 1], floor 0.1).
pub fn assign_costs_normal<R: RngExt>(
    count: usize,
    mean: f64,
    std: f64,
    floor: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(std >= 0.0 && floor >= 0.0);
    (0..count)
        .map(|_| (mean + gaussian(rng) * std).max(floor))
        .collect()
}

/// Draws per-site capacities from `N(mean, std)` clamped below at 0
/// and rounded (the paper's Fig. 7b setup: mean ∈ [0.1%, 100%] of `m`,
/// σ = 10% of the mean).
pub fn assign_capacities_normal<R: RngExt>(
    count: usize,
    mean: f64,
    std: f64,
    rng: &mut R,
) -> Vec<u64> {
    assert!(std >= 0.0);
    (0..count)
        .map(|_| (mean + gaussian(rng) * std).max(0.0).round() as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclus_roadnet::{Point, RoadNetworkBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(n: u32) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as f64, 0.0));
        }
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn all_nodes_selection() {
        let net = net(10);
        let mut rng = StdRng::seed_from_u64(0);
        let sites = select_sites(&net, SiteSelection::AllNodes, &mut rng);
        assert_eq!(sites.len(), 10);
        assert_eq!(sites[0], NodeId(0));
        assert_eq!(sites[9], NodeId(9));
    }

    #[test]
    fn random_selection_is_exact_sorted_unique() {
        let net = net(100);
        let mut rng = StdRng::seed_from_u64(1);
        let sites = select_sites(&net, SiteSelection::Random(30), &mut rng);
        assert_eq!(sites.len(), 30);
        assert!(sites.windows(2).all(|w| w[0] < w[1]));
        assert!(sites.iter().all(|s| s.index() < 100));
    }

    #[test]
    fn random_selection_covers_range_uniformly() {
        let net = net(50);
        let mut hits = vec![0usize; 50];
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            for s in select_sites(&net, SiteSelection::Random(10), &mut rng) {
                hits[s.index()] += 1;
            }
        }
        // Each node expected 40 times; all nodes must be selectable.
        assert!(hits.iter().all(|&h| h > 5), "biased sampling: {hits:?}");
    }

    #[test]
    fn fraction_selection() {
        let net = net(40);
        let mut rng = StdRng::seed_from_u64(2);
        let sites = select_sites(&net, SiteSelection::RandomFraction(0.25), &mut rng);
        assert_eq!(sites.len(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn oversized_selection_panics() {
        let net = net(5);
        let mut rng = StdRng::seed_from_u64(0);
        select_sites(&net, SiteSelection::Random(6), &mut rng);
    }

    #[test]
    fn costs_respect_floor_and_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let costs = assign_costs_normal(20_000, 1.0, 0.5, 0.1, &mut rng);
        assert!(costs.iter().all(|&c| c >= 0.1));
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        // Clamping shifts the mean slightly upward.
        assert!((0.95..1.15).contains(&mean), "mean {mean}");
    }

    #[test]
    fn zero_std_costs_are_constant() {
        let mut rng = StdRng::seed_from_u64(4);
        let costs = assign_costs_normal(10, 2.0, 0.0, 0.1, &mut rng);
        assert!(costs.iter().all(|&c| c == 2.0));
    }

    #[test]
    fn capacities_are_nonnegative_and_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let caps = assign_capacities_normal(10_000, 100.0, 10.0, &mut rng);
        let mean = caps.iter().sum::<u64>() as f64 / caps.len() as f64;
        assert!((95.0..105.0).contains(&mean), "mean {mean}");
    }
}
