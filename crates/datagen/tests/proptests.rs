//! Property-based tests for the data generators: every generated city must
//! be strongly connected with positive finite edge weights; every generated
//! workload must consist of valid connected routes; GPS synthesis must
//! track its route.

use netclus_datagen::{
    grid_city, polycentric_city, star_city, synthesize_gps, GridCityConfig, PolycentricCityConfig,
    StarCityConfig, WorkloadConfig, WorkloadGenerator,
};
use netclus_roadnet::{is_strongly_connected, GridIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grid_cities_are_valid(
        seed in any::<u64>(),
        rows in 5usize..14,
        cols in 5usize..14,
        removal in 0.0f64..0.25,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let city = grid_city(&GridCityConfig {
            rows, cols, removal_fraction: removal, ..Default::default()
        }, &mut rng);
        prop_assert!(is_strongly_connected(&city.net));
        prop_assert!(city.net.node_count() >= rows * cols / 2);
        for v in city.net.nodes() {
            for (_, w) in city.net.out_edges(v) {
                prop_assert!(w.is_finite() && w > 0.0);
            }
        }
    }

    #[test]
    fn star_and_polycentric_cities_are_valid(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let star = star_city(&StarCityConfig {
            core_size: 5, spokes: 4, spoke_len: 8, ..Default::default()
        }, &mut rng);
        prop_assert!(is_strongly_connected(&star.net));
        let poly = polycentric_city(&PolycentricCityConfig {
            centers: 3, center_size: 5, ..Default::default()
        }, &mut rng);
        prop_assert!(is_strongly_connected(&poly.net));
    }

    #[test]
    fn workload_routes_are_connected_paths(seed in any::<u64>(), count in 1usize..25) {
        let mut rng = StdRng::seed_from_u64(seed);
        let city = grid_city(&GridCityConfig {
            rows: 8, cols: 8, ..Default::default()
        }, &mut rng);
        let grid = GridIndex::build(&city.net, 250.0);
        let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
        let trajs = gen.generate(&WorkloadConfig {
            count, ..Default::default()
        }, &mut rng);
        prop_assert_eq!(trajs.len(), count);
        for t in &trajs {
            for w in t.nodes().windows(2) {
                prop_assert!(city.net.edge_weight(w[0], w[1]).is_some(),
                    "disconnected route step {w:?}");
            }
        }
    }

    #[test]
    fn gps_traces_follow_their_route(
        seed in any::<u64>(),
        speed in 5.0f64..25.0,
        interval in 2.0f64..15.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let city = grid_city(&GridCityConfig {
            rows: 8, cols: 8, ..Default::default()
        }, &mut rng);
        let grid = GridIndex::build(&city.net, 250.0);
        let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
        let traj = gen.generate(&WorkloadConfig { count: 1, ..Default::default() }, &mut rng)
            .pop().unwrap();
        // Noise-free synthesis must stay exactly on the route polyline.
        let trace = synthesize_gps(&city.net, &traj, speed, interval, 0.0, &mut rng);
        prop_assert!(trace.len() >= 2);
        // Timestamps are uniform; path length ≤ route length (chords cut corners).
        prop_assert!(trace.path_length() <= traj.route_length(&city.net) + 1e-6);
        // Endpoints coincide with route endpoints.
        let first = trace.points().first().unwrap().pos;
        let last = trace.points().last().unwrap().pos;
        prop_assert!(first.distance(&city.net.point(traj.origin())) < 1e-9);
        prop_assert!(last.distance(&city.net.point(traj.destination())) < 1e-9);
    }
}
