//! # netclus-ingest — durable streaming trajectory ingestion
//!
//! PR 1 gave NetClus its read path (`netclus-service`: snapshot-swapped
//! indexes under concurrent queries). This crate is the **write path**:
//! raw GPS streams in, durably published index epochs out, with a bounded
//! memory footprint and crash recovery. The stages:
//!
//! * [`record`] — the **framed wire format** for raw GPS traces
//!   (length-prefixed, CRC-32-checksummed, per-source sequence numbers),
//!   decodable from any `io::Read` or fed in-process via
//!   [`Ingestor::submit`];
//! * [`queue`] — the **bounded intake queue** with explicit backpressure
//!   (block / drop-oldest / reject) between frame decoding and the slow
//!   matching stage;
//! * [`pipeline`] — **parallel map matching**
//!   ([`netclus_trajectory::MapMatcher`] workers) feeding a single
//!   publisher;
//! * [`lifecycle`] — **id prediction and stream-time TTL expiry**, turning
//!   matched trajectories into insert+retire
//!   [`UpdateOp`](netclus_service::UpdateOp) batches sized by op count or
//!   deadline;
//! * [`wal`] — the **write-ahead log**: append-only CRC-checked segments
//!   with rotation and fsync batching, written *before* each batch is
//!   published via [`SnapshotStore::apply`](netclus_service::SnapshotStore);
//! * [`recovery`] — **replay**: fold the WAL over the base state to
//!   reconstruct the exact pre-crash epoch, corpus and index.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use netclus::prelude::*;
//! use netclus_ingest::{IngestConfig, Ingestor, StreamRecord};
//! use netclus_roadnet::{GridIndex, Point, RoadNetworkBuilder};
//! use netclus_service::{IngestMetrics, SnapshotStore};
//! use netclus_trajectory::{GpsPoint, GpsTrace, TrajectorySet};
//!
//! // A corridor network, an empty corpus, and the index over them.
//! let mut b = RoadNetworkBuilder::new();
//! let nodes: Vec<_> = (0..6)
//!     .map(|i| b.add_node(Point::new(i as f64 * 400.0, 0.0)))
//!     .collect();
//! for w in nodes.windows(2) {
//!     b.add_two_way(w[0], w[1], 400.0).unwrap();
//! }
//! let net = b.build().unwrap();
//! let grid = Arc::new(GridIndex::build(&net, 400.0));
//! let trajs = TrajectorySet::for_network(&net);
//! let index = NetClusIndex::build(
//!     &net,
//!     &trajs,
//!     &net.nodes().collect::<Vec<_>>(),
//!     NetClusConfig { tau_min: 800.0, tau_max: 4_000.0, threads: 1, ..Default::default() },
//! );
//! let store = Arc::new(SnapshotStore::new(net, trajs, index));
//!
//! // Stream one noisy trace through the pipeline.
//! let wal_dir = std::env::temp_dir().join(format!("netclus-wal-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&wal_dir);
//! let ingestor = Ingestor::start(
//!     Arc::clone(&store),
//!     grid,
//!     IngestConfig::new(&wal_dir),
//!     Arc::new(IngestMetrics::default()),
//! )
//! .unwrap();
//! ingestor.submit(StreamRecord {
//!     source: 1,
//!     seq: 0,
//!     trace: GpsTrace::new(
//!         (0..6)
//!             .map(|i| GpsPoint::new(Point::new(i as f64 * 400.0 + 9.0, -12.0), i as f64 * 30.0))
//!             .collect(),
//!     ),
//! });
//! ingestor.finish(); // drain, publish, fsync
//!
//! let snap = store.load();
//! assert_eq!(snap.epoch(), 1);
//! assert_eq!(snap.trajs().len(), 1);
//! std::fs::remove_dir_all(&wal_dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod crc;

pub mod lifecycle;
pub mod pipeline;
pub mod queue;
pub mod record;
pub mod recovery;
pub mod wal;

pub use crc::crc32;
pub use lifecycle::LifecycleManager;
pub use pipeline::{IngestConfig, Ingestor, IntakeSummary, SubmitOutcome};
pub use queue::{BackpressurePolicy, BoundedQueue, PushOutcome};
pub use record::{RecordError, RecordReader, StreamRecord, MAX_RECORD_PAYLOAD};
pub use recovery::{recover_store, RecoveryReport};
pub use wal::{
    decode_batch, encode_batch, read_wal, repair_tail, ReplayLog, TailRepair, WalBatch, WalConfig,
    WalError, WalWriter,
};

/// Compile-time audit that the types crossing the pipeline's thread
/// boundaries are `Send + Sync`.
#[allow(dead_code)]
fn send_sync_audit() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StreamRecord>();
    assert_send_sync::<BoundedQueue<StreamRecord>>();
    assert_send_sync::<Ingestor>();
    assert_send_sync::<netclus_service::IngestMetrics>();
    fn assert_send<T: Send>() {}
    assert_send::<WalWriter>();
}
