//! Little-endian wire primitives shared by the record and WAL codecs.

/// Appends a `u32` in little-endian order.
pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its little-endian bit pattern.
pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A bounds-checked cursor over an immutable payload.
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// True when every payload byte has been consumed.
    pub(crate) fn exhausted(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_bounds() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -2.5);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u32(), Some(7));
        assert_eq!(c.u64(), Some(u64::MAX - 1));
        assert_eq!(c.f64(), Some(-2.5));
        assert!(c.exhausted());
        assert_eq!(c.u8(), None, "reads past the end must fail");
    }
}
