//! A bounded MPMC work queue with explicit backpressure policies.
//!
//! The match stage sits between a fast producer (frame decoding) and a
//! slow consumer (Viterbi map matching), so the queue between them decides
//! how overload degrades:
//!
//! * [`BackpressurePolicy::Block`] — producers wait for space (closed-loop
//!   sources self-throttle to matcher capacity);
//! * [`BackpressurePolicy::DropOldest`] — the oldest queued record is
//!   evicted to admit the new one (freshest-data-wins, e.g. live traffic
//!   feeds where a stale trace is worthless);
//! * [`BackpressurePolicy::Reject`] — the new record is refused and the
//!   caller told so (load shedding with upstream retry).
//!
//! `std::sync::mpsc::sync_channel` only offers the blocking flavor, hence
//! this hand-rolled Mutex + Condvar queue.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// How a full queue treats a new item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Wait until space frees up.
    Block,
    /// Evict the oldest queued item to admit the new one.
    DropOldest,
    /// Refuse the new item.
    Reject,
}

/// What happened to a pushed item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued without displacing anything.
    Accepted,
    /// Enqueued, but the oldest queued item was evicted to make room.
    AcceptedDroppedOldest,
    /// Refused: the queue was full under [`BackpressurePolicy::Reject`].
    Rejected,
    /// Refused: the queue is closed.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. `push` applies a [`BackpressurePolicy`]; `pop`
/// blocks until an item arrives or the queue is closed and drained.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Pushes an item under `policy`. Never blocks except under
    /// [`BackpressurePolicy::Block`] on a full queue.
    pub fn push(&self, item: T, policy: BackpressurePolicy) -> PushOutcome {
        self.push_reporting(item, policy).0
    }

    /// Like [`BoundedQueue::push`], but also returns the item a
    /// [`BackpressurePolicy::DropOldest`] eviction displaced — callers
    /// that account for every queued item must be told exactly which one
    /// was dropped.
    pub fn push_reporting(&self, item: T, policy: BackpressurePolicy) -> (PushOutcome, Option<T>) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return (PushOutcome::Closed, None);
        }
        let mut outcome = PushOutcome::Accepted;
        let mut displaced = None;
        if inner.items.len() >= self.capacity {
            match policy {
                BackpressurePolicy::Block => {
                    while inner.items.len() >= self.capacity && !inner.closed {
                        inner = self.not_full.wait(inner).expect("queue lock poisoned");
                    }
                    if inner.closed {
                        return (PushOutcome::Closed, None);
                    }
                }
                BackpressurePolicy::DropOldest => {
                    displaced = inner.items.pop_front();
                    outcome = PushOutcome::AcceptedDroppedOldest;
                }
                BackpressurePolicy::Reject => return (PushOutcome::Rejected, None),
            }
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        (outcome, displaced)
    }

    /// Pops the oldest item, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: further pushes fail, pops drain what remains.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Closes the queue and discards everything still queued (crash
    /// simulation / fast abort). Returns the number of items discarded.
    pub fn close_and_clear(&self) -> usize {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        inner.closed = true;
        let n = inner.items.len();
        inner.items.clear();
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        n
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1, BackpressurePolicy::Reject), PushOutcome::Accepted);
        assert_eq!(q.push(2, BackpressurePolicy::Reject), PushOutcome::Accepted);
        assert_eq!(q.push(3, BackpressurePolicy::Reject), PushOutcome::Rejected);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn drop_oldest_evicts_front() {
        let q = BoundedQueue::new(2);
        q.push(1, BackpressurePolicy::DropOldest);
        q.push(2, BackpressurePolicy::DropOldest);
        assert_eq!(
            q.push_reporting(3, BackpressurePolicy::DropOldest),
            (PushOutcome::AcceptedDroppedOldest, Some(1))
        );
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn block_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, BackpressurePolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2, BackpressurePolicy::Block));
        // Give the producer time to block, then free a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(producer.join().unwrap(), PushOutcome::Accepted);
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1, BackpressurePolicy::Block);
        q.push(2, BackpressurePolicy::Block);
        q.close();
        assert_eq!(q.push(3, BackpressurePolicy::Block), PushOutcome::Closed);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_unblocks_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, BackpressurePolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2, BackpressurePolicy::Block));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), PushOutcome::Closed);
    }

    #[test]
    fn close_and_clear_discards() {
        let q = BoundedQueue::new(4);
        q.push(1, BackpressurePolicy::Block);
        q.push(2, BackpressurePolicy::Block);
        assert_eq!(q.close_and_clear(), 2);
        assert_eq!(q.pop(), None::<i32>);
    }
}
