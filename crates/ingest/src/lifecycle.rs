//! Trajectory lifecycle: id assignment, TTL expiry, batch assembly.
//!
//! Matched trajectories enter the served corpus through
//! [`UpdateOp::AddTrajectory`] batches and leave it again when their
//! time-to-live lapses ([`UpdateOp::RemoveTrajectory`]), keeping the
//! corpus a sliding window over the stream — the paper's dynamic-workload
//! setting (Sec. 6) driven end to end.
//!
//! Two invariants make this deterministic and therefore WAL-replayable:
//!
//! * **Id prediction** — `TrajectorySet` assigns dense ids in insertion
//!   order, and every `AddTrajectory` this manager emits is valid (its
//!   nodes came from the map matcher, so they are on-network). With the
//!   ingest publisher as the store's only writer, the id of the `k`-th
//!   emitted insert is exactly `base id_bound + k`; retire ops can name
//!   ids without ever reading them back from the store.
//! * **Stream-time TTL** — expiry is measured against the *stream clock*
//!   (the max end-of-trace timestamp seen so far), not the wall clock, so
//!   replaying the same records yields the same retire ops.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use netclus_service::UpdateOp;
use netclus_trajectory::{TrajId, Trajectory};

/// A pending expiry, ordered by time then id (min-heap via `Reverse`).
/// The time is stored as `f64::to_bits`, order-preserving for the
/// non-negative finite stream times the record decoder admits.
type Expiry = Reverse<(u64, u32)>;

/// The lifecycle manager. Single-owner (lives on the publisher thread).
#[derive(Debug)]
pub struct LifecycleManager {
    next_id: u32,
    ttl_s: Option<f64>,
    /// Stream clock: max end-of-trace time observed.
    watermark_s: f64,
    expiries: BinaryHeap<Expiry>,
}

impl LifecycleManager {
    /// Creates a manager issuing ids from `next_id` (the store's
    /// `id_bound` at attach time) with the given stream-time TTL
    /// (`None` = trajectories never expire).
    pub fn new(next_id: u32, ttl_s: Option<f64>) -> Self {
        if let Some(ttl) = ttl_s {
            assert!(ttl > 0.0 && ttl.is_finite(), "TTL must be positive");
        }
        LifecycleManager {
            next_id,
            ttl_s,
            watermark_s: f64::NEG_INFINITY,
            expiries: BinaryHeap::new(),
        }
    }

    /// Rebuilds a manager from state recovered out of the WAL: ids resume
    /// at `next_id`, the stream clock at `watermark_s` (pass
    /// `f64::NEG_INFINITY` when no add was ever published), and every
    /// live trajectory `(id, stream end time)` re-enters the expiry heap.
    /// Expiries are re-timed with the *current* `ttl_s` — changing the
    /// configured TTL across a restart deliberately re-times the
    /// survivors. Trajectories already overdue at `watermark_s` are
    /// retired by the first [`LifecycleManager::advance`] (their retire
    /// ops were lost with the crashed publisher's pending batch, exactly
    /// like any other un-appended work).
    pub fn resume(
        next_id: u32,
        ttl_s: Option<f64>,
        watermark_s: f64,
        live: impl IntoIterator<Item = (u32, f64)>,
    ) -> Self {
        let mut lm = Self::new(next_id, ttl_s);
        lm.watermark_s = watermark_s;
        if let Some(ttl) = lm.ttl_s {
            for (id, end_time_s) in live {
                lm.expiries
                    .push(Reverse(((end_time_s.max(0.0) + ttl).to_bits(), id)));
            }
        }
        lm
    }

    /// Admits a matched trajectory observed at stream time `end_time_s`:
    /// appends its insert op plus any retire ops that `end_time_s` makes
    /// due. Returns the id the insert will receive.
    pub fn admit(&mut self, traj: Trajectory, end_time_s: f64, ops: &mut Vec<UpdateOp>) -> TrajId {
        let id = TrajId(self.next_id);
        self.next_id += 1;
        ops.push(UpdateOp::AddTrajectory(traj));
        if let Some(ttl) = self.ttl_s {
            let expire_at = (end_time_s.max(0.0) + ttl).to_bits();
            self.expiries.push(Reverse((expire_at, id.0)));
        }
        self.advance(end_time_s, ops);
        id
    }

    /// Advances the stream clock to `time_s` (monotone; regressions from
    /// out-of-order matcher output are ignored) and appends retire ops for
    /// every trajectory whose TTL has lapsed. Returns the retire count.
    pub fn advance(&mut self, time_s: f64, ops: &mut Vec<UpdateOp>) -> usize {
        if time_s > self.watermark_s {
            self.watermark_s = time_s;
        }
        let now = self.watermark_s.max(0.0).to_bits();
        let mut retired = 0;
        while let Some(&Reverse((at, id))) = self.expiries.peek() {
            if at > now {
                break;
            }
            self.expiries.pop();
            ops.push(UpdateOp::RemoveTrajectory(TrajId(id)));
            retired += 1;
        }
        retired
    }

    /// The id the next admitted trajectory will receive.
    pub fn next_id(&self) -> u32 {
        self.next_id
    }

    /// Trajectories admitted but not yet expired.
    pub fn live_len(&self) -> usize {
        self.expiries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclus_roadnet::NodeId;

    fn t(nodes: &[u32]) -> Trajectory {
        Trajectory::new(nodes.iter().map(|&n| NodeId(n)).collect())
    }

    #[test]
    fn ids_are_sequential_from_base() {
        let mut lm = LifecycleManager::new(5, None);
        let mut ops = Vec::new();
        assert_eq!(lm.admit(t(&[0, 1]), 10.0, &mut ops), TrajId(5));
        assert_eq!(lm.admit(t(&[1, 2]), 11.0, &mut ops), TrajId(6));
        assert_eq!(lm.next_id(), 7);
        assert_eq!(ops.len(), 2, "no TTL → no retire ops");
    }

    #[test]
    fn ttl_retires_in_insertion_time_order() {
        let mut lm = LifecycleManager::new(0, Some(100.0));
        let mut ops = Vec::new();
        lm.admit(t(&[0]), 0.0, &mut ops); // expires at 100
        lm.admit(t(&[1]), 50.0, &mut ops); // expires at 150
        assert_eq!(lm.live_len(), 2);
        assert_eq!(lm.advance(99.0, &mut ops), 0);
        assert_eq!(lm.advance(120.0, &mut ops), 1);
        assert!(matches!(
            ops.last(),
            Some(UpdateOp::RemoveTrajectory(TrajId(0)))
        ));
        // A third insert at a late stream time retires the second.
        lm.admit(t(&[2]), 200.0, &mut ops);
        assert!(matches!(
            ops.last(),
            Some(UpdateOp::RemoveTrajectory(TrajId(1)))
        ));
        assert_eq!(lm.live_len(), 1);
    }

    #[test]
    fn stream_clock_never_regresses() {
        let mut lm = LifecycleManager::new(0, Some(10.0));
        let mut ops = Vec::new();
        lm.admit(t(&[0]), 100.0, &mut ops); // expires at 110
                                            // An out-of-order record with an older end time must not unexpire
                                            // anything or move the clock backwards.
        assert_eq!(lm.advance(5.0, &mut ops), 0);
        assert_eq!(lm.advance(110.0, &mut ops), 1);
    }

    #[test]
    #[should_panic(expected = "TTL must be positive")]
    fn zero_ttl_rejected() {
        LifecycleManager::new(0, Some(0.0));
    }

    #[test]
    fn resume_restores_clock_ids_and_expiries() {
        // Two live trajectories recovered from the WAL: id 3 ended at 0,
        // id 5 at 40; stream clock last seen at 50.
        let mut lm = LifecycleManager::resume(7, Some(100.0), 50.0, vec![(3, 0.0), (5, 40.0)]);
        assert_eq!(lm.next_id(), 7);
        assert_eq!(lm.live_len(), 2);
        let mut ops = Vec::new();
        // The resumed clock must not regress: an out-of-order record
        // below 50 changes nothing.
        assert_eq!(lm.advance(10.0, &mut ops), 0);
        assert_eq!(lm.advance(99.0, &mut ops), 0);
        // id 3 expires at 100, id 5 at 140.
        assert_eq!(lm.advance(100.0, &mut ops), 1);
        assert!(matches!(
            ops.last(),
            Some(UpdateOp::RemoveTrajectory(TrajId(3)))
        ));
        assert_eq!(lm.admit(t(&[9]), 200.0, &mut ops), TrajId(7));
        assert!(matches!(
            ops.last(),
            Some(UpdateOp::RemoveTrajectory(TrajId(5)))
        ));
        assert_eq!(lm.live_len(), 1);
    }
}
