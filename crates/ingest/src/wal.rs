//! The write-ahead log: update batches made durable before publication.
//!
//! ## On-disk layout
//!
//! The log is a directory of append-only **segments** named
//! `wal-NNNNNN.seg`. Each segment starts with a 16-byte header:
//!
//! ```text
//! magic "NCWL" (4) | version: u32 | segment index: u64
//! ```
//!
//! followed by frames identical in shape to the stream-record frames:
//!
//! ```text
//! len: u32 | crc: u32 (CRC-32 of payload) | payload (len bytes)
//! ```
//!
//! A frame payload is one encoded [`WalBatch`]:
//!
//! ```text
//! epoch: u64 | op count: u32 | ops…
//! op = tag: u8 (0 add-traj | 1 remove-traj | 2 add-site | 3 remove-site)
//!      followed by: nodes: u32 + node ids (tag 0) / id or node: u32
//! ```
//!
//! `epoch` is the snapshot epoch the batch publishes — replay asserts the
//! chain is gapless, so a recovered store lands on exactly the pre-crash
//! epoch.
//!
//! ## Durability
//!
//! [`WalWriter::append`] buffers; an fsync (`File::sync_data`) is issued
//! every [`WalConfig::sync_every_frames`] frames and on [`WalWriter::sync`],
//! amortizing the dominant cost of small-batch durability. Writers rotate
//! to a fresh segment once the current one exceeds
//! [`WalConfig::segment_max_bytes`], and always start a fresh segment on
//! open so a torn tail from a previous run is never appended to.
//!
//! ## Recovery
//!
//! [`read_wal`] replays segments in index order, verifying every checksum.
//! A frame extending past the **end of the last segment** is the expected
//! signature of a crash mid-append: replay stops cleanly there and reports
//! `truncated_tail`. Everything else — a checksum mismatch or implausible
//! length with the frame's bytes fully present, or truncation before the
//! final segment — is a hard [`WalError::Corrupt`]: appends are strictly
//! sequential, so a bad frame with durable data after it can never be a
//! torn write, and silent loss of acknowledged batches must never be
//! papered over.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use netclus_roadnet::NodeId;
use netclus_service::UpdateOp;
use netclus_trajectory::{TrajId, Trajectory};

use crate::codec::{put_u32, put_u64, Cursor};
use crate::crc::crc32;

const MAGIC: &[u8; 4] = b"NCWL";
const VERSION: u32 = 1;
const SEGMENT_HEADER_BYTES: u64 = 16;

/// Upper bound on one WAL frame's payload (16 MiB).
pub const MAX_WAL_PAYLOAD: usize = 16 << 20;

/// WAL configuration.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Directory holding the segments (created if missing).
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_max_bytes: u64,
    /// Issue an fsync every this many appended frames (1 = every batch is
    /// durable before it is published; larger values batch fsyncs).
    pub sync_every_frames: u32,
}

impl WalConfig {
    /// A config writing to `dir` with 4 MiB segments and per-frame fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_max_bytes: 4 << 20,
            sync_every_frames: 1,
        }
    }
}

/// One durable unit: the ops of a published batch plus the epoch it
/// published.
#[derive(Clone, Debug)]
pub struct WalBatch {
    /// Snapshot epoch this batch publishes (gapless chain from the base).
    pub epoch: u64,
    /// The operations, in application order.
    pub ops: Vec<UpdateOp>,
}

/// WAL failure modes.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(io::Error),
    /// A segment file has a bad magic/version header.
    BadSegmentHeader(PathBuf),
    /// An unreadable frame before the tail of the last segment.
    Corrupt {
        /// The segment the bad frame lives in.
        segment: PathBuf,
        /// Byte offset of the frame within the segment.
        offset: u64,
        /// What failed.
        reason: String,
    },
    /// A frame decoded but its contents are invalid (bad op tag, epoch
    /// gap, empty trajectory).
    Malformed(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O failure: {e}"),
            WalError::BadSegmentHeader(p) => {
                write!(f, "not a WAL segment: {}", p.display())
            }
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "corrupt WAL frame in {} at offset {offset}: {reason}",
                segment.display()
            ),
            WalError::Malformed(why) => write!(f, "malformed WAL contents: {why}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Encodes a batch payload (no frame header).
pub fn encode_batch(epoch: u64, ops: &[UpdateOp]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + ops.len() * 8);
    put_u64(&mut buf, epoch);
    put_u32(&mut buf, ops.len() as u32);
    for op in ops {
        match op {
            UpdateOp::AddTrajectory(t) => {
                buf.push(0);
                put_u32(&mut buf, t.nodes().len() as u32);
                for v in t.nodes() {
                    put_u32(&mut buf, v.0);
                }
            }
            UpdateOp::RemoveTrajectory(id) => {
                buf.push(1);
                put_u32(&mut buf, id.0);
            }
            UpdateOp::AddSite(v) => {
                buf.push(2);
                put_u32(&mut buf, v.0);
            }
            UpdateOp::RemoveSite(v) => {
                buf.push(3);
                put_u32(&mut buf, v.0);
            }
        }
    }
    buf
}

/// Decodes a batch payload.
pub fn decode_batch(payload: &[u8]) -> Result<WalBatch, WalError> {
    let mut c = Cursor::new(payload);
    let err = |why: &str| WalError::Malformed(why.to_string());
    let epoch = c.u64().ok_or_else(|| err("missing epoch"))?;
    let count = c.u32().ok_or_else(|| err("missing op count"))? as usize;
    let mut ops = Vec::with_capacity(count.min(4_096));
    for _ in 0..count {
        let tag = c.u8().ok_or_else(|| err("missing op tag"))?;
        let op = match tag {
            0 => {
                let n = c.u32().ok_or_else(|| err("missing node count"))? as usize;
                if n == 0 {
                    return Err(err("empty trajectory"));
                }
                let mut nodes = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    nodes.push(NodeId(c.u32().ok_or_else(|| err("short trajectory"))?));
                }
                UpdateOp::AddTrajectory(Trajectory::new(nodes))
            }
            1 => UpdateOp::RemoveTrajectory(TrajId(
                c.u32().ok_or_else(|| err("missing trajectory id"))?,
            )),
            2 => UpdateOp::AddSite(NodeId(c.u32().ok_or_else(|| err("missing site"))?)),
            3 => UpdateOp::RemoveSite(NodeId(c.u32().ok_or_else(|| err("missing site"))?)),
            _ => return Err(err("unknown op tag")),
        };
        ops.push(op);
    }
    if !c.exhausted() {
        return Err(err("trailing bytes after ops"));
    }
    Ok(WalBatch { epoch, ops })
}

/// What one append did.
#[derive(Clone, Copy, Debug)]
pub struct AppendInfo {
    /// Bytes written for the frame (header + payload), plus a segment
    /// header when the append rotated.
    pub bytes: u64,
    /// True if this append triggered an fsync.
    pub synced: bool,
    /// True if this append rotated to a new segment.
    pub rotated: bool,
}

/// The appender. One writer per log directory; see the module docs for
/// the format and durability contract.
pub struct WalWriter {
    cfg: WalConfig,
    out: BufWriter<File>,
    segment_index: u64,
    segment_bytes: u64,
    frames_since_sync: u32,
    synced_everything: bool,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.seg"))
}

/// Segment files in `dir`, as `(index, path)` sorted by index.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(index) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((index, path));
        }
    }
    out.sort_unstable_by_key(|&(i, _)| i);
    Ok(out)
}

impl WalWriter {
    /// Opens a writer on `cfg.dir`, starting a fresh segment after any
    /// existing ones (a torn tail from a crashed run is never appended to).
    pub fn open(cfg: WalConfig) -> io::Result<WalWriter> {
        std::fs::create_dir_all(&cfg.dir)?;
        let next_index = list_segments(&cfg.dir)?.last().map_or(0, |&(i, _)| i + 1);
        let mut w = WalWriter {
            out: BufWriter::new(open_segment(&cfg.dir, next_index)?),
            cfg,
            segment_index: next_index,
            segment_bytes: SEGMENT_HEADER_BYTES,
            frames_since_sync: 0,
            synced_everything: true,
        };
        // Make the (empty) segment itself durable so recovery sees a
        // well-formed log even if we crash before the first append.
        w.out.flush()?;
        w.out.get_ref().sync_data()?;
        Ok(w)
    }

    /// Appends one frame, rotating and fsyncing per the config. The frame
    /// is on its way to disk when this returns; it is *guaranteed* durable
    /// only once `synced` is reported (or [`WalWriter::sync`] is called).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<AppendInfo> {
        assert!(payload.len() <= MAX_WAL_PAYLOAD, "oversized WAL payload");
        let frame_bytes = 8 + payload.len() as u64;
        let mut info = AppendInfo {
            bytes: frame_bytes,
            synced: false,
            rotated: false,
        };
        if self.segment_bytes + frame_bytes > self.cfg.segment_max_bytes
            && self.segment_bytes > SEGMENT_HEADER_BYTES
        {
            self.rotate()?;
            info.rotated = true;
            info.bytes += SEGMENT_HEADER_BYTES;
        }
        self.out.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(payload).to_le_bytes())?;
        self.out.write_all(payload)?;
        self.segment_bytes += frame_bytes;
        self.frames_since_sync += 1;
        self.synced_everything = false;
        if self.frames_since_sync >= self.cfg.sync_every_frames.max(1) {
            self.sync()?;
            info.synced = true;
        }
        Ok(info)
    }

    /// Flushes and fsyncs outstanding frames. A no-op when everything is
    /// already durable.
    pub fn sync(&mut self) -> io::Result<bool> {
        if self.synced_everything {
            return Ok(false);
        }
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        self.frames_since_sync = 0;
        self.synced_everything = true;
        Ok(true)
    }

    /// The segment currently being appended to.
    pub fn current_segment(&self) -> PathBuf {
        segment_path(&self.cfg.dir, self.segment_index)
    }

    fn rotate(&mut self) -> io::Result<()> {
        // Seal the old segment fully before the new one exists.
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        self.segment_index += 1;
        self.out = BufWriter::new(open_segment(&self.cfg.dir, self.segment_index)?);
        self.segment_bytes = SEGMENT_HEADER_BYTES;
        self.frames_since_sync = 0;
        self.synced_everything = true;
        Ok(())
    }
}

fn open_segment(dir: &Path, index: u64) -> io::Result<File> {
    let path = segment_path(dir, index);
    let mut f = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)?;
    let mut header = Vec::with_capacity(SEGMENT_HEADER_BYTES as usize);
    header.extend_from_slice(MAGIC);
    put_u32(&mut header, VERSION);
    put_u64(&mut header, index);
    f.write_all(&header)?;
    // fsyncing the file persists its blocks but not the directory entry
    // that names it: without this, a power loss can make a whole
    // fsync-acknowledged segment vanish from the directory listing.
    sync_dir(dir)?;
    Ok(f)
}

/// fsyncs the directory inode so newly created segment files survive a
/// power loss. Best-effort where directories cannot be opened as files
/// (non-POSIX platforms).
fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Result of scanning a WAL directory.
#[derive(Debug)]
pub struct ReplayLog {
    /// The decoded batches, in append order.
    pub batches: Vec<WalBatch>,
    /// Total frame bytes read (excluding segment headers).
    pub bytes: u64,
    /// Segments scanned.
    pub segments: usize,
    /// True if the last segment ended in a torn/unreadable frame (the
    /// normal signature of a crash mid-append).
    pub truncated_tail: bool,
}

/// Reads every durable batch from the log directory. See the module docs
/// for the tail-truncation contract. A missing directory is an empty log.
pub fn read_wal(dir: &Path) -> Result<ReplayLog, WalError> {
    let segments = list_segments(dir)?;
    let mut log = ReplayLog {
        batches: Vec::new(),
        bytes: 0,
        segments: segments.len(),
        truncated_tail: false,
    };
    for (pos, (index, path)) in segments.iter().enumerate() {
        let last_segment = pos + 1 == segments.len();
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        if data.len() < SEGMENT_HEADER_BYTES as usize
            || &data[0..4] != MAGIC
            || u32::from_le_bytes(data[4..8].try_into().unwrap()) != VERSION
            || u64::from_le_bytes(data[8..16].try_into().unwrap()) != *index
        {
            return Err(WalError::BadSegmentHeader(path.clone()));
        }
        let mut offset = SEGMENT_HEADER_BYTES as usize;
        while offset < data.len() {
            match read_frame(&data, offset) {
                Ok((payload, next)) => {
                    log.batches.push(decode_batch(payload)?);
                    log.bytes += (next - offset) as u64;
                    offset = next;
                }
                // A frame extending past EOF in the last segment is the
                // signature of a crash mid-append: the rest of the log is
                // exactly what was durable.
                Err(FrameError::Truncated) if last_segment => {
                    log.truncated_tail = true;
                    break;
                }
                // Anything else — a checksum mismatch or implausible
                // length with the frame's bytes fully present, or
                // truncation before the final segment — is corruption of
                // durable data and must fail loudly: appends are strictly
                // sequential, so a bad frame with valid data after it can
                // never be a torn write.
                Err(FrameError::Truncated) => {
                    return Err(WalError::Corrupt {
                        segment: path.clone(),
                        offset: offset as u64,
                        reason: "segment truncated before the log tail".to_string(),
                    });
                }
                Err(FrameError::Corrupt(reason)) => {
                    return Err(WalError::Corrupt {
                        segment: path.clone(),
                        offset: offset as u64,
                        reason,
                    });
                }
            }
        }
    }
    Ok(log)
}

/// Why a frame failed to read: extends past EOF (a torn append) vs. bytes
/// present but wrong (corruption). The distinction decides whether replay
/// may stop cleanly or must fail.
enum FrameError {
    Truncated,
    Corrupt(String),
}

/// Reads the frame starting at `offset`; returns its payload slice and the
/// offset past it, or the failure reason.
fn read_frame(data: &[u8], offset: usize) -> Result<(&[u8], usize), FrameError> {
    if offset + 8 > data.len() {
        return Err(FrameError::Truncated);
    }
    let len = u32::from_le_bytes(data[offset..offset + 4].try_into().unwrap()) as usize;
    let stored = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().unwrap());
    if len > MAX_WAL_PAYLOAD {
        // The length prefix is written before any payload byte, so a
        // fully-present-but-absurd value is corruption, not a torn write.
        return Err(FrameError::Corrupt(format!(
            "implausible frame length {len}"
        )));
    }
    let start = offset + 8;
    let end = start + len;
    if end > data.len() {
        return Err(FrameError::Truncated);
    }
    let payload = &data[start..end];
    let computed = crc32(payload);
    if computed != stored {
        return Err(FrameError::Corrupt(format!(
            "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    Ok((payload, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("netclus-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn add(nodes: &[u32]) -> UpdateOp {
        UpdateOp::AddTrajectory(Trajectory::new(nodes.iter().map(|&n| NodeId(n)).collect()))
    }

    fn ops_eq(a: &[UpdateOp], b: &[UpdateOp]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| match (x, y) {
                (UpdateOp::AddTrajectory(s), UpdateOp::AddTrajectory(t)) => s == t,
                (UpdateOp::RemoveTrajectory(s), UpdateOp::RemoveTrajectory(t)) => s == t,
                (UpdateOp::AddSite(s), UpdateOp::AddSite(t)) => s == t,
                (UpdateOp::RemoveSite(s), UpdateOp::RemoveSite(t)) => s == t,
                _ => false,
            })
    }

    #[test]
    fn batch_payload_roundtrip() {
        let ops = vec![
            add(&[1, 2, 3]),
            UpdateOp::RemoveTrajectory(TrajId(7)),
            UpdateOp::AddSite(NodeId(9)),
            UpdateOp::RemoveSite(NodeId(4)),
        ];
        let payload = encode_batch(42, &ops);
        let decoded = decode_batch(&payload).unwrap();
        assert_eq!(decoded.epoch, 42);
        assert!(ops_eq(&decoded.ops, &ops));
    }

    #[test]
    fn append_read_roundtrip_with_sync_batching() {
        let dir = tmp_dir("roundtrip");
        let mut w = WalWriter::open(WalConfig {
            sync_every_frames: 3,
            ..WalConfig::new(&dir)
        })
        .unwrap();
        let mut syncs = 0;
        for epoch in 1..=7u64 {
            let info = w
                .append(&encode_batch(epoch, &[add(&[epoch as u32])]))
                .unwrap();
            syncs += info.synced as u32;
        }
        assert_eq!(syncs, 2, "7 frames at sync_every=3 → 2 automatic fsyncs");
        assert!(w.sync().unwrap(), "tail still needed a sync");
        assert!(!w.sync().unwrap(), "second sync is a no-op");
        drop(w);

        let log = read_wal(&dir).unwrap();
        assert_eq!(log.batches.len(), 7);
        assert!(!log.truncated_tail);
        for (i, b) in log.batches.iter().enumerate() {
            assert_eq!(b.epoch, i as u64 + 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dir = tmp_dir("rotate");
        let mut w = WalWriter::open(WalConfig {
            segment_max_bytes: 256,
            ..WalConfig::new(&dir)
        })
        .unwrap();
        let mut rotations = 0;
        for epoch in 1..=40u64 {
            let info = w
                .append(&encode_batch(epoch, &[add(&[1, 2, 3, 4, 5])]))
                .unwrap();
            rotations += info.rotated as u32;
        }
        drop(w);
        assert!(rotations >= 2, "expected rotations, got {rotations}");
        let log = read_wal(&dir).unwrap();
        assert!(log.segments >= 3);
        assert_eq!(log.batches.len(), 40);
        let epochs: Vec<u64> = log.batches.iter().map(|b| b.epoch).collect();
        assert_eq!(epochs, (1..=40).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_cleanly() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
        for epoch in 1..=3u64 {
            w.append(&encode_batch(epoch, &[add(&[1])])).unwrap();
        }
        let segment = w.current_segment();
        drop(w);
        // Chop 3 bytes off the last frame: a torn append.
        let data = std::fs::read(&segment).unwrap();
        std::fs::write(&segment, &data[..data.len() - 3]).unwrap();
        let log = read_wal(&dir).unwrap();
        assert_eq!(log.batches.len(), 2);
        assert!(log.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let dir = tmp_dir("corrupt");
        // Two segments; corrupt a frame in the first.
        let mut w = WalWriter::open(WalConfig {
            segment_max_bytes: 128,
            ..WalConfig::new(&dir)
        })
        .unwrap();
        let first_segment = w.current_segment();
        for epoch in 1..=10u64 {
            w.append(&encode_batch(epoch, &[add(&[1, 2, 3, 4])]))
                .unwrap();
        }
        assert_ne!(w.current_segment(), first_segment, "need ≥ 2 segments");
        drop(w);
        let mut data = std::fs::read(&first_segment).unwrap();
        let n = data.len();
        data[n - 2] ^= 0xFF;
        std::fs::write(&first_segment, &data).unwrap();
        assert!(matches!(read_wal(&dir), Err(WalError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_last_segment_is_a_hard_error() {
        // A checksum mismatch with the frame's bytes fully present is
        // corruption of durable data, even in the last segment — only
        // truncation at EOF may be treated as a torn tail.
        for victim in [1usize, 2] {
            let dir = tmp_dir(&format!("last-corrupt-{victim}"));
            let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
            let mut frame_starts = Vec::new();
            let mut offset = SEGMENT_HEADER_BYTES;
            for epoch in 1..=3u64 {
                frame_starts.push(offset);
                let info = w.append(&encode_batch(epoch, &[add(&[1, 2])])).unwrap();
                offset += info.bytes;
            }
            let segment = w.current_segment();
            drop(w);
            // Flip a payload byte of the victim frame (middle, then final).
            let mut data = std::fs::read(&segment).unwrap();
            let idx = frame_starts[victim] as usize + 10;
            data[idx] ^= 0xFF;
            std::fs::write(&segment, &data).unwrap();
            assert!(
                matches!(read_wal(&dir), Err(WalError::Corrupt { .. })),
                "victim frame {victim} not detected as corruption"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn reopen_starts_a_fresh_segment() {
        let dir = tmp_dir("reopen");
        let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
        w.append(&encode_batch(1, &[add(&[1])])).unwrap();
        let first = w.current_segment();
        drop(w);
        let w2 = WalWriter::open(WalConfig::new(&dir)).unwrap();
        assert_ne!(w2.current_segment(), first);
        drop(w2);
        let log = read_wal(&dir).unwrap();
        assert_eq!(log.batches.len(), 1);
        assert_eq!(log.segments, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_empty_log() {
        let log = read_wal(Path::new("/nonexistent/netclus-wal")).unwrap();
        assert!(log.batches.is_empty());
        assert_eq!(log.segments, 0);
    }

    #[test]
    fn malformed_batch_contents_rejected() {
        assert!(matches!(
            decode_batch(&encode_batch(1, &[])[..8]),
            Err(WalError::Malformed(_))
        ));
        let mut payload = encode_batch(1, &[add(&[5])]);
        payload.push(0xAB); // trailing junk
        assert!(matches!(
            decode_batch(&payload),
            Err(WalError::Malformed(_))
        ));
    }
}
