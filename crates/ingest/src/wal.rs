//! The write-ahead log: update batches made durable before publication.
//!
//! ## On-disk layout
//!
//! The log is a directory of append-only **segments** named
//! `wal-NNNNNN.seg`. Each segment starts with a 16-byte header:
//!
//! ```text
//! magic "NCWL" (4) | version: u32 | segment index: u64
//! ```
//!
//! followed by frames identical in shape to the stream-record frames:
//!
//! ```text
//! len: u32 | crc: u32 (CRC-32 of payload) | payload (len bytes)
//! ```
//!
//! A frame payload is one encoded [`WalBatch`]:
//!
//! ```text
//! epoch: u64 | op count: u32 | ops… | mark count: u32 | marks…
//! op   = tag: u8 (0 add-traj | 1 remove-traj | 2 add-site | 3 remove-site)
//!        tag 0: end time: f64 (stream seconds) | nodes: u32 | node ids
//!        tags 1–3: id or node: u32
//! mark = source: u32 | high-water seq: u64
//! ```
//!
//! `epoch` is the snapshot epoch the batch publishes — replay asserts the
//! chain is gapless, so a recovered store lands on exactly the pre-crash
//! epoch. The per-add **end time** and the per-source high-water **marks**
//! make the rest of the pipeline's soft state durable too: a restarted
//! ingestor folds them back out of the log to resume TTL expiry and
//! at-least-once duplicate detection (see [`crate::pipeline`]).
//!
//! ## Durability
//!
//! [`WalWriter::append`] buffers; an fsync (`File::sync_data`) is issued
//! every [`WalConfig::sync_every_frames`] frames and on [`WalWriter::sync`],
//! amortizing the dominant cost of small-batch durability. Writers rotate
//! to a fresh segment once the current one exceeds
//! [`WalConfig::segment_max_bytes`]; every new segment's header is fsynced
//! before any frame lands in it, so a durable directory entry never names
//! a headerless file. Writers always start a fresh segment on open, after
//! [`repair_tail`] has truncated any torn tail a crashed run left behind —
//! a torn frame must never end up buried mid-log, where replay would have
//! to treat it as corruption.
//!
//! ## Recovery
//!
//! [`read_wal`] replays segments in index order, verifying every checksum.
//! A frame extending past the **end of the last segment** is the expected
//! signature of a crash mid-append: replay stops cleanly there and reports
//! `truncated_tail` (a final segment too short to even hold its header —
//! a crash between rotation and the header fsync — is the empty form of
//! the same signature). Everything else — a checksum mismatch or
//! implausible length with the frame's bytes fully present, or truncation
//! before the final segment — is a hard [`WalError::Corrupt`]: appends are
//! strictly sequential, so a bad frame with durable data after it can
//! never be a torn write, and silent loss of acknowledged batches must
//! never be papered over.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use netclus_roadnet::NodeId;
use netclus_service::UpdateOp;
use netclus_trajectory::{TrajId, Trajectory};

use crate::codec::{put_f64, put_u32, put_u64, Cursor};
use crate::crc::crc32;

const MAGIC: &[u8; 4] = b"NCWL";
const VERSION: u32 = 2;
const SEGMENT_HEADER_BYTES: u64 = 16;

/// Upper bound on one WAL frame's payload (16 MiB) — the workspace-wide
/// frame ceiling from `netclus_service::wire`.
pub const MAX_WAL_PAYLOAD: usize = netclus_service::wire::MAX_BATCH_FRAME;

/// WAL configuration.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Directory holding the segments (created if missing).
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_max_bytes: u64,
    /// Issue an fsync every this many appended frames. `1` (the default)
    /// means every batch is durable *before* it is published. Larger
    /// values batch fsyncs for throughput at a durability cost: up to
    /// this many recent batches may be visible to queries but not yet
    /// durable, and a crash loses them — recovery then lands on the
    /// latest durable epoch, not the latest published one.
    pub sync_every_frames: u32,
}

impl WalConfig {
    /// A config writing to `dir` with 4 MiB segments and per-frame fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_max_bytes: 4 << 20,
            sync_every_frames: 1,
        }
    }
}

/// One durable unit: the ops of a published batch, the epoch it
/// published, and the pipeline soft state the batch advanced.
#[derive(Clone, Debug)]
pub struct WalBatch {
    /// Snapshot epoch this batch publishes (gapless chain from the base).
    pub epoch: u64,
    /// The operations, in application order.
    pub ops: Vec<UpdateOp>,
    /// Stream end time of each `AddTrajectory` op, in op order — what a
    /// restarted lifecycle manager needs to resume TTL expiry.
    pub add_times: Vec<f64>,
    /// Per-source high-water sequence numbers advanced by this batch,
    /// sorted by source — what a restarted pipeline needs to resume
    /// duplicate detection.
    pub marks: Vec<(u32, u64)>,
}

/// WAL failure modes.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(io::Error),
    /// A segment file has a bad magic/version header.
    BadSegmentHeader(PathBuf),
    /// An unreadable frame before the tail of the last segment.
    Corrupt {
        /// The segment the bad frame lives in.
        segment: PathBuf,
        /// Byte offset of the frame within the segment.
        offset: u64,
        /// What failed.
        reason: String,
    },
    /// A frame decoded but its contents are invalid (bad op tag, epoch
    /// gap, empty trajectory).
    Malformed(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O failure: {e}"),
            WalError::BadSegmentHeader(p) => {
                write!(f, "not a WAL segment: {}", p.display())
            }
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "corrupt WAL frame in {} at offset {offset}: {reason}",
                segment.display()
            ),
            WalError::Malformed(why) => write!(f, "malformed WAL contents: {why}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Encodes a batch payload (no frame header). `add_times` holds the
/// stream end time of each `AddTrajectory` in `ops`, in op order (exactly
/// one per add op); `marks` the per-source high-water sequence numbers
/// this batch advances, sorted by source.
pub fn encode_batch(
    epoch: u64,
    ops: &[UpdateOp],
    add_times: &[f64],
    marks: &[(u32, u64)],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + ops.len() * 16 + marks.len() * 12);
    put_u64(&mut buf, epoch);
    put_u32(&mut buf, ops.len() as u32);
    let mut times = add_times.iter();
    for op in ops {
        match op {
            UpdateOp::AddTrajectory(t) => {
                buf.push(0);
                let end = times.next().expect("one end time per AddTrajectory op");
                put_f64(&mut buf, *end);
                put_u32(&mut buf, t.nodes().len() as u32);
                for v in t.nodes() {
                    put_u32(&mut buf, v.0);
                }
            }
            UpdateOp::RemoveTrajectory(id) => {
                buf.push(1);
                put_u32(&mut buf, id.0);
            }
            UpdateOp::AddSite(v) => {
                buf.push(2);
                put_u32(&mut buf, v.0);
            }
            UpdateOp::RemoveSite(v) => {
                buf.push(3);
                put_u32(&mut buf, v.0);
            }
        }
    }
    assert!(
        times.next().is_none(),
        "more end times than AddTrajectory ops"
    );
    put_u32(&mut buf, marks.len() as u32);
    for &(source, seq) in marks {
        put_u32(&mut buf, source);
        put_u64(&mut buf, seq);
    }
    buf
}

/// Decodes a batch payload.
pub fn decode_batch(payload: &[u8]) -> Result<WalBatch, WalError> {
    let mut c = Cursor::new(payload);
    let err = |why: &str| WalError::Malformed(why.to_string());
    let epoch = c.u64().ok_or_else(|| err("missing epoch"))?;
    let count = c.u32().ok_or_else(|| err("missing op count"))? as usize;
    let mut ops = Vec::with_capacity(count.min(4_096));
    let mut add_times = Vec::new();
    for _ in 0..count {
        let tag = c.u8().ok_or_else(|| err("missing op tag"))?;
        let op = match tag {
            0 => {
                let end_time = c.f64().ok_or_else(|| err("missing add end time"))?;
                if !end_time.is_finite() {
                    return Err(err("non-finite add end time"));
                }
                let n = c.u32().ok_or_else(|| err("missing node count"))? as usize;
                if n == 0 {
                    return Err(err("empty trajectory"));
                }
                let mut nodes = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    nodes.push(NodeId(c.u32().ok_or_else(|| err("short trajectory"))?));
                }
                add_times.push(end_time);
                UpdateOp::AddTrajectory(Trajectory::new(nodes))
            }
            1 => UpdateOp::RemoveTrajectory(TrajId(
                c.u32().ok_or_else(|| err("missing trajectory id"))?,
            )),
            2 => UpdateOp::AddSite(NodeId(c.u32().ok_or_else(|| err("missing site"))?)),
            3 => UpdateOp::RemoveSite(NodeId(c.u32().ok_or_else(|| err("missing site"))?)),
            _ => return Err(err("unknown op tag")),
        };
        ops.push(op);
    }
    let mark_count = c.u32().ok_or_else(|| err("missing mark count"))? as usize;
    let mut marks = Vec::with_capacity(mark_count.min(4_096));
    for _ in 0..mark_count {
        let source = c.u32().ok_or_else(|| err("short mark"))?;
        let seq = c.u64().ok_or_else(|| err("short mark"))?;
        marks.push((source, seq));
    }
    if !c.exhausted() {
        return Err(err("trailing bytes after marks"));
    }
    Ok(WalBatch {
        epoch,
        ops,
        add_times,
        marks,
    })
}

/// What one append did.
#[derive(Clone, Copy, Debug)]
pub struct AppendInfo {
    /// Bytes written for the frame (header + payload), plus a segment
    /// header when the append rotated.
    pub bytes: u64,
    /// True if this append triggered an fsync.
    pub synced: bool,
    /// True if this append rotated to a new segment.
    pub rotated: bool,
}

/// The appender. One writer per log directory; see the module docs for
/// the format and durability contract.
pub struct WalWriter {
    cfg: WalConfig,
    out: BufWriter<File>,
    segment_index: u64,
    segment_bytes: u64,
    frames_since_sync: u32,
    synced_everything: bool,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.seg"))
}

/// Segment files in `dir`, as `(index, path)` sorted by index.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(index) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((index, path));
        }
    }
    out.sort_unstable_by_key(|&(i, _)| i);
    Ok(out)
}

impl WalWriter {
    /// Opens a writer on `cfg.dir`, starting a fresh segment after any
    /// existing ones (a torn tail from a crashed run is never appended to).
    ///
    /// Any torn tail is first truncated via [`repair_tail`] — once the
    /// fresh segment exists, the previous one is no longer last, where a
    /// torn frame would make every future [`read_wal`] fail as mid-log
    /// corruption.
    pub fn open(cfg: WalConfig) -> io::Result<WalWriter> {
        std::fs::create_dir_all(&cfg.dir)?;
        repair_tail(&cfg.dir).map_err(|e| match e {
            WalError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })?;
        let next_index = list_segments(&cfg.dir)?.last().map_or(0, |&(i, _)| i + 1);
        Ok(WalWriter {
            // `open_segment` fsyncs the header, so recovery sees a
            // well-formed log even if we crash before the first append.
            out: BufWriter::new(open_segment(&cfg.dir, next_index)?),
            cfg,
            segment_index: next_index,
            segment_bytes: SEGMENT_HEADER_BYTES,
            frames_since_sync: 0,
            synced_everything: true,
        })
    }

    /// Appends one frame, rotating and fsyncing per the config. The frame
    /// is on its way to disk when this returns; it is *guaranteed* durable
    /// only once `synced` is reported (or [`WalWriter::sync`] is called).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<AppendInfo> {
        assert!(payload.len() <= MAX_WAL_PAYLOAD, "oversized WAL payload");
        let frame_bytes = 8 + payload.len() as u64;
        let mut info = AppendInfo {
            bytes: frame_bytes,
            synced: false,
            rotated: false,
        };
        if self.segment_bytes + frame_bytes > self.cfg.segment_max_bytes
            && self.segment_bytes > SEGMENT_HEADER_BYTES
        {
            self.rotate()?;
            info.rotated = true;
            info.bytes += SEGMENT_HEADER_BYTES;
        }
        self.out.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(payload).to_le_bytes())?;
        self.out.write_all(payload)?;
        self.segment_bytes += frame_bytes;
        self.frames_since_sync += 1;
        self.synced_everything = false;
        if self.frames_since_sync >= self.cfg.sync_every_frames.max(1) {
            self.sync()?;
            info.synced = true;
        }
        Ok(info)
    }

    /// Flushes and fsyncs outstanding frames. A no-op when everything is
    /// already durable.
    pub fn sync(&mut self) -> io::Result<bool> {
        if self.synced_everything {
            return Ok(false);
        }
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        self.frames_since_sync = 0;
        self.synced_everything = true;
        Ok(true)
    }

    /// The segment currently being appended to.
    pub fn current_segment(&self) -> PathBuf {
        segment_path(&self.cfg.dir, self.segment_index)
    }

    /// Consumes the writer *without* flushing its buffer: frames appended
    /// since the last flush are discarded, exactly as a process crash
    /// would discard them. This is the crash-simulation path
    /// ([`crate::pipeline::Ingestor::abort`] uses it) — a normal drop
    /// flushes the buffer and would make "lost" frames durable after all.
    pub fn simulate_crash(self) {
        let (file, _discarded_buffer) = self.out.into_parts();
        drop(file);
    }

    fn rotate(&mut self) -> io::Result<()> {
        // Seal the old segment fully before the new one exists.
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        self.segment_index += 1;
        self.out = BufWriter::new(open_segment(&self.cfg.dir, self.segment_index)?);
        self.segment_bytes = SEGMENT_HEADER_BYTES;
        self.frames_since_sync = 0;
        self.synced_everything = true;
        Ok(())
    }
}

fn open_segment(dir: &Path, index: u64) -> io::Result<File> {
    let path = segment_path(dir, index);
    let mut f = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)?;
    let mut header = Vec::with_capacity(SEGMENT_HEADER_BYTES as usize);
    header.extend_from_slice(MAGIC);
    put_u32(&mut header, VERSION);
    put_u64(&mut header, index);
    f.write_all(&header)?;
    // The header must be durable before any frame fsync can make the
    // directory entry durable: otherwise a power loss right after
    // rotation can leave a durable entry naming a headerless file.
    f.sync_data()?;
    // fsyncing the file persists its blocks but not the directory entry
    // that names it: without this, a power loss can make a whole
    // fsync-acknowledged segment vanish from the directory listing.
    sync_dir(dir)?;
    Ok(f)
}

/// What [`repair_tail`] did to a log directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TailRepair {
    /// Trailing segments removed because they were too short to hold a
    /// header (a crash between segment creation and the header fsync —
    /// such a file cannot hold any acknowledged frame).
    pub removed_segments: usize,
    /// Bytes truncated off the final segment's torn tail.
    pub truncated_bytes: u64,
}

impl TailRepair {
    /// True if the repair changed the directory at all.
    pub fn repaired(&self) -> bool {
        self.removed_segments > 0 || self.truncated_bytes > 0
    }
}

/// Repairs the log tail in place so the remains of a crash can never end
/// up mid-log on a later run: removes trailing segments too short to hold
/// their header and truncates the final segment to the end of its last
/// valid frame. Corruption — a frame whose bytes are fully present but
/// wrong — is never repaired; [`read_wal`] must keep failing loudly on it.
/// Called by [`WalWriter::open`] before a fresh segment is created and by
/// [`crate::recovery::recover_store`] before replay.
pub fn repair_tail(dir: &Path) -> Result<TailRepair, WalError> {
    let mut repair = TailRepair::default();
    loop {
        let segments = list_segments(dir)?;
        let Some((index, path)) = segments.last() else {
            return Ok(repair);
        };
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        if data.len() < SEGMENT_HEADER_BYTES as usize {
            std::fs::remove_file(path)?;
            sync_dir(dir)?;
            repair.removed_segments += 1;
            // The now-last segment was sealed by the rotation that
            // created the removed one, but re-scan it anyway: open()
            // itself can crash between repair and the header fsync.
            continue;
        }
        if &data[0..4] != MAGIC
            || u32::from_le_bytes(data[4..8].try_into().unwrap()) != VERSION
            || u64::from_le_bytes(data[8..16].try_into().unwrap()) != *index
        {
            // A full but wrong header is corruption, not a torn write.
            return Ok(repair);
        }
        let mut offset = SEGMENT_HEADER_BYTES as usize;
        while offset < data.len() {
            match read_frame(&data, offset) {
                Ok((_, next)) => offset = next,
                Err(FrameError::Truncated) => {
                    let file = OpenOptions::new().write(true).open(path)?;
                    file.set_len(offset as u64)?;
                    // Truncation is a metadata change: sync_all, not
                    // sync_data, makes the new length durable.
                    file.sync_all()?;
                    repair.truncated_bytes += (data.len() - offset) as u64;
                    break;
                }
                Err(FrameError::Corrupt(_)) => break,
            }
        }
        return Ok(repair);
    }
}

/// fsyncs the directory inode so newly created segment files survive a
/// power loss. Best-effort where directories cannot be opened as files
/// (non-POSIX platforms).
fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Result of scanning a WAL directory.
#[derive(Debug)]
pub struct ReplayLog {
    /// The decoded batches, in append order.
    pub batches: Vec<WalBatch>,
    /// Total frame bytes read (excluding segment headers).
    pub bytes: u64,
    /// Segments scanned.
    pub segments: usize,
    /// True if the last segment ended in a torn/unreadable frame (the
    /// normal signature of a crash mid-append).
    pub truncated_tail: bool,
}

/// Reads every durable batch from the log directory. See the module docs
/// for the tail-truncation contract. A missing directory is an empty log.
pub fn read_wal(dir: &Path) -> Result<ReplayLog, WalError> {
    let segments = list_segments(dir)?;
    let mut log = ReplayLog {
        batches: Vec::new(),
        bytes: 0,
        segments: segments.len(),
        truncated_tail: false,
    };
    for (pos, (index, path)) in segments.iter().enumerate() {
        let last_segment = pos + 1 == segments.len();
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        if data.len() < SEGMENT_HEADER_BYTES as usize {
            if last_segment {
                // A crash between rotation creating this file and its
                // header fsync: the empty form of a torn tail — no frame
                // in it can ever have been acknowledged.
                log.truncated_tail = true;
                continue;
            }
            return Err(WalError::BadSegmentHeader(path.clone()));
        }
        if &data[0..4] != MAGIC
            || u32::from_le_bytes(data[4..8].try_into().unwrap()) != VERSION
            || u64::from_le_bytes(data[8..16].try_into().unwrap()) != *index
        {
            return Err(WalError::BadSegmentHeader(path.clone()));
        }
        let mut offset = SEGMENT_HEADER_BYTES as usize;
        while offset < data.len() {
            match read_frame(&data, offset) {
                Ok((payload, next)) => {
                    log.batches.push(decode_batch(payload)?);
                    log.bytes += (next - offset) as u64;
                    offset = next;
                }
                // A frame extending past EOF in the last segment is the
                // signature of a crash mid-append: the rest of the log is
                // exactly what was durable.
                Err(FrameError::Truncated) if last_segment => {
                    log.truncated_tail = true;
                    break;
                }
                // Anything else — a checksum mismatch or implausible
                // length with the frame's bytes fully present, or
                // truncation before the final segment — is corruption of
                // durable data and must fail loudly: appends are strictly
                // sequential, so a bad frame with valid data after it can
                // never be a torn write.
                Err(FrameError::Truncated) => {
                    return Err(WalError::Corrupt {
                        segment: path.clone(),
                        offset: offset as u64,
                        reason: "segment truncated before the log tail".to_string(),
                    });
                }
                Err(FrameError::Corrupt(reason)) => {
                    return Err(WalError::Corrupt {
                        segment: path.clone(),
                        offset: offset as u64,
                        reason,
                    });
                }
            }
        }
    }
    Ok(log)
}

/// Why a frame failed to read: extends past EOF (a torn append) vs. bytes
/// present but wrong (corruption). The distinction decides whether replay
/// may stop cleanly or must fail.
#[derive(Debug)]
enum FrameError {
    Truncated,
    Corrupt(String),
}

/// Reads the frame starting at `offset`; returns its payload slice and the
/// offset past it, or the failure reason.
fn read_frame(data: &[u8], offset: usize) -> Result<(&[u8], usize), FrameError> {
    if offset + 8 > data.len() {
        return Err(FrameError::Truncated);
    }
    let len = u32::from_le_bytes(data[offset..offset + 4].try_into().unwrap()) as usize;
    let stored = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().unwrap());
    if len > MAX_WAL_PAYLOAD {
        // The length prefix is written before any payload byte, so a
        // fully-present-but-absurd value is corruption, not a torn write.
        return Err(FrameError::Corrupt(format!(
            "implausible frame length {len}"
        )));
    }
    let start = offset + 8;
    let end = start + len;
    if end > data.len() {
        return Err(FrameError::Truncated);
    }
    let payload = &data[start..end];
    let computed = crc32(payload);
    if computed != stored {
        return Err(FrameError::Corrupt(format!(
            "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    Ok((payload, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("netclus-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn add(nodes: &[u32]) -> UpdateOp {
        UpdateOp::AddTrajectory(Trajectory::new(nodes.iter().map(|&n| NodeId(n)).collect()))
    }

    /// Encodes `ops` with a zero end time per add and no marks.
    fn batch(epoch: u64, ops: &[UpdateOp]) -> Vec<u8> {
        let times: Vec<f64> = ops
            .iter()
            .filter(|op| matches!(op, UpdateOp::AddTrajectory(_)))
            .map(|_| 0.0)
            .collect();
        encode_batch(epoch, ops, &times, &[])
    }

    fn ops_eq(a: &[UpdateOp], b: &[UpdateOp]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| match (x, y) {
                (UpdateOp::AddTrajectory(s), UpdateOp::AddTrajectory(t)) => s == t,
                (UpdateOp::RemoveTrajectory(s), UpdateOp::RemoveTrajectory(t)) => s == t,
                (UpdateOp::AddSite(s), UpdateOp::AddSite(t)) => s == t,
                (UpdateOp::RemoveSite(s), UpdateOp::RemoveSite(t)) => s == t,
                _ => false,
            })
    }

    #[test]
    fn batch_payload_roundtrip() {
        let ops = vec![
            add(&[1, 2, 3]),
            UpdateOp::RemoveTrajectory(TrajId(7)),
            add(&[4, 5]),
            UpdateOp::AddSite(NodeId(9)),
            UpdateOp::RemoveSite(NodeId(4)),
        ];
        let times = [120.5, 260.0];
        let marks = [(1u32, 17u64), (6, 3)];
        let payload = encode_batch(42, &ops, &times, &marks);
        let decoded = decode_batch(&payload).unwrap();
        assert_eq!(decoded.epoch, 42);
        assert!(ops_eq(&decoded.ops, &ops));
        assert_eq!(decoded.add_times, times);
        assert_eq!(decoded.marks, marks);
    }

    #[test]
    fn append_read_roundtrip_with_sync_batching() {
        let dir = tmp_dir("roundtrip");
        let mut w = WalWriter::open(WalConfig {
            sync_every_frames: 3,
            ..WalConfig::new(&dir)
        })
        .unwrap();
        let mut syncs = 0;
        for epoch in 1..=7u64 {
            let info = w.append(&batch(epoch, &[add(&[epoch as u32])])).unwrap();
            syncs += info.synced as u32;
        }
        assert_eq!(syncs, 2, "7 frames at sync_every=3 → 2 automatic fsyncs");
        assert!(w.sync().unwrap(), "tail still needed a sync");
        assert!(!w.sync().unwrap(), "second sync is a no-op");
        drop(w);

        let log = read_wal(&dir).unwrap();
        assert_eq!(log.batches.len(), 7);
        assert!(!log.truncated_tail);
        for (i, b) in log.batches.iter().enumerate() {
            assert_eq!(b.epoch, i as u64 + 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dir = tmp_dir("rotate");
        let mut w = WalWriter::open(WalConfig {
            segment_max_bytes: 256,
            ..WalConfig::new(&dir)
        })
        .unwrap();
        let mut rotations = 0;
        for epoch in 1..=40u64 {
            let info = w.append(&batch(epoch, &[add(&[1, 2, 3, 4, 5])])).unwrap();
            rotations += info.rotated as u32;
        }
        drop(w);
        assert!(rotations >= 2, "expected rotations, got {rotations}");
        let log = read_wal(&dir).unwrap();
        assert!(log.segments >= 3);
        assert_eq!(log.batches.len(), 40);
        let epochs: Vec<u64> = log.batches.iter().map(|b| b.epoch).collect();
        assert_eq!(epochs, (1..=40).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_cleanly() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
        for epoch in 1..=3u64 {
            w.append(&batch(epoch, &[add(&[1])])).unwrap();
        }
        let segment = w.current_segment();
        drop(w);
        // Chop 3 bytes off the last frame: a torn append.
        let data = std::fs::read(&segment).unwrap();
        std::fs::write(&segment, &data[..data.len() - 3]).unwrap();
        let log = read_wal(&dir).unwrap();
        assert_eq!(log.batches.len(), 2);
        assert!(log.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let dir = tmp_dir("corrupt");
        // Two segments; corrupt a frame in the first.
        let mut w = WalWriter::open(WalConfig {
            segment_max_bytes: 128,
            ..WalConfig::new(&dir)
        })
        .unwrap();
        let first_segment = w.current_segment();
        for epoch in 1..=10u64 {
            w.append(&batch(epoch, &[add(&[1, 2, 3, 4])])).unwrap();
        }
        assert_ne!(w.current_segment(), first_segment, "need ≥ 2 segments");
        drop(w);
        let mut data = std::fs::read(&first_segment).unwrap();
        let n = data.len();
        data[n - 2] ^= 0xFF;
        std::fs::write(&first_segment, &data).unwrap();
        assert!(matches!(read_wal(&dir), Err(WalError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_last_segment_is_a_hard_error() {
        // A checksum mismatch with the frame's bytes fully present is
        // corruption of durable data, even in the last segment — only
        // truncation at EOF may be treated as a torn tail.
        for victim in [1usize, 2] {
            let dir = tmp_dir(&format!("last-corrupt-{victim}"));
            let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
            let mut frame_starts = Vec::new();
            let mut offset = SEGMENT_HEADER_BYTES;
            for epoch in 1..=3u64 {
                frame_starts.push(offset);
                let info = w.append(&batch(epoch, &[add(&[1, 2])])).unwrap();
                offset += info.bytes;
            }
            let segment = w.current_segment();
            drop(w);
            // Flip a payload byte of the victim frame (middle, then final).
            let mut data = std::fs::read(&segment).unwrap();
            let idx = frame_starts[victim] as usize + 10;
            data[idx] ^= 0xFF;
            std::fs::write(&segment, &data).unwrap();
            assert!(
                matches!(read_wal(&dir), Err(WalError::Corrupt { .. })),
                "victim frame {victim} not detected as corruption"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn reopen_starts_a_fresh_segment() {
        let dir = tmp_dir("reopen");
        let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
        w.append(&batch(1, &[add(&[1])])).unwrap();
        let first = w.current_segment();
        drop(w);
        let w2 = WalWriter::open(WalConfig::new(&dir)).unwrap();
        assert_ne!(w2.current_segment(), first);
        drop(w2);
        let log = read_wal(&dir).unwrap();
        assert_eq!(log.batches.len(), 1);
        assert_eq!(log.segments, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression test for the torn-tail-then-restart sequence: a crash
    /// mid-append leaves a torn tail in segment N; the restarted writer
    /// creates segment N+1 — without the open-time repair, segment N is
    /// no longer last and every later read would hard-fail as mid-log
    /// corruption, permanently.
    #[test]
    fn torn_tail_is_repaired_on_reopen() {
        let dir = tmp_dir("torn-reopen");
        let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
        for epoch in 1..=3u64 {
            w.append(&batch(epoch, &[add(&[1])])).unwrap();
        }
        let segment = w.current_segment();
        drop(w);
        // Chop 3 bytes off the last frame: epoch 3 was torn mid-append.
        let data = std::fs::read(&segment).unwrap();
        std::fs::write(&segment, &data[..data.len() - 3]).unwrap();

        // Restart: open repairs the tail, then the log keeps working —
        // across this and any number of future restarts.
        let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
        w.append(&batch(3, &[add(&[7])])).unwrap();
        drop(w);
        let w = WalWriter::open(WalConfig::new(&dir)).unwrap();
        drop(w);

        let log = read_wal(&dir).unwrap();
        assert!(!log.truncated_tail);
        let epochs: Vec<u64> = log.batches.iter().map(|b| b.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_truncates_torn_tail_and_is_idempotent() {
        let dir = tmp_dir("repair");
        let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
        for epoch in 1..=2u64 {
            w.append(&batch(epoch, &[add(&[1, 2])])).unwrap();
        }
        let segment = w.current_segment();
        drop(w);
        let data = std::fs::read(&segment).unwrap();
        std::fs::write(&segment, &data[..data.len() - 5]).unwrap();

        let repair = repair_tail(&dir).unwrap();
        assert_eq!(
            repair.truncated_bytes as usize,
            data.len() - 5 - {
                // everything after frame 1's end is gone
                let (_, end) = read_frame(&data[..], SEGMENT_HEADER_BYTES as usize).unwrap();
                end
            }
        );
        assert!(repair.repaired());
        assert_eq!(repair_tail(&dir).unwrap(), TailRepair::default());
        let log = read_wal(&dir).unwrap();
        assert_eq!(log.batches.len(), 1);
        assert!(!log.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A final segment shorter than its header (crash between rotation
    /// and the header fsync) is an empty torn tail for the reader, and
    /// repair removes it so a later writer starts cleanly.
    #[test]
    fn headerless_final_segment_is_tolerated_and_repaired() {
        let dir = tmp_dir("headerless");
        let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
        w.append(&batch(1, &[add(&[4])])).unwrap();
        drop(w);
        std::fs::write(segment_path(&dir, 1), b"NCWL\x02\x00").unwrap();

        let log = read_wal(&dir).unwrap();
        assert_eq!(log.batches.len(), 1);
        assert!(log.truncated_tail);

        let repair = repair_tail(&dir).unwrap();
        assert_eq!(repair.removed_segments, 1);
        assert_eq!(repair.truncated_bytes, 0);
        let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
        w.append(&batch(2, &[add(&[5])])).unwrap();
        drop(w);
        let log = read_wal(&dir).unwrap();
        assert_eq!(log.batches.len(), 2);
        assert!(!log.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Corruption (bytes present but wrong) must never be "repaired"
    /// away — replay keeps failing loudly on it.
    #[test]
    fn repair_leaves_corruption_alone() {
        let dir = tmp_dir("repair-corrupt");
        let mut w = WalWriter::open(WalConfig::new(&dir)).unwrap();
        for epoch in 1..=2u64 {
            w.append(&batch(epoch, &[add(&[1, 2, 3])])).unwrap();
        }
        let segment = w.current_segment();
        drop(w);
        let mut data = std::fs::read(&segment).unwrap();
        let n = data.len();
        data[n - 2] ^= 0xFF;
        std::fs::write(&segment, &data).unwrap();

        assert_eq!(repair_tail(&dir).unwrap(), TailRepair::default());
        assert_eq!(std::fs::read(&segment).unwrap(), data, "file untouched");
        assert!(matches!(read_wal(&dir), Err(WalError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// `simulate_crash` must lose the buffered (un-synced) tail exactly
    /// as a real crash would — a plain drop would flush it to disk.
    #[test]
    fn simulate_crash_discards_buffered_frames() {
        let dir = tmp_dir("simulate-crash");
        let mut w = WalWriter::open(WalConfig {
            sync_every_frames: u32::MAX,
            ..WalConfig::new(&dir)
        })
        .unwrap();
        w.append(&batch(1, &[add(&[1])])).unwrap();
        w.sync().unwrap(); // epoch 1 durable
        w.append(&batch(2, &[add(&[2])])).unwrap(); // epoch 2 buffered only
        w.simulate_crash();
        let log = read_wal(&dir).unwrap();
        assert_eq!(log.batches.len(), 1, "buffered frame must be lost");
        assert_eq!(log.batches[0].epoch, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_empty_log() {
        let log = read_wal(Path::new("/nonexistent/netclus-wal")).unwrap();
        assert!(log.batches.is_empty());
        assert_eq!(log.segments, 0);
    }

    #[test]
    fn malformed_batch_contents_rejected() {
        assert!(matches!(
            decode_batch(&batch(1, &[])[..8]),
            Err(WalError::Malformed(_))
        ));
        let mut payload = batch(1, &[add(&[5])]);
        payload.push(0xAB); // trailing junk
        assert!(matches!(
            decode_batch(&payload),
            Err(WalError::Malformed(_))
        ));
    }
}
