//! Crash recovery: rebuild the exact pre-crash epoch state from the WAL.
//!
//! Recovery is a fold: start from the **base state** (the road network,
//! trajectory corpus and index the crashed process started from — epoch 0
//! of its [`SnapshotStore`]) and re-apply every durable WAL batch in
//! order. Because every pipeline decision that shapes a batch is
//! deterministic (id prediction, stream-time TTL — see
//! [`crate::lifecycle`]), and the batches themselves are replayed
//! verbatim, the recovered store reaches the same epoch with an identical
//! corpus and index as the crashed process had published.
//!
//! The epoch recorded in each frame makes the chain self-verifying:
//! replay fails loudly on a gap instead of silently rebuilding a state
//! that never existed.

use std::path::Path;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use netclus::NetClusIndex;
use netclus_roadnet::RoadNetwork;
use netclus_service::{IngestMetrics, SnapshotStore};
use netclus_trajectory::TrajectorySet;

use crate::wal::{read_wal, repair_tail, TailRepair, WalError};

/// What a recovery run did.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Batches replayed.
    pub batches: u64,
    /// Update operations re-applied.
    pub ops: u64,
    /// Operations the store rejected on replay (no-ops also logged by the
    /// original run, e.g. removing an already-dead trajectory).
    pub rejected_ops: u64,
    /// WAL frame bytes read.
    pub bytes: u64,
    /// True if the log ended in a torn frame (dropped, exactly as the
    /// crashed process never published it) — whether found during the
    /// scan or already truncated away by the pre-replay tail repair.
    pub truncated_tail: bool,
    /// What the pre-replay [`repair_tail`] pass did to the directory.
    pub tail_repair: TailRepair,
    /// Wall-clock replay time.
    pub replay_time: Duration,
    /// The recovered epoch (= batches, from an epoch-0 base).
    pub epoch: u64,
}

/// Replays the WAL in `wal_dir` over the base state, returning the
/// recovered store. `metrics`, when given, records replay time and batch
/// count for the ingest report.
///
/// Before replaying, the log tail is repaired in place ([`repair_tail`]):
/// a torn frame left by a mid-append crash is truncated away so it can
/// never end up mid-log — tolerated once, then fatal — on a later run.
pub fn recover_store(
    net: RoadNetwork,
    trajs: TrajectorySet,
    index: NetClusIndex,
    wal_dir: &Path,
    metrics: Option<&IngestMetrics>,
) -> Result<(SnapshotStore, RecoveryReport), WalError> {
    let t = Instant::now();
    let tail_repair = repair_tail(wal_dir)?;
    let log = read_wal(wal_dir)?;
    let store = SnapshotStore::new(net, trajs, index);
    let mut report = RecoveryReport {
        batches: 0,
        ops: 0,
        rejected_ops: 0,
        bytes: log.bytes,
        truncated_tail: log.truncated_tail || tail_repair.repaired(),
        tail_repair,
        replay_time: Duration::ZERO,
        epoch: 0,
    };
    for batch in &log.batches {
        let expected = store.epoch() + 1;
        if batch.epoch != expected {
            return Err(WalError::Malformed(format!(
                "epoch chain broken: frame publishes {} but the store is at {}",
                batch.epoch,
                expected - 1
            )));
        }
        let receipt = store.apply(&batch.ops);
        debug_assert_eq!(receipt.epoch, expected);
        report.batches += 1;
        report.ops += batch.ops.len() as u64;
        report.rejected_ops += receipt.rejected as u64;
    }
    report.epoch = store.epoch();
    report.replay_time = t.elapsed();
    if let Some(m) = metrics {
        m.replay_micros
            .fetch_add(report.replay_time.as_micros() as u64, Ordering::Relaxed);
        m.replay_batches
            .fetch_add(report.batches, Ordering::Relaxed);
    }
    Ok((store, report))
}
