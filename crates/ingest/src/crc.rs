//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) over byte slices.
//!
//! Hand-rolled because the workspace is dependency-free; the table is
//! computed at compile time. This is the checksum guarding both the
//! stream-record frames ([`crate::record`]) and the WAL frames
//! ([`crate::wal`]), so a corrupted or torn frame is detected before its
//! payload is ever interpreted.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (IEEE reflected form, initial/final XOR `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"netclus wal frame payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8u8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
