//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) over byte slices.
//!
//! The implementation now lives in [`netclus_service::framing`] — one
//! shared definition guards the stream-record frames ([`crate::record`]),
//! the WAL frames ([`crate::wal`]) *and* the service's telemetry endpoint,
//! so every framed byte in the workspace is checked the same way. This
//! module re-exports it under the historical path and keeps the known
//! test vectors pinned against the shared table.

pub use netclus_service::framing::crc32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"netclus wal frame payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8u8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
