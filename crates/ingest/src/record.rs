//! Framed GPS stream records: the wire format raw traces arrive in.
//!
//! A producer (vehicle gateway, log shipper, test generator) emits one
//! frame per completed trip:
//!
//! ```text
//! ┌───────────┬───────────┬──────────────────────────────────────────┐
//! │ len: u32  │ crc: u32  │ payload (len bytes)                      │
//! └───────────┴───────────┴──────────────────────────────────────────┘
//! payload = source: u32 | seq: u64 | fixes: u32 | fixes × (x,y,t: f64)
//! ```
//!
//! Everything is little-endian; `crc` is CRC-32 (IEEE) over the payload.
//! `seq` is a **per-source sequence number**: sources number their records
//! monotonically so the pipeline can drop duplicates on at-least-once
//! transports (see [`crate::pipeline`]).
//!
//! Decoding is paranoid: frames with bad checksums, truncated payloads,
//! non-finite coordinates or non-monotone timestamps are rejected as
//! [`RecordError`]s instead of panicking downstream — a malformed producer
//! must never take the ingest pipeline down.

use std::fmt;
use std::io::{self, Read, Write};

use netclus_roadnet::Point;
use netclus_trajectory::{GpsPoint, GpsTrace};

use crate::codec::{put_f64, put_u32, put_u64, Cursor};
use crate::crc::crc32;

/// Upper bound on one frame's payload (1 MiB ≈ 43k fixes) — a corrupt
/// length prefix must not trigger a giant allocation. Defined with every
/// other wire limit in `netclus_service::wire`.
pub const MAX_RECORD_PAYLOAD: usize = netclus_service::wire::MAX_RECORD_FRAME;

/// One raw GPS trace in flight: who sent it, its per-source sequence
/// number, and the fixes.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamRecord {
    /// Producer id (vehicle / gateway).
    pub source: u32,
    /// Per-source monotone sequence number (duplicate detection).
    pub seq: u64,
    /// The raw trace.
    pub trace: GpsTrace,
}

/// Why a frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// The underlying reader failed.
    Io(String),
    /// The stream ended inside a frame.
    Truncated,
    /// The payload checksum did not match.
    BadCrc {
        /// CRC stored in the frame header.
        stored: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// The length prefix exceeds [`MAX_RECORD_PAYLOAD`].
    TooLarge(usize),
    /// The payload decoded to an invalid record.
    Malformed(&'static str),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Io(e) => write!(f, "record read failed: {e}"),
            RecordError::Truncated => f.write_str("stream ended inside a frame"),
            RecordError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            RecordError::TooLarge(n) => write!(f, "frame payload of {n} bytes exceeds the limit"),
            RecordError::Malformed(why) => write!(f, "malformed record payload: {why}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl StreamRecord {
    /// Encodes the payload (no frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let fixes = self.trace.points();
        let mut buf = Vec::with_capacity(16 + fixes.len() * 24);
        put_u32(&mut buf, self.source);
        put_u64(&mut buf, self.seq);
        put_u32(&mut buf, fixes.len() as u32);
        for p in fixes {
            put_f64(&mut buf, p.pos.x);
            put_f64(&mut buf, p.pos.y);
            put_f64(&mut buf, p.t);
        }
        buf
    }

    /// Encodes the full frame: `len | crc | payload`.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }

    /// Writes the framed record to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.encode_frame())
    }

    /// Decodes a payload (the bytes after the frame header), validating
    /// structure, coordinate finiteness and timestamp monotonicity.
    pub fn decode_payload(payload: &[u8]) -> Result<StreamRecord, RecordError> {
        let mut c = Cursor::new(payload);
        let source = c.u32().ok_or(RecordError::Malformed("missing source"))?;
        let seq = c.u64().ok_or(RecordError::Malformed("missing seq"))?;
        let n = c.u32().ok_or(RecordError::Malformed("missing fix count"))? as usize;
        // 24 bytes per fix must fit the remaining payload exactly.
        if payload.len() != 16 + n * 24 {
            return Err(RecordError::Malformed("fix count disagrees with length"));
        }
        let mut fixes = Vec::with_capacity(n);
        let mut last_t = f64::NEG_INFINITY;
        for _ in 0..n {
            let x = c.f64().ok_or(RecordError::Malformed("short fix"))?;
            let y = c.f64().ok_or(RecordError::Malformed("short fix"))?;
            let t = c.f64().ok_or(RecordError::Malformed("short fix"))?;
            if !x.is_finite() || !y.is_finite() || !t.is_finite() {
                return Err(RecordError::Malformed("non-finite coordinate or time"));
            }
            if t < last_t {
                return Err(RecordError::Malformed("timestamps not non-decreasing"));
            }
            last_t = t;
            fixes.push(GpsPoint::new(Point::new(x, y), t));
        }
        debug_assert!(c.exhausted());
        Ok(StreamRecord {
            source,
            seq,
            trace: GpsTrace::new(fixes),
        })
    }
}

/// Streaming decoder over any `io::Read`, yielding one record (or error)
/// per frame.
///
/// A clean end-of-stream at a frame boundary ends iteration; EOF inside a
/// frame yields [`RecordError::Truncated`]. After a [`RecordError::BadCrc`]
/// or [`RecordError::Malformed`] frame the reader stays in sync (the length
/// prefix was valid) and continues with the next frame.
pub struct RecordReader<R: Read> {
    reader: R,
    done: bool,
}

impl<R: Read> RecordReader<R> {
    /// Wraps a byte stream.
    pub fn new(reader: R) -> Self {
        RecordReader {
            reader,
            done: false,
        }
    }

    fn read_frame(&mut self) -> Option<Result<StreamRecord, RecordError>> {
        let mut header = [0u8; 8];
        match read_exact_or_eof(&mut self.reader, &mut header) {
            Ok(ReadOutcome::Eof) => {
                self.done = true;
                return None;
            }
            Ok(ReadOutcome::Partial) => {
                self.done = true;
                return Some(Err(RecordError::Truncated));
            }
            Ok(ReadOutcome::Full) => {}
            Err(e) => {
                self.done = true;
                return Some(Err(RecordError::Io(e.to_string())));
            }
        }
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD_PAYLOAD {
            // The framing can no longer be trusted.
            self.done = true;
            return Some(Err(RecordError::TooLarge(len)));
        }
        let mut payload = vec![0u8; len];
        match read_exact_or_eof(&mut self.reader, &mut payload) {
            Ok(ReadOutcome::Full) => {}
            Ok(_) => {
                self.done = true;
                return Some(Err(RecordError::Truncated));
            }
            Err(e) => {
                self.done = true;
                return Some(Err(RecordError::Io(e.to_string())));
            }
        }
        let computed = crc32(&payload);
        if computed != stored {
            return Some(Err(RecordError::BadCrc { stored, computed }));
        }
        Some(StreamRecord::decode_payload(&payload))
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// Fills `buf` from `r`, distinguishing a clean EOF before any byte from a
/// truncation mid-buffer.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

impl<R: Read> Iterator for RecordReader<R> {
    type Item = Result<StreamRecord, RecordError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        self.read_frame()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(source: u32, seq: u64, fixes: &[(f64, f64, f64)]) -> StreamRecord {
        StreamRecord {
            source,
            seq,
            trace: GpsTrace::new(
                fixes
                    .iter()
                    .map(|&(x, y, t)| GpsPoint::new(Point::new(x, y), t))
                    .collect(),
            ),
        }
    }

    #[test]
    fn roundtrip_preserves_records() {
        let records = vec![
            record(1, 0, &[(0.0, 0.0, 0.0), (10.0, 5.0, 2.0)]),
            record(2, 7, &[(3.5, -1.25, 100.0)]),
            record(1, 1, &[]),
        ];
        let mut bytes = Vec::new();
        for r in &records {
            r.write_to(&mut bytes).unwrap();
        }
        let decoded: Vec<StreamRecord> =
            RecordReader::new(&bytes[..]).map(|r| r.unwrap()).collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn encoding_is_deterministic() {
        let r = record(9, 42, &[(1.0, 2.0, 3.0), (4.0, 5.0, 6.0)]);
        assert_eq!(r.encode_frame(), r.encode_frame());
    }

    #[test]
    fn corrupt_byte_is_detected_and_reader_resyncs() {
        let a = record(1, 0, &[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]);
        let b = record(1, 1, &[(2.0, 2.0, 2.0)]);
        let mut bytes = Vec::new();
        a.write_to(&mut bytes).unwrap();
        b.write_to(&mut bytes).unwrap();
        // Flip a payload byte of the first frame.
        bytes[12] ^= 0xFF;
        let results: Vec<_> = RecordReader::new(&bytes[..]).collect();
        assert_eq!(results.len(), 2);
        assert!(matches!(results[0], Err(RecordError::BadCrc { .. })));
        assert_eq!(results[1].as_ref().unwrap(), &b);
    }

    #[test]
    fn truncated_tail_is_an_error_not_a_panic() {
        let r = record(1, 0, &[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]);
        let mut bytes = Vec::new();
        r.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        let results: Vec<_> = RecordReader::new(&bytes[..]).collect();
        assert_eq!(results, vec![Err(RecordError::Truncated)]);
    }

    #[test]
    fn invalid_payloads_are_rejected() {
        // Non-monotone timestamps, built by hand (GpsTrace::new would
        // panic on this input — decoding must not).
        let mut payload = Vec::new();
        put_u32(&mut payload, 1);
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 2);
        for &(x, y, t) in &[(0.0, 0.0, 5.0), (1.0, 1.0, 4.0)] {
            put_f64(&mut payload, x);
            put_f64(&mut payload, y);
            put_f64(&mut payload, t);
        }
        assert_eq!(
            StreamRecord::decode_payload(&payload),
            Err(RecordError::Malformed("timestamps not non-decreasing"))
        );

        // Non-finite coordinate.
        let mut payload = Vec::new();
        put_u32(&mut payload, 1);
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 1);
        put_f64(&mut payload, f64::NAN);
        put_f64(&mut payload, 0.0);
        put_f64(&mut payload, 0.0);
        assert_eq!(
            StreamRecord::decode_payload(&payload),
            Err(RecordError::Malformed("non-finite coordinate or time"))
        );

        // Fix count lying about the payload length.
        let mut payload = Vec::new();
        put_u32(&mut payload, 1);
        put_u64(&mut payload, 0);
        put_u32(&mut payload, 99);
        assert_eq!(
            StreamRecord::decode_payload(&payload),
            Err(RecordError::Malformed("fix count disagrees with length"))
        );
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, (MAX_RECORD_PAYLOAD + 1) as u32);
        put_u32(&mut bytes, 0);
        let results: Vec<_> = RecordReader::new(&bytes[..]).collect();
        assert_eq!(
            results,
            vec![Err(RecordError::TooLarge(MAX_RECORD_PAYLOAD + 1))]
        );
    }
}
