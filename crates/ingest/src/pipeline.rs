//! The staged ingest pipeline: intake → parallel map matching → lifecycle
//! batching → WAL → snapshot publication.
//!
//! ```text
//!             submit() / ingest_reader()
//!                      │  per-source seq dedup
//!                      ▼
//!            ┌──────────────────┐   BoundedQueue (block / drop-oldest /
//!            │      intake      │   reject backpressure)
//!            └──────────────────┘
//!               ▼    ▼    ▼
//!        match workers (Viterbi map matching, parallel)
//!               │    │    │
//!               └────┼────┘  mpsc
//!                    ▼
//!            publisher thread
//!              lifecycle (id prediction, stream-time TTL)
//!              batch by op count or deadline
//!              WAL append (+ fsync batching)   ←— durable *before* …
//!              SnapshotStore::apply            ←— … it is visible
//! ```
//!
//! The publisher must be the **only writer** of its [`SnapshotStore`]:
//! id prediction and the WAL's gapless epoch chain both depend on it (the
//! publish path asserts this). Readers are unrestricted — that is the
//! point of the snapshot store.
//!
//! **Durable before visible** holds exactly with
//! [`WalConfig::sync_every_frames`]` = 1` (the default): every batch is
//! fsynced before `SnapshotStore::apply` makes it visible, and recovery
//! lands on the exact pre-crash epoch. Larger values trade that for
//! throughput — an appended-but-not-yet-fsynced batch is already visible
//! to queries, and a crash loses it (recovery lands on the latest
//! *durable* epoch). [`Ingestor::abort`] simulates the crash faithfully:
//! the WAL writer's buffer is discarded, never flushed.
//!
//! **Restart.** [`Ingestor::start`] folds the pipeline's durable soft
//! state back out of the WAL: per-source dedup watermarks resume from the
//! high-water marks recorded with each batch (an at-least-once producer's
//! retries of already-published records stay duplicates across a crash),
//! and the TTL lifecycle resumes from the recorded stream end time of
//! every still-live trajectory (the sliding window keeps sliding). The
//! store must match the log — recover it from the same WAL directory
//! first (see [`crate::recovery`]) — or `start` refuses to run.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{self, Read};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use netclus_roadnet::GridIndex;
use netclus_service::{IngestMetrics, SnapshotStore, Stage, UpdateOp, UpdateSink};
use netclus_trajectory::{MapMatcher, Trajectory};

use crate::lifecycle::LifecycleManager;
use crate::queue::{BackpressurePolicy, BoundedQueue, PushOutcome};
use crate::record::{RecordReader, StreamRecord};
use crate::wal::{encode_batch, read_wal, repair_tail, ReplayLog, WalConfig, WalError, WalWriter};

/// How often blocked pipeline threads re-check the abort flag.
const POLL: Duration = Duration::from_millis(20);

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// The map matcher (shared parameters; each worker runs its own
    /// Dijkstra state).
    pub matcher: MapMatcher,
    /// Parallel map-match workers.
    pub match_workers: usize,
    /// Intake queue capacity.
    pub queue_capacity: usize,
    /// What a full intake queue does to new records.
    pub policy: BackpressurePolicy,
    /// Publish a batch once it holds this many ops…
    pub max_batch_ops: usize,
    /// …or once the oldest pending op has waited this long.
    pub max_batch_delay: Duration,
    /// Stream-time TTL after which an ingested trajectory is retired
    /// (`None` = never).
    pub ttl_s: Option<f64>,
    /// Write-ahead log settings.
    pub wal: WalConfig,
}

impl IngestConfig {
    /// Defaults for a WAL in `dir`: 2 workers, blocking backpressure,
    /// 64-op / 50 ms batches, no TTL, per-batch fsync.
    pub fn new(wal_dir: impl Into<std::path::PathBuf>) -> Self {
        IngestConfig {
            matcher: MapMatcher::default(),
            match_workers: 2,
            queue_capacity: 1_024,
            policy: BackpressurePolicy::Block,
            max_batch_ops: 64,
            max_batch_delay: Duration::from_millis(50),
            ttl_s: None,
            wal: WalConfig::new(wal_dir),
        }
    }
}

/// Intake counters returned by [`Ingestor::ingest_reader`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntakeSummary {
    /// Records admitted into the match queue.
    pub accepted: u64,
    /// Per-source sequence duplicates dropped.
    pub duplicates: u64,
    /// Records shed by backpressure (rejected or displaced).
    pub shed: u64,
    /// Frames that failed to decode.
    pub malformed: u64,
}

/// What [`Ingestor::submit`] did with a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted into the match queue.
    Accepted,
    /// Admitted; the oldest queued record was displaced to make room.
    AcceptedDroppedOldest,
    /// Dropped as a per-source sequence duplicate.
    Duplicate,
    /// Shed by backpressure (queue full under `Reject`, or closed).
    Shed,
}

/// A record stamped at admission. The stamp rides through matching and
/// batching into [`publish`], where the admission→visibility gap becomes
/// the end-to-end freshness measurement.
struct AdmittedRecord {
    record: StreamRecord,
    admitted_at: Instant,
}

/// A successfully matched record on its way to the publisher. Carries its
/// provenance so the publisher can record the per-source high-water mark
/// in the WAL batch it lands in, and its admission stamp for the
/// freshness histogram.
struct Matched {
    traj: Trajectory,
    end_time_s: f64,
    source: u32,
    seq: u64,
    admitted_at: Instant,
}

/// Per-source bookkeeping shared by intake, match workers and the
/// publisher: the admission watermark (duplicate detection) and the
/// ordered set of admitted-but-unaccounted sequence numbers.
///
/// The in-flight set is what makes the WAL's per-source *high-water*
/// marks sound. Parallel match workers can finish one source's records
/// out of order; if the publisher persisted mark 5 while seq 4 of the
/// same source was still being matched, a crash would classify 4's
/// at-least-once retry as a duplicate — silent record loss. The
/// publisher therefore only publishes a source's **lowest** in-flight
/// seq ([`SourceTracker::is_next`]), parking later arrivals until the
/// gap resolves (published, match-failed, or displaced), so every
/// persisted mark covers only accounted records.
#[derive(Debug, Default)]
struct SourceTracker {
    map: Mutex<HashMap<u32, SourceState>>,
}

#[derive(Debug, Default)]
struct SourceState {
    /// Highest seq ever admitted — the intake dedup watermark.
    admitted: Option<u64>,
    /// Admitted seqs not yet published, match-failed, or displaced.
    inflight: BTreeSet<u64>,
}

impl SourceTracker {
    /// A tracker whose admission watermarks resume from recovered WAL
    /// marks (nothing is in flight in a fresh process).
    fn seeded(marks: HashMap<u32, u64>) -> Self {
        SourceTracker {
            map: Mutex::new(
                marks
                    .into_iter()
                    .map(|(source, seq)| {
                        (
                            source,
                            SourceState {
                                admitted: Some(seq),
                                inflight: BTreeSet::new(),
                            },
                        )
                    })
                    .collect(),
            ),
        }
    }

    /// Intake step 1: returns false if `seq` is a duplicate, else
    /// provisionally registers it in flight — *before* the record becomes
    /// poppable, so no downstream stage can ever see a seq the tracker
    /// doesn't know. The caller then either [`SourceTracker::confirm`]s
    /// the admission or rolls it back with [`SourceTracker::settle`] when
    /// the queue sheds the record.
    fn begin_admit(&self, source: u32, seq: u64) -> bool {
        let mut map = self.map.lock().expect("tracker lock poisoned");
        let state = map.entry(source).or_default();
        if state.admitted.is_some_and(|last| seq <= last) {
            return false;
        }
        state.inflight.insert(seq);
        true
    }

    /// Intake step 2: the queue admitted the record — advance the
    /// duplicate-detection watermark. (A source is one producer, so its
    /// submits are sequential; concurrent *distinct* sources never share
    /// an entry.)
    fn confirm(&self, source: u32, seq: u64) {
        let mut map = self.map.lock().expect("tracker lock poisoned");
        let state = map.entry(source).or_default();
        state.admitted = Some(state.admitted.map_or(seq, |last| last.max(seq)));
    }

    /// Accounts for `seq`: published, match-failed, displaced by
    /// drop-oldest, or rolled back after a shed — in every case it stops
    /// blocking the source's publish order.
    fn settle(&self, source: u32, seq: u64) {
        let mut map = self.map.lock().expect("tracker lock poisoned");
        if let Some(state) = map.get_mut(&source) {
            state.inflight.remove(&seq);
        }
    }

    /// True when `seq` is the lowest in-flight seq of `source` — the only
    /// position the publisher may publish.
    fn is_next(&self, source: u32, seq: u64) -> bool {
        let map = self.map.lock().expect("tracker lock poisoned");
        map.get(&source)
            .is_some_and(|state| state.inflight.first() == Some(&seq))
    }
}

/// Pipeline soft state folded back out of the WAL on start: what a
/// restarted ingestor needs so dedup and TTL expiry survive a crash.
struct DurableState {
    /// Per-source high-water sequence numbers of published records.
    marks: HashMap<u32, u64>,
    /// Live (added, never removed) trajectories with their stream end
    /// times.
    live: Vec<(u32, f64)>,
    /// The stream clock at the last published batch.
    watermark_s: f64,
}

/// Folds the replayed log into the pipeline's resumable soft state.
/// `id_bound` is the recovered store's trajectory id bound: since ids are
/// dense and predicted, the k-th add in the log received id
/// `id_bound - total adds + k`.
fn fold_durable_state(log: &ReplayLog, id_bound: u32) -> io::Result<DurableState> {
    let total_adds: usize = log.batches.iter().map(|b| b.add_times.len()).sum();
    let mut next = (id_bound as usize).checked_sub(total_adds).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "store/WAL mismatch: the log holds more trajectory inserts than the \
                 store's id bound — this WAL does not belong to this store's base state",
        )
    })? as u32;
    let mut live: HashMap<u32, f64> = HashMap::new();
    let mut marks: HashMap<u32, u64> = HashMap::new();
    let mut watermark_s = f64::NEG_INFINITY;
    for batch in &log.batches {
        let mut times = batch.add_times.iter();
        for op in &batch.ops {
            match op {
                UpdateOp::AddTrajectory(_) => {
                    // Alignment is guaranteed by `decode_batch`.
                    let end_time_s = times.next().copied().unwrap_or(0.0);
                    live.insert(next, end_time_s);
                    watermark_s = watermark_s.max(end_time_s);
                    next += 1;
                }
                UpdateOp::RemoveTrajectory(id) => {
                    live.remove(&id.0);
                }
                UpdateOp::AddSite(_) | UpdateOp::RemoveSite(_) => {}
            }
        }
        for &(source, seq) in &batch.marks {
            let entry = marks.entry(source).or_insert(seq);
            *entry = (*entry).max(seq);
        }
    }
    Ok(DurableState {
        marks,
        live: live.into_iter().collect(),
        watermark_s,
    })
}

/// The running pipeline. Create with [`Ingestor::start`], feed with
/// [`Ingestor::submit`] or [`Ingestor::ingest_reader`], and end with
/// [`Ingestor::finish`] (graceful drain) or [`Ingestor::abort`] (simulated
/// crash: everything not yet WAL-appended is lost, exactly as a real crash
/// would lose it).
pub struct Ingestor {
    intake: Arc<BoundedQueue<AdmittedRecord>>,
    policy: BackpressurePolicy,
    /// Per-source admission watermarks and in-flight seqs, shared with
    /// the match workers and the publisher.
    tracker: Arc<SourceTracker>,
    metrics: Arc<IngestMetrics>,
    abort: Arc<AtomicBool>,
    /// Fault-injection hook: while set, the publisher keeps batching but
    /// stops publishing, so admitted records age without becoming
    /// visible (see [`Ingestor::set_publish_stall`]).
    stall: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl Ingestor {
    /// Opens the WAL and starts the match workers and the publisher.
    ///
    /// `store` is the live snapshot store the pipeline publishes into —
    /// the pipeline must be its only writer. `grid` must index the
    /// store's road network.
    ///
    /// On a non-empty WAL directory this is a **restart**: the per-source
    /// dedup watermarks and the TTL state of live trajectories are folded
    /// back out of the log, and the store must already sit at the log's
    /// last epoch (recover it with [`crate::recovery::recover_store`]
    /// first) — a mismatched store is rejected with `InvalidInput` rather
    /// than silently forking the epoch chain.
    ///
    /// `start` scans the log itself rather than taking recovery output,
    /// so it cannot be handed stale or mismatched state; the recover-
    /// then-start sequence therefore reads the log twice. The cost is
    /// one startup pass, linear in log size.
    pub fn start(
        store: Arc<SnapshotStore>,
        grid: Arc<GridIndex>,
        cfg: IngestConfig,
        metrics: Arc<IngestMetrics>,
    ) -> io::Result<Ingestor> {
        Self::start_with_sink(store, grid, cfg, metrics)
    }

    /// [`Ingestor::start`] over any [`UpdateSink`] — the same pipeline
    /// publishing into a replicated
    /// [`ShardRouter`](netclus_service::ShardRouter) instead of a
    /// monolithic store, wiring ingest into sharded serving end to end.
    /// Every durability and restart rule of `start` holds unchanged: the
    /// sink must sit exactly at the WAL's last epoch, and the pipeline
    /// must be the sink's only writer.
    pub fn start_with_sink(
        sink: Arc<dyn UpdateSink>,
        grid: Arc<GridIndex>,
        cfg: IngestConfig,
        metrics: Arc<IngestMetrics>,
    ) -> io::Result<Ingestor> {
        // Repair, read and validate the existing log BEFORE the writer
        // runs: a rejected start must not leave a fresh (empty) segment
        // behind on every retry. The repair is idempotent maintenance the
        // writer would do anyway.
        let to_io = |e: WalError| io::Error::new(io::ErrorKind::InvalidData, e.to_string());
        std::fs::create_dir_all(&cfg.wal.dir)?;
        repair_tail(&cfg.wal.dir).map_err(to_io)?;
        let log = read_wal(&cfg.wal.dir).map_err(to_io)?;

        let net = sink.sink_net();
        let next_id = sink.sink_traj_id_bound() as u32;
        let epoch = sink.sink_epoch();

        let logged_epoch = log.batches.last().map_or(0, |b| b.epoch);
        if logged_epoch != epoch {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "store/WAL mismatch: the log ends at epoch {logged_epoch} but the store \
                     is at {epoch}. The pipeline requires the store to sit exactly at the \
                     log's last epoch (recovery replays from the epoch-0 base): recover the \
                     store from this WAL directory, or start from the store's epoch-0 base \
                     state with an empty directory"
                ),
            ));
        }
        let durable = fold_durable_state(&log, next_id)?;
        drop(log);

        let wal = WalWriter::open(cfg.wal.clone())?;
        let intake = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let abort = Arc::new(AtomicBool::new(false));
        let stall = Arc::new(AtomicBool::new(false));
        let tracker = Arc::new(SourceTracker::seeded(durable.marks));
        let (tx, rx) = channel::<Matched>();

        let mut handles = Vec::with_capacity(cfg.match_workers + 1);
        for i in 0..cfg.match_workers.max(1) {
            let intake = Arc::clone(&intake);
            let abort = Arc::clone(&abort);
            let metrics = Arc::clone(&metrics);
            let net = Arc::clone(&net);
            let grid = Arc::clone(&grid);
            let tracker = Arc::clone(&tracker);
            let matcher = cfg.matcher.clone();
            let tx = tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ingest-match-{i}"))
                    .spawn(move || {
                        match_loop(
                            &intake, &abort, &metrics, &net, &grid, &matcher, &tracker, &tx,
                        )
                    })
                    .expect("spawn match worker"),
            );
        }
        drop(tx); // publisher ends when every worker is gone

        {
            let abort = Arc::clone(&abort);
            let stall = Arc::clone(&stall);
            let metrics = Arc::clone(&metrics);
            let intake = Arc::clone(&intake);
            let tracker = Arc::clone(&tracker);
            let lifecycle =
                LifecycleManager::resume(next_id, cfg.ttl_s, durable.watermark_s, durable.live);
            let max_batch_ops = cfg.max_batch_ops.max(1);
            let max_batch_delay = cfg.max_batch_delay;
            handles.push(
                std::thread::Builder::new()
                    .name("ingest-publish".to_string())
                    .spawn(move || {
                        publish_loop(
                            rx,
                            sink,
                            wal,
                            lifecycle,
                            &tracker,
                            &intake,
                            &abort,
                            &stall,
                            &metrics,
                            max_batch_ops,
                            max_batch_delay,
                        )
                    })
                    .expect("spawn publisher"),
            );
        }

        Ok(Ingestor {
            intake,
            policy: cfg.policy,
            tracker,
            metrics,
            abort,
            stall,
            handles,
        })
    }

    /// Fault injection: while `on`, the publisher keeps draining the
    /// match workers and batching, but stops making batches durable and
    /// visible — admitted records age, the `visibility_lag_us` gauge
    /// rises, and the freshness SLO eventually fires. Clearing the stall
    /// publishes the backlog on the next publisher tick. A graceful
    /// [`Ingestor::finish`] ignores the stall so shutdown always drains.
    pub fn set_publish_stall(&self, on: bool) {
        self.stall.store(on, Ordering::Release);
    }

    /// Offers one record to the pipeline: per-source duplicates are
    /// dropped, then the backpressure policy decides admission.
    pub fn submit(&self, record: StreamRecord) -> SubmitOutcome {
        let (source, seq) = (record.source, record.seq);
        // Register in flight *before* the record becomes poppable, so a
        // worker can never process a seq the tracker doesn't know about.
        if !self.tracker.begin_admit(source, seq) {
            self.metrics
                .records_duplicate
                .fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Duplicate;
        }
        let admitted = AdmittedRecord {
            record,
            // The freshness clock starts here: everything downstream
            // (queueing, matching, batching, WAL append, publish) counts
            // against ingest-to-visibility lag.
            admitted_at: Instant::now(),
        };
        let (push, displaced) = self.intake.push_reporting(admitted, self.policy);
        if let Some(d) = displaced {
            // A drop-oldest eviction is intentional loss (freshest-data
            // wins): account the displaced record so it never blocks its
            // source's publish order.
            self.tracker.settle(d.record.source, d.record.seq);
        }
        match push {
            PushOutcome::Accepted => {
                self.tracker.confirm(source, seq);
                self.metrics.records_in.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Accepted
            }
            PushOutcome::AcceptedDroppedOldest => {
                self.tracker.confirm(source, seq);
                self.metrics.records_in.fetch_add(1, Ordering::Relaxed);
                self.metrics.records_dropped.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::AcceptedDroppedOldest
            }
            PushOutcome::Rejected | PushOutcome::Closed => {
                // The watermark moves only on admission: a shed record
                // was never taken, so the upstream retry it is owed must
                // not be mistaken for a duplicate. Roll the provisional
                // in-flight entry back.
                self.tracker.settle(source, seq);
                self.metrics.records_dropped.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Shed
            }
        }
    }

    /// Decodes framed records from `r` and submits each, returning the
    /// intake tally. Undecodable frames are counted and skipped (the
    /// framing resyncs); a truncated or failing stream ends the read.
    pub fn ingest_reader<R: Read>(&self, r: R) -> IntakeSummary {
        let mut summary = IntakeSummary::default();
        let mut reader = RecordReader::new(r);
        loop {
            // Per-frame decode timing (includes the blocking read of the
            // frame's bytes — what an ingest probe actually waits on).
            let t = Instant::now();
            let Some(result) = reader.next() else { break };
            self.metrics.stages.record(Stage::Decode, t.elapsed());
            match result {
                Ok(record) => match self.submit(record) {
                    SubmitOutcome::Accepted => summary.accepted += 1,
                    SubmitOutcome::AcceptedDroppedOldest => {
                        summary.accepted += 1;
                        summary.shed += 1;
                    }
                    SubmitOutcome::Duplicate => summary.duplicates += 1,
                    SubmitOutcome::Shed => summary.shed += 1,
                },
                Err(_) => {
                    summary.malformed += 1;
                    self.metrics
                        .records_malformed
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        summary
    }

    /// This pipeline's metrics handle.
    pub fn metrics(&self) -> Arc<IngestMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Records waiting in the intake queue.
    pub fn backlog(&self) -> usize {
        self.intake.len()
    }

    /// Graceful shutdown: drains the intake queue, matches everything,
    /// publishes the final partial batch and fsyncs the WAL tail.
    pub fn finish(mut self) {
        self.stop(true);
    }

    /// Simulated crash: queued and in-flight records are discarded, the
    /// publisher stops between batches, and the WAL writer's in-memory
    /// buffer is thrown away rather than flushed. Exactly what was
    /// already flushed to the OS survives into recovery — with
    /// `sync_every_frames = 1` that is every published batch; with
    /// larger values the un-synced tail is lost, as a real crash would
    /// lose it.
    pub fn abort(mut self) {
        self.stop(false);
    }

    fn stop(&mut self, graceful: bool) {
        if graceful {
            self.intake.close();
        } else {
            self.abort.store(true, Ordering::Release);
            let discarded = self.intake.close_and_clear() as u64;
            self.metrics
                .records_dropped
                .fetch_add(discarded, Ordering::Relaxed);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Ingestor {
    fn drop(&mut self) {
        self.stop(true);
    }
}

/// Match-worker body: pop, Viterbi-match, forward.
#[allow(clippy::too_many_arguments)]
fn match_loop(
    intake: &BoundedQueue<AdmittedRecord>,
    abort: &AtomicBool,
    metrics: &IngestMetrics,
    net: &netclus_roadnet::RoadNetwork,
    grid: &GridIndex,
    matcher: &MapMatcher,
    tracker: &SourceTracker,
    tx: &Sender<Matched>,
) {
    while !abort.load(Ordering::Acquire) {
        let Some(admitted) = intake.pop() else {
            return;
        };
        let (record, admitted_at) = (admitted.record, admitted.admitted_at);
        let end_time_s = record.trace.points().last().map_or(0.0, |p| p.t);
        let t = Instant::now();
        match matcher.match_trace(net, grid, &record.trace) {
            Ok(traj) => {
                metrics.match_latency.record(t.elapsed());
                metrics.stages.record(Stage::Match, t.elapsed());
                metrics.records_matched.fetch_add(1, Ordering::Relaxed);
                let matched = Matched {
                    traj,
                    end_time_s,
                    source: record.source,
                    seq: record.seq,
                    admitted_at,
                };
                if tx.send(matched).is_err() {
                    return; // publisher is gone
                }
            }
            Err(_) => {
                // A failed match never reaches the WAL, so its seq is not
                // in the durable marks either: a post-crash retry is
                // re-admitted, fails the same way, and changes nothing.
                // Settling it unblocks any later seq of the same source
                // the publisher is holding back.
                tracker.settle(record.source, record.seq);
                metrics.match_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The batch under assembly plus the soft state riding along with it
/// into its WAL frame: the stream end time of each pending add (op
/// order) and the per-source high-water marks the batch advances.
#[derive(Default)]
struct PendingBatch {
    ops: Vec<UpdateOp>,
    add_times: Vec<f64>,
    marks: HashMap<u32, u64>,
    /// Admission stamp of every record in the batch — measured against
    /// publish time for the freshness histogram.
    admitted: Vec<Instant>,
}

impl PendingBatch {
    /// Admission stamp of the batch's oldest record.
    fn oldest_admitted(&self) -> Option<Instant> {
        self.admitted.iter().min().copied()
    }
}

/// Matched records parked by the publisher because a lower admitted seq
/// of their source is still in flight, keyed source → seq → record.
type Waiting = HashMap<u32, BTreeMap<u64, Matched>>;

/// Routes an arriving record: admit it to the batch if it is its
/// source's lowest in-flight seq (then drain anything it unblocked),
/// park it otherwise.
fn accept_in_order(
    matched: Matched,
    waiting: &mut Waiting,
    tracker: &SourceTracker,
    lifecycle: &mut LifecycleManager,
    batch: &mut PendingBatch,
    metrics: &IngestMetrics,
) {
    let source = matched.source;
    if tracker.is_next(source, matched.seq) {
        admit_to_batch(matched, tracker, lifecycle, batch, metrics);
        drain_source(source, waiting, tracker, lifecycle, batch, metrics);
    } else {
        waiting
            .entry(source)
            .or_default()
            .insert(matched.seq, matched);
    }
}

/// Admits every parked record of `source` that has become its lowest
/// in-flight seq.
fn drain_source(
    source: u32,
    waiting: &mut Waiting,
    tracker: &SourceTracker,
    lifecycle: &mut LifecycleManager,
    batch: &mut PendingBatch,
    metrics: &IngestMetrics,
) {
    let Some(queue) = waiting.get_mut(&source) else {
        return;
    };
    while let Some(entry) = queue.first_entry() {
        if !tracker.is_next(source, *entry.key()) {
            break;
        }
        let matched = entry.remove();
        admit_to_batch(matched, tracker, lifecycle, batch, metrics);
    }
    if queue.is_empty() {
        waiting.remove(&source);
    }
}

/// Sweeps every parked source — match failures settle seqs without a
/// message to the publisher, so parked records are re-checked on each
/// poll tick.
fn drain_waiting(
    waiting: &mut Waiting,
    tracker: &SourceTracker,
    lifecycle: &mut LifecycleManager,
    batch: &mut PendingBatch,
    metrics: &IngestMetrics,
) {
    let sources: Vec<u32> = waiting.keys().copied().collect();
    for source in sources {
        drain_source(source, waiting, tracker, lifecycle, batch, metrics);
    }
}

/// Appends one matched record to the batch: lifecycle ops, soft state,
/// in-flight settlement, metrics.
fn admit_to_batch(
    matched: Matched,
    tracker: &SourceTracker,
    lifecycle: &mut LifecycleManager,
    batch: &mut PendingBatch,
    metrics: &IngestMetrics,
) {
    tracker.settle(matched.source, matched.seq);
    batch.add_times.push(matched.end_time_s);
    batch.admitted.push(matched.admitted_at);
    let mark = batch.marks.entry(matched.source).or_insert(matched.seq);
    *mark = (*mark).max(matched.seq);
    let before = batch.ops.len();
    lifecycle.admit(matched.traj, matched.end_time_s, &mut batch.ops);
    let retired = (batch.ops.len() - before).saturating_sub(1) as u64;
    metrics.trajs_retired.fetch_add(retired, Ordering::Relaxed);
}

/// Publisher body: order per source, batch, WAL, publish. Sole writer of
/// `sink`.
#[allow(clippy::too_many_arguments)]
fn publish_loop(
    rx: Receiver<Matched>,
    sink: Arc<dyn UpdateSink>,
    mut wal: WalWriter,
    mut lifecycle: LifecycleManager,
    tracker: &SourceTracker,
    intake: &BoundedQueue<AdmittedRecord>,
    abort: &AtomicBool,
    stall: &AtomicBool,
    metrics: &IngestMetrics,
    max_batch_ops: usize,
    max_batch_delay: Duration,
) {
    // An unrecoverable WAL failure must take the whole pipeline down, not
    // just this thread: raising the abort flag stops the match workers and
    // closing the intake wakes producers blocked in `submit` (who would
    // otherwise wait forever on a queue nobody drains).
    let fail = |metrics: &IngestMetrics| {
        abort.store(true, Ordering::Release);
        let discarded = intake.close_and_clear() as u64;
        metrics
            .records_dropped
            .fetch_add(discarded, Ordering::Relaxed);
    };
    let mut batch = PendingBatch::default();
    let mut waiting: Waiting = HashMap::new();
    let mut deadline: Option<Instant> = None;
    loop {
        if abort.load(Ordering::Acquire) {
            // Crash simulation: pending (un-appended) ops are lost, and
            // so is the writer's buffer — a drop would flush it.
            wal.simulate_crash();
            return;
        }
        let timeout = deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(POLL)
            .min(POLL);
        match rx.recv_timeout(timeout) {
            Ok(matched) => {
                accept_in_order(
                    matched,
                    &mut waiting,
                    tracker,
                    &mut lifecycle,
                    &mut batch,
                    metrics,
                );
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Every worker exited. On an abort that can race the
                // top-of-loop check — crash semantics must still win.
                if abort.load(Ordering::Acquire) {
                    wal.simulate_crash();
                    return;
                }
                // Graceful end: every in-flight seq is now settled or in
                // the channel (drained above), so parked records resolve
                // completely; then flush the tail.
                drain_waiting(&mut waiting, tracker, &mut lifecycle, &mut batch, metrics);
                debug_assert!(waiting.is_empty(), "records parked past shutdown");
                if !batch.ops.is_empty() && !publish(&*sink, &mut wal, &mut batch, metrics) {
                    fail(metrics);
                    return;
                }
                if let Ok(synced) = wal.sync() {
                    metrics
                        .wal_syncs
                        .fetch_add(synced as u64, Ordering::Relaxed);
                }
                // Everything admitted is now visible.
                metrics.visibility_lag_us.store(0, Ordering::Relaxed);
                return;
            }
        }
        // Out-of-band settles (match failures, drop-oldest displacements)
        // never message the publisher, so parked sources are swept every
        // iteration — not just on idle ticks, which sustained traffic
        // would starve into unbounded parking.
        if !waiting.is_empty() {
            drain_waiting(&mut waiting, tracker, &mut lifecycle, &mut batch, metrics);
        }
        // Refresh the visibility-lag gauge: the age of the oldest
        // admitted-but-unpublished record this thread knows about (the
        // pending batch plus parked out-of-order records), 0 when caught
        // up. This is the recoverable freshness signal health gates on.
        let oldest = batch
            .oldest_admitted()
            .into_iter()
            .chain(
                waiting
                    .values()
                    .flat_map(|q| q.values().map(|m| m.admitted_at)),
            )
            .min();
        let lag_us = oldest.map_or(0, |t| t.elapsed().as_micros() as u64);
        metrics.visibility_lag_us.store(lag_us, Ordering::Relaxed);
        // Batch-boundary decisions are shared by the arrival and poll
        // paths: publish on size, or arm/fire the delay deadline. An
        // injected stall skips all of them — batching continues, nothing
        // becomes visible, and the gauge above keeps climbing.
        if stall.load(Ordering::Acquire) {
            continue;
        }
        if batch.ops.len() >= max_batch_ops {
            if !publish(&*sink, &mut wal, &mut batch, metrics) {
                fail(metrics);
                return;
            }
            deadline = None;
        } else if batch.ops.is_empty() {
            deadline = None;
        } else if deadline.is_some_and(|d| Instant::now() >= d) {
            if !publish(&*sink, &mut wal, &mut batch, metrics) {
                fail(metrics);
                return;
            }
            deadline = None;
        } else if deadline.is_none() {
            deadline = Some(Instant::now() + max_batch_delay);
        }
    }
}

/// Makes the pending batch durable, then visible, as the next epoch,
/// recording its add end times and per-source marks alongside it. Returns
/// false on an unrecoverable WAL failure (the pipeline stops publishing).
fn publish(
    sink: &dyn UpdateSink,
    wal: &mut WalWriter,
    batch: &mut PendingBatch,
    metrics: &IngestMetrics,
) -> bool {
    let epoch = sink.sink_epoch() + 1;
    let mut marks: Vec<(u32, u64)> = batch.marks.iter().map(|(&s, &q)| (s, q)).collect();
    marks.sort_unstable();
    let payload = encode_batch(epoch, &batch.ops, &batch.add_times, &marks);
    let t = Instant::now();
    let info = match wal.append(&payload) {
        Ok(info) => info,
        Err(e) => {
            eprintln!("[ingest] WAL append failed, stopping publisher: {e}");
            return false;
        }
    };
    metrics.stages.record(Stage::WalAppend, t.elapsed());
    let receipt = sink.apply_batch(&batch.ops);
    metrics.publish_latency.record(t.elapsed());
    metrics.stages.record(Stage::Publish, t.elapsed());
    assert_eq!(
        receipt.epoch, epoch,
        "ingest pipeline must be its sink's only writer"
    );
    metrics.batches_published.fetch_add(1, Ordering::Relaxed);
    metrics
        .ops_published
        .fetch_add(batch.ops.len() as u64, Ordering::Relaxed);
    metrics.wal_frames.fetch_add(1, Ordering::Relaxed);
    metrics.wal_bytes.fetch_add(info.bytes, Ordering::Relaxed);
    metrics
        .wal_syncs
        .fetch_add(info.synced as u64, Ordering::Relaxed);
    // The batch is durable and visible: close each record's freshness
    // measurement (admission stamp → now, i.e. queryable visibility).
    let now = Instant::now();
    for admitted_at in batch.admitted.drain(..) {
        metrics
            .freshness
            .record(now.saturating_duration_since(admitted_at));
    }
    batch.ops.clear();
    batch.add_times.clear();
    batch.marks.clear();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclus_roadnet::NodeId;

    fn matched(source: u32, seq: u64, end_time_s: f64) -> Matched {
        Matched {
            traj: Trajectory::new(vec![NodeId(seq as u32), NodeId(seq as u32 + 1)]),
            end_time_s,
            source,
            seq,
            admitted_at: Instant::now(),
        }
    }

    /// Regression test for the durable-mark soundness hole: with parallel
    /// workers a later seq can finish matching first. The publisher must
    /// park it — publishing it would persist a high-water mark covering
    /// the still-in-flight lower seq, and a crash would then drop that
    /// record's at-least-once retry as a duplicate.
    #[test]
    fn out_of_order_matches_are_parked_until_the_gap_resolves() {
        let tracker = SourceTracker::default();
        assert!(tracker.begin_admit(1, 0));
        assert!(tracker.begin_admit(1, 1));
        let mut waiting: Waiting = HashMap::new();
        let mut lifecycle = LifecycleManager::new(0, None);
        let mut batch = PendingBatch::default();
        let metrics = IngestMetrics::default();

        // seq 1 finishes matching first: parked, nothing published, no
        // mark recorded.
        accept_in_order(
            matched(1, 1, 20.0),
            &mut waiting,
            &tracker,
            &mut lifecycle,
            &mut batch,
            &metrics,
        );
        assert!(batch.ops.is_empty());
        assert!(batch.marks.is_empty());
        assert_eq!(waiting[&1].len(), 1);

        // seq 0 lands: both publish, in admission order, mark exact.
        accept_in_order(
            matched(1, 0, 10.0),
            &mut waiting,
            &tracker,
            &mut lifecycle,
            &mut batch,
            &metrics,
        );
        assert_eq!(batch.ops.len(), 2);
        assert_eq!(batch.add_times, vec![10.0, 20.0], "admission order");
        assert_eq!(batch.marks[&1], 1);
        assert!(waiting.is_empty());
    }

    /// A match failure settles its seq without a publisher message; the
    /// poll-tick sweep must then release the parked later seq.
    #[test]
    fn match_failure_unblocks_parked_records() {
        let tracker = SourceTracker::default();
        assert!(tracker.begin_admit(7, 3));
        assert!(tracker.begin_admit(7, 4));
        let mut waiting: Waiting = HashMap::new();
        let mut lifecycle = LifecycleManager::new(0, None);
        let mut batch = PendingBatch::default();
        let metrics = IngestMetrics::default();

        accept_in_order(
            matched(7, 4, 5.0),
            &mut waiting,
            &tracker,
            &mut lifecycle,
            &mut batch,
            &metrics,
        );
        assert!(batch.ops.is_empty(), "seq 3 still in flight");

        tracker.settle(7, 3); // the worker reports seq 3's match failure
        drain_waiting(&mut waiting, &tracker, &mut lifecycle, &mut batch, &metrics);
        assert_eq!(batch.ops.len(), 1);
        assert_eq!(batch.marks[&7], 4);
        assert!(waiting.is_empty());
    }

    /// Intake bookkeeping: duplicates are detected against the confirmed
    /// watermark, shed records roll back cleanly, and a drop-oldest
    /// eviction settles the displaced seq.
    #[test]
    fn tracker_admission_lifecycle() {
        let tracker = SourceTracker::default();
        assert!(tracker.begin_admit(2, 5));
        tracker.confirm(2, 5);
        assert!(!tracker.begin_admit(2, 5), "re-send is a duplicate");
        assert!(!tracker.begin_admit(2, 4), "older seq is a duplicate");

        // A shed record rolls back: the same seq is retryable.
        assert!(tracker.begin_admit(2, 6));
        tracker.settle(2, 6); // queue rejected it
        assert!(tracker.begin_admit(2, 6), "shed record must stay retryable");
        tracker.confirm(2, 6);
        assert!(tracker.is_next(2, 5), "seq 5 is still the lowest in flight");
        assert!(!tracker.is_next(2, 6));
        tracker.settle(2, 5); // seq 5 publishes
        assert!(tracker.is_next(2, 6));
        tracker.settle(2, 6);
        assert!(!tracker.is_next(2, 6));
    }

    /// Marks seeded from the WAL classify redelivered seqs as duplicates.
    #[test]
    fn seeded_tracker_resumes_dedup() {
        let tracker = SourceTracker::seeded(HashMap::from([(9, 41u64)]));
        assert!(!tracker.begin_admit(9, 41));
        assert!(!tracker.begin_admit(9, 0));
        assert!(tracker.begin_admit(9, 42));
    }
}
