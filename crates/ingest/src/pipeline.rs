//! The staged ingest pipeline: intake → parallel map matching → lifecycle
//! batching → WAL → snapshot publication.
//!
//! ```text
//!             submit() / ingest_reader()
//!                      │  per-source seq dedup
//!                      ▼
//!            ┌──────────────────┐   BoundedQueue (block / drop-oldest /
//!            │      intake      │   reject backpressure)
//!            └──────────────────┘
//!               ▼    ▼    ▼
//!        match workers (Viterbi map matching, parallel)
//!               │    │    │
//!               └────┼────┘  mpsc
//!                    ▼
//!            publisher thread
//!              lifecycle (id prediction, stream-time TTL)
//!              batch by op count or deadline
//!              WAL append (+ fsync batching)   ←— durable *before* …
//!              SnapshotStore::apply            ←— … it is visible
//! ```
//!
//! The publisher must be the **only writer** of its [`SnapshotStore`]:
//! id prediction and the WAL's gapless epoch chain both depend on it (the
//! publish path asserts this). Readers are unrestricted — that is the
//! point of the snapshot store.

use std::collections::HashMap;
use std::io::{self, Read};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use netclus_roadnet::GridIndex;
use netclus_service::{IngestMetrics, SnapshotStore, UpdateOp};
use netclus_trajectory::{MapMatcher, Trajectory};

use crate::lifecycle::LifecycleManager;
use crate::queue::{BackpressurePolicy, BoundedQueue, PushOutcome};
use crate::record::{RecordReader, StreamRecord};
use crate::wal::{encode_batch, WalConfig, WalWriter};

/// How often blocked pipeline threads re-check the abort flag.
const POLL: Duration = Duration::from_millis(20);

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// The map matcher (shared parameters; each worker runs its own
    /// Dijkstra state).
    pub matcher: MapMatcher,
    /// Parallel map-match workers.
    pub match_workers: usize,
    /// Intake queue capacity.
    pub queue_capacity: usize,
    /// What a full intake queue does to new records.
    pub policy: BackpressurePolicy,
    /// Publish a batch once it holds this many ops…
    pub max_batch_ops: usize,
    /// …or once the oldest pending op has waited this long.
    pub max_batch_delay: Duration,
    /// Stream-time TTL after which an ingested trajectory is retired
    /// (`None` = never).
    pub ttl_s: Option<f64>,
    /// Write-ahead log settings.
    pub wal: WalConfig,
}

impl IngestConfig {
    /// Defaults for a WAL in `dir`: 2 workers, blocking backpressure,
    /// 64-op / 50 ms batches, no TTL, per-batch fsync.
    pub fn new(wal_dir: impl Into<std::path::PathBuf>) -> Self {
        IngestConfig {
            matcher: MapMatcher::default(),
            match_workers: 2,
            queue_capacity: 1_024,
            policy: BackpressurePolicy::Block,
            max_batch_ops: 64,
            max_batch_delay: Duration::from_millis(50),
            ttl_s: None,
            wal: WalConfig::new(wal_dir),
        }
    }
}

/// Intake counters returned by [`Ingestor::ingest_reader`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntakeSummary {
    /// Records admitted into the match queue.
    pub accepted: u64,
    /// Per-source sequence duplicates dropped.
    pub duplicates: u64,
    /// Records shed by backpressure (rejected or displaced).
    pub shed: u64,
    /// Frames that failed to decode.
    pub malformed: u64,
}

/// What [`Ingestor::submit`] did with a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted into the match queue.
    Accepted,
    /// Admitted; the oldest queued record was displaced to make room.
    AcceptedDroppedOldest,
    /// Dropped as a per-source sequence duplicate.
    Duplicate,
    /// Shed by backpressure (queue full under `Reject`, or closed).
    Shed,
}

/// A successfully matched record on its way to the publisher.
struct Matched {
    traj: Trajectory,
    end_time_s: f64,
}

/// The running pipeline. Create with [`Ingestor::start`], feed with
/// [`Ingestor::submit`] or [`Ingestor::ingest_reader`], and end with
/// [`Ingestor::finish`] (graceful drain) or [`Ingestor::abort`] (simulated
/// crash: everything not yet WAL-appended is lost, exactly as a real crash
/// would lose it).
pub struct Ingestor {
    intake: Arc<BoundedQueue<StreamRecord>>,
    policy: BackpressurePolicy,
    /// Per-source high-water sequence numbers for duplicate detection.
    dedup: Mutex<HashMap<u32, u64>>,
    metrics: Arc<IngestMetrics>,
    abort: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl Ingestor {
    /// Opens the WAL and starts the match workers and the publisher.
    ///
    /// `store` is the live snapshot store the pipeline publishes into —
    /// the pipeline must be its only writer. `grid` must index the
    /// store's road network.
    pub fn start(
        store: Arc<SnapshotStore>,
        grid: Arc<GridIndex>,
        cfg: IngestConfig,
        metrics: Arc<IngestMetrics>,
    ) -> io::Result<Ingestor> {
        let wal = WalWriter::open(cfg.wal.clone())?;
        let intake = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let abort = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<Matched>();

        let base = store.load();
        let net = base.net_shared();
        let next_id = base.trajs().id_bound() as u32;
        drop(base);

        let mut handles = Vec::with_capacity(cfg.match_workers + 1);
        for i in 0..cfg.match_workers.max(1) {
            let intake = Arc::clone(&intake);
            let abort = Arc::clone(&abort);
            let metrics = Arc::clone(&metrics);
            let net = Arc::clone(&net);
            let grid = Arc::clone(&grid);
            let matcher = cfg.matcher.clone();
            let tx = tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ingest-match-{i}"))
                    .spawn(move || {
                        match_loop(&intake, &abort, &metrics, &net, &grid, &matcher, &tx)
                    })
                    .expect("spawn match worker"),
            );
        }
        drop(tx); // publisher ends when every worker is gone

        {
            let abort = Arc::clone(&abort);
            let metrics = Arc::clone(&metrics);
            let intake = Arc::clone(&intake);
            let lifecycle = LifecycleManager::new(next_id, cfg.ttl_s);
            let max_batch_ops = cfg.max_batch_ops.max(1);
            let max_batch_delay = cfg.max_batch_delay;
            handles.push(
                std::thread::Builder::new()
                    .name("ingest-publish".to_string())
                    .spawn(move || {
                        publish_loop(
                            rx,
                            store,
                            wal,
                            lifecycle,
                            &intake,
                            &abort,
                            &metrics,
                            max_batch_ops,
                            max_batch_delay,
                        )
                    })
                    .expect("spawn publisher"),
            );
        }

        Ok(Ingestor {
            intake,
            policy: cfg.policy,
            dedup: Mutex::new(HashMap::new()),
            metrics,
            abort,
            handles,
        })
    }

    /// Offers one record to the pipeline: per-source duplicates are
    /// dropped, then the backpressure policy decides admission.
    pub fn submit(&self, record: StreamRecord) -> SubmitOutcome {
        {
            let dedup = self.dedup.lock().expect("dedup lock poisoned");
            if let Some(&last) = dedup.get(&record.source) {
                if record.seq <= last {
                    self.metrics
                        .records_duplicate
                        .fetch_add(1, Ordering::Relaxed);
                    return SubmitOutcome::Duplicate;
                }
            }
        }
        let (source, seq) = (record.source, record.seq);
        let outcome = match self.intake.push(record, self.policy) {
            PushOutcome::Accepted => {
                self.metrics.records_in.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Accepted
            }
            PushOutcome::AcceptedDroppedOldest => {
                self.metrics.records_in.fetch_add(1, Ordering::Relaxed);
                self.metrics.records_dropped.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::AcceptedDroppedOldest
            }
            PushOutcome::Rejected | PushOutcome::Closed => {
                self.metrics.records_dropped.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Shed
            }
        };
        // The watermark moves only on admission: a shed record was never
        // taken, so the upstream retry it is owed must not be mistaken
        // for a duplicate. (A source is one producer, so its submits are
        // sequential; concurrent *distinct* sources never share an entry.)
        if matches!(
            outcome,
            SubmitOutcome::Accepted | SubmitOutcome::AcceptedDroppedOldest
        ) {
            let mut dedup = self.dedup.lock().expect("dedup lock poisoned");
            let entry = dedup.entry(source).or_insert(seq);
            *entry = (*entry).max(seq);
        }
        outcome
    }

    /// Decodes framed records from `r` and submits each, returning the
    /// intake tally. Undecodable frames are counted and skipped (the
    /// framing resyncs); a truncated or failing stream ends the read.
    pub fn ingest_reader<R: Read>(&self, r: R) -> IntakeSummary {
        let mut summary = IntakeSummary::default();
        for result in RecordReader::new(r) {
            match result {
                Ok(record) => match self.submit(record) {
                    SubmitOutcome::Accepted => summary.accepted += 1,
                    SubmitOutcome::AcceptedDroppedOldest => {
                        summary.accepted += 1;
                        summary.shed += 1;
                    }
                    SubmitOutcome::Duplicate => summary.duplicates += 1,
                    SubmitOutcome::Shed => summary.shed += 1,
                },
                Err(_) => {
                    summary.malformed += 1;
                    self.metrics
                        .records_malformed
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        summary
    }

    /// This pipeline's metrics handle.
    pub fn metrics(&self) -> Arc<IngestMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Records waiting in the intake queue.
    pub fn backlog(&self) -> usize {
        self.intake.len()
    }

    /// Graceful shutdown: drains the intake queue, matches everything,
    /// publishes the final partial batch and fsyncs the WAL tail.
    pub fn finish(mut self) {
        self.stop(true);
    }

    /// Simulated crash: queued and in-flight records are discarded and
    /// the publisher stops between batches. Everything already appended
    /// to the WAL (and only that) survives into recovery.
    pub fn abort(mut self) {
        self.stop(false);
    }

    fn stop(&mut self, graceful: bool) {
        if graceful {
            self.intake.close();
        } else {
            self.abort.store(true, Ordering::Release);
            let discarded = self.intake.close_and_clear() as u64;
            self.metrics
                .records_dropped
                .fetch_add(discarded, Ordering::Relaxed);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Ingestor {
    fn drop(&mut self) {
        self.stop(true);
    }
}

/// Match-worker body: pop, Viterbi-match, forward.
fn match_loop(
    intake: &BoundedQueue<StreamRecord>,
    abort: &AtomicBool,
    metrics: &IngestMetrics,
    net: &netclus_roadnet::RoadNetwork,
    grid: &GridIndex,
    matcher: &MapMatcher,
    tx: &Sender<Matched>,
) {
    while !abort.load(Ordering::Acquire) {
        let Some(record) = intake.pop() else {
            return;
        };
        let end_time_s = record.trace.points().last().map_or(0.0, |p| p.t);
        let t = Instant::now();
        match matcher.match_trace(net, grid, &record.trace) {
            Ok(traj) => {
                metrics.match_latency.record(t.elapsed());
                metrics.records_matched.fetch_add(1, Ordering::Relaxed);
                if tx.send(Matched { traj, end_time_s }).is_err() {
                    return; // publisher is gone
                }
            }
            Err(_) => {
                metrics.match_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Publisher body: batch, WAL, publish. Sole writer of `store`.
#[allow(clippy::too_many_arguments)]
fn publish_loop(
    rx: Receiver<Matched>,
    store: Arc<SnapshotStore>,
    mut wal: WalWriter,
    mut lifecycle: LifecycleManager,
    intake: &BoundedQueue<StreamRecord>,
    abort: &AtomicBool,
    metrics: &IngestMetrics,
    max_batch_ops: usize,
    max_batch_delay: Duration,
) {
    // An unrecoverable WAL failure must take the whole pipeline down, not
    // just this thread: raising the abort flag stops the match workers and
    // closing the intake wakes producers blocked in `submit` (who would
    // otherwise wait forever on a queue nobody drains).
    let fail = |metrics: &IngestMetrics| {
        abort.store(true, Ordering::Release);
        let discarded = intake.close_and_clear() as u64;
        metrics
            .records_dropped
            .fetch_add(discarded, Ordering::Relaxed);
    };
    let mut pending: Vec<UpdateOp> = Vec::new();
    let mut deadline: Option<Instant> = None;
    loop {
        if abort.load(Ordering::Acquire) {
            // Crash simulation: pending (un-appended) ops are lost.
            return;
        }
        let timeout = deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(POLL)
            .min(POLL);
        match rx.recv_timeout(timeout) {
            Ok(matched) => {
                let before = pending.len();
                lifecycle.admit(matched.traj, matched.end_time_s, &mut pending);
                let retired = (pending.len() - before).saturating_sub(1) as u64;
                metrics.trajs_retired.fetch_add(retired, Ordering::Relaxed);
                if pending.len() >= max_batch_ops {
                    if !publish(&store, &mut wal, &mut pending, metrics) {
                        fail(metrics);
                        return;
                    }
                    deadline = None;
                } else if deadline.is_none() {
                    deadline = Some(Instant::now() + max_batch_delay);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if deadline.is_some_and(|d| Instant::now() >= d) && !pending.is_empty() {
                    if !publish(&store, &mut wal, &mut pending, metrics) {
                        fail(metrics);
                        return;
                    }
                    deadline = None;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Graceful end: every worker exited. Flush the tail.
                if !pending.is_empty() && !publish(&store, &mut wal, &mut pending, metrics) {
                    fail(metrics);
                    return;
                }
                if let Ok(synced) = wal.sync() {
                    metrics
                        .wal_syncs
                        .fetch_add(synced as u64, Ordering::Relaxed);
                }
                return;
            }
        }
    }
}

/// Makes `pending` durable, then visible, as the next epoch. Returns false
/// on an unrecoverable WAL failure (the pipeline stops publishing).
fn publish(
    store: &SnapshotStore,
    wal: &mut WalWriter,
    pending: &mut Vec<UpdateOp>,
    metrics: &IngestMetrics,
) -> bool {
    let epoch = store.epoch() + 1;
    let payload = encode_batch(epoch, pending);
    let t = Instant::now();
    let info = match wal.append(&payload) {
        Ok(info) => info,
        Err(e) => {
            eprintln!("[ingest] WAL append failed, stopping publisher: {e}");
            return false;
        }
    };
    let receipt = store.apply(pending);
    metrics.publish_latency.record(t.elapsed());
    assert_eq!(
        receipt.epoch, epoch,
        "ingest pipeline must be the snapshot store's only writer"
    );
    metrics.batches_published.fetch_add(1, Ordering::Relaxed);
    metrics
        .ops_published
        .fetch_add(pending.len() as u64, Ordering::Relaxed);
    metrics.wal_frames.fetch_add(1, Ordering::Relaxed);
    metrics.wal_bytes.fetch_add(info.bytes, Ordering::Relaxed);
    metrics
        .wal_syncs
        .fetch_add(info.synced as u64, Ordering::Relaxed);
    pending.clear();
    true
}
