//! End-to-end pipeline tests: GPS records in, published epochs out, with
//! crash recovery reconstructing the exact pre-crash state.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use netclus::prelude::*;
use netclus_datagen::{
    grid_city, synthesize_gps, GridCityConfig, WorkloadConfig, WorkloadGenerator,
};
use netclus_ingest::{
    recover_store, BackpressurePolicy, IngestConfig, Ingestor, StreamRecord, SubmitOutcome,
    WalConfig,
};
use netclus_roadnet::{GridIndex, NodeId, RegionPartition, RoadNetwork};
use netclus_service::{IngestMetrics, ShardRouter, ShardRouterConfig, SnapshotStore, UpdateSink};
use netclus_trajectory::{GpsPoint, GpsTrace, TrajId, TrajectorySet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Base state shared by the live store and recovery: network, grid, empty
/// corpus, index over all nodes.
struct Fixture {
    net: RoadNetwork,
    grid: Arc<GridIndex>,
    index: NetClusIndex,
    records: Vec<StreamRecord>,
}

fn fixture(seed: u64, trips: usize) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let city = grid_city(
        &GridCityConfig {
            rows: 12,
            cols: 12,
            spacing_m: 200.0,
            jitter: 0.1,
            removal_fraction: 0.0,
        },
        &mut rng,
    );
    let grid = GridIndex::build(&city.net, 250.0);
    let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
    let routes = gen.generate(
        &WorkloadConfig {
            count: trips,
            ..Default::default()
        },
        &mut rng,
    );
    // One record per trip, stream times spaced 60 s apart.
    let records: Vec<StreamRecord> = routes
        .iter()
        .enumerate()
        .map(|(i, route)| {
            let trace = synthesize_gps(&city.net, route, 12.0, 5.0, 8.0, &mut rng);
            StreamRecord {
                source: (i % 4) as u32,
                seq: (i / 4) as u64,
                trace: offset_trace(&trace, i as f64 * 60.0),
            }
        })
        .collect();
    let trajs = TrajectorySet::for_network(&city.net);
    let index = NetClusIndex::build(
        &city.net,
        &trajs,
        &city.net.nodes().collect::<Vec<_>>(),
        NetClusConfig {
            tau_min: 300.0,
            tau_max: 2_500.0,
            threads: 1,
            ..Default::default()
        },
    );
    Fixture {
        net: city.net,
        grid: Arc::new(grid),
        index,
        records,
    }
}

fn offset_trace(trace: &GpsTrace, dt: f64) -> GpsTrace {
    GpsTrace::new(
        trace
            .points()
            .iter()
            .map(|p| GpsPoint::new(p.pos, p.t + dt))
            .collect(),
    )
}

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netclus-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_store(f: &Fixture) -> Arc<SnapshotStore> {
    Arc::new(SnapshotStore::new(
        f.net.clone(),
        TrajectorySet::for_network(&f.net),
        f.index.clone(),
    ))
}

/// The live corpus as comparable data: sorted `(id, node sequence)`.
fn corpus_of(store: &SnapshotStore) -> Vec<(TrajId, Vec<NodeId>)> {
    let snap = store.load();
    let mut out: Vec<(TrajId, Vec<NodeId>)> = snap
        .trajs()
        .iter()
        .map(|(id, t)| (id, t.nodes().to_vec()))
        .collect();
    out.sort();
    out
}

/// A fixed panel of top-k answers, for state-equality assertions.
fn query_panel(store: &SnapshotStore) -> Vec<(Vec<NodeId>, u64)> {
    let snap = store.load();
    [(1usize, 500.0f64), (3, 900.0), (5, 1_800.0)]
        .iter()
        .map(|&(k, tau)| {
            let r = snap.index().query(snap.trajs(), &TopsQuery::binary(k, tau));
            (r.solution.sites, r.solution.utility.to_bits())
        })
        .collect()
}

#[test]
fn pipeline_publishes_all_matched_records() {
    let f = fixture(11, 30);
    let store = base_store(&f);
    let dir = wal_dir("basic");
    let metrics = Arc::new(IngestMetrics::default());
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 3,
            max_batch_ops: 8,
            ..IngestConfig::new(&dir)
        },
        Arc::clone(&metrics),
    )
    .unwrap();
    for r in &f.records {
        assert_eq!(ingestor.submit(r.clone()), SubmitOutcome::Accepted);
    }
    ingestor.finish();

    let matched = metrics.records_matched.load(Ordering::Relaxed);
    let failed = metrics.match_failed.load(Ordering::Relaxed);
    assert_eq!(matched + failed, 30);
    assert!(matched >= 25, "too many match failures: {failed}");
    let snap = store.load();
    assert_eq!(snap.trajs().len() as u64, matched);
    assert!(snap.epoch() >= 1);
    assert_eq!(
        metrics.batches_published.load(Ordering::Relaxed),
        snap.epoch()
    );
    // Every published trajectory is a connected on-network route.
    for (_, t) in snap.trajs().iter() {
        for w in t.nodes().windows(2) {
            assert!(snap.net().edge_weight(w[0], w[1]).is_some());
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_sequence_numbers_are_dropped() {
    let f = fixture(12, 6);
    let store = base_store(&f);
    let dir = wal_dir("dedup");
    let metrics = Arc::new(IngestMetrics::default());
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        IngestConfig::new(&dir),
        Arc::clone(&metrics),
    )
    .unwrap();
    for r in &f.records {
        ingestor.submit(r.clone());
    }
    // Redeliver everything (at-least-once transport): all duplicates.
    for r in &f.records {
        assert_eq!(ingestor.submit(r.clone()), SubmitOutcome::Duplicate);
    }
    ingestor.finish();
    assert_eq!(metrics.records_duplicate.load(Ordering::Relaxed), 6);
    assert_eq!(metrics.records_in.load(Ordering::Relaxed), 6);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn framed_reader_path_matches_in_process_path() {
    let f = fixture(13, 12);
    let dir_a = wal_dir("framed-a");
    let dir_b = wal_dir("framed-b");

    // Path A: records through the wire format.
    let store_a = base_store(&f);
    let mut bytes = Vec::new();
    for r in &f.records {
        r.write_to(&mut bytes).unwrap();
    }
    let ingestor = Ingestor::start(
        Arc::clone(&store_a),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,
            ..IngestConfig::new(&dir_a)
        },
        Arc::new(IngestMetrics::default()),
    )
    .unwrap();
    let summary = ingestor.ingest_reader(&bytes[..]);
    assert_eq!(summary.accepted, 12);
    assert_eq!(summary.malformed, 0);
    ingestor.finish();

    // Path B: the same records in-process.
    let store_b = base_store(&f);
    let ingestor = Ingestor::start(
        Arc::clone(&store_b),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,
            ..IngestConfig::new(&dir_b)
        },
        Arc::new(IngestMetrics::default()),
    )
    .unwrap();
    for r in &f.records {
        ingestor.submit(r.clone());
    }
    ingestor.finish();

    assert_eq!(corpus_of(&store_a), corpus_of(&store_b));
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn ttl_retires_expired_trajectories() {
    let f = fixture(14, 20);
    let store = base_store(&f);
    let dir = wal_dir("ttl");
    let metrics = Arc::new(IngestMetrics::default());
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,   // keep stream order, so expiry is exact
            ttl_s: Some(300.0), // records are 60 s apart → window of ~5
            max_batch_ops: 4,
            ..IngestConfig::new(&dir)
        },
        Arc::clone(&metrics),
    )
    .unwrap();
    for r in &f.records {
        ingestor.submit(r.clone());
    }
    ingestor.finish();

    let matched = metrics.records_matched.load(Ordering::Relaxed);
    let retired = metrics.trajs_retired.load(Ordering::Relaxed);
    assert!(retired > 0, "TTL produced no retirements");
    let snap = store.load();
    assert_eq!(snap.trajs().len() as u64, matched - retired);
    assert!(
        snap.trajs().len() <= 6,
        "sliding window too large: {}",
        snap.trajs().len()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance-criteria test: stream batches, kill the ingestor
/// mid-stream (after fsync), replay the WAL into a fresh store, and the
/// recovered epoch, trajectory set and a fixed panel of top-k answers are
/// identical to the pre-crash snapshot.
#[test]
fn crash_recovery_reconstructs_exact_pre_crash_state() {
    let f = fixture(15, 40);
    let store = base_store(&f);
    let dir = wal_dir("crash");
    let metrics = Arc::new(IngestMetrics::default());
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 2,
            max_batch_ops: 4,
            ttl_s: Some(600.0),
            wal: WalConfig {
                segment_max_bytes: 512, // force rotation mid-run
                sync_every_frames: 1,   // every batch durable before publish
                ..WalConfig::new(&dir)
            },
            ..IngestConfig::new(&dir)
        },
        Arc::clone(&metrics),
    )
    .unwrap();

    // Feed until at least five batches are durably published, then kill
    // the pipeline — genuinely mid-stream.
    for r in &f.records {
        ingestor.submit(r.clone());
        if metrics.batches_published.load(Ordering::Relaxed) >= 5 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while metrics.batches_published.load(Ordering::Relaxed) < 5 {
        assert!(std::time::Instant::now() < deadline, "no batches published");
        std::thread::sleep(Duration::from_millis(2));
    }
    ingestor.abort(); // crash: queued + pending-but-unappended work is lost

    let pre_epoch = store.epoch();
    let pre_corpus = corpus_of(&store);
    let pre_panel = query_panel(&store);
    assert!(pre_epoch >= 5);
    assert!(!pre_corpus.is_empty());

    // Recover from the base state + WAL alone.
    let (recovered, report) = recover_store(
        f.net.clone(),
        TrajectorySet::for_network(&f.net),
        f.index.clone(),
        &dir,
        Some(&metrics),
    )
    .unwrap();
    assert_eq!(report.epoch, pre_epoch);
    assert_eq!(report.batches, pre_epoch);
    assert!(!report.truncated_tail, "abort happens between batches");
    assert_eq!(recovered.epoch(), pre_epoch);
    assert_eq!(corpus_of(&recovered), pre_corpus);
    assert_eq!(query_panel(&recovered), pre_panel);
    assert_eq!(metrics.replay_batches.load(Ordering::Relaxed), pre_epoch);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A restarted pipeline continues the epoch chain in the same WAL
/// directory, and a full replay from the base reproduces the final state.
#[test]
fn restart_continues_the_epoch_chain() {
    let f = fixture(16, 16);
    let dir = wal_dir("restart");

    // First run: half the records.
    let store = base_store(&f);
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,
            ..IngestConfig::new(&dir)
        },
        Arc::new(IngestMetrics::default()),
    )
    .unwrap();
    for r in &f.records[..8] {
        ingestor.submit(r.clone());
    }
    ingestor.finish();
    let mid_epoch = store.epoch();
    assert!(mid_epoch >= 1);

    // Restart: recover, then ingest the rest into the recovered store.
    let (recovered, report) = recover_store(
        f.net.clone(),
        TrajectorySet::for_network(&f.net),
        f.index.clone(),
        &dir,
        None,
    )
    .unwrap();
    assert_eq!(report.epoch, mid_epoch);
    let recovered = Arc::new(recovered);
    let ingestor = Ingestor::start(
        Arc::clone(&recovered),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,
            ..IngestConfig::new(&dir)
        },
        Arc::new(IngestMetrics::default()),
    )
    .unwrap();
    for r in &f.records[8..] {
        ingestor.submit(r.clone());
    }
    ingestor.finish();
    let final_corpus = corpus_of(&recovered);
    let final_epoch = recovered.epoch();
    assert!(final_epoch > mid_epoch);

    // A cold replay of the whole log reproduces the final state.
    let (replayed, report) = recover_store(
        f.net.clone(),
        TrajectorySet::for_network(&f.net),
        f.index.clone(),
        &dir,
        None,
    )
    .unwrap();
    assert_eq!(report.epoch, final_epoch);
    assert_eq!(corpus_of(&replayed), final_corpus);
    assert_eq!(query_panel(&replayed), query_panel(&recovered));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The highest-index segment file in a WAL directory (zero-padded names
/// sort lexicographically).
fn last_segment(dir: &std::path::Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segs.sort();
    segs.pop().expect("no WAL segments")
}

/// Dedup watermarks are durable: after a restart from the WAL, an
/// at-least-once transport redelivering everything it ever sent must not
/// duplicate the corpus.
#[test]
fn dedup_watermarks_survive_restart() {
    let f = fixture(19, 10);
    let dir = wal_dir("dedup-restart");
    let store = base_store(&f);
    let metrics1 = Arc::new(IngestMetrics::default());
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,
            ..IngestConfig::new(&dir)
        },
        Arc::clone(&metrics1),
    )
    .unwrap();
    for r in &f.records {
        assert_eq!(ingestor.submit(r.clone()), SubmitOutcome::Accepted);
    }
    ingestor.finish();
    let failed1 = metrics1.match_failed.load(Ordering::Relaxed);
    let pre_epoch = store.epoch();
    let pre_corpus = corpus_of(&store);
    assert!(pre_epoch >= 1);

    // Restart from the base state + WAL alone, then redeliver everything.
    let (recovered, _) = recover_store(
        f.net.clone(),
        TrajectorySet::for_network(&f.net),
        f.index.clone(),
        &dir,
        None,
    )
    .unwrap();
    let recovered = Arc::new(recovered);
    let metrics2 = Arc::new(IngestMetrics::default());
    let ingestor = Ingestor::start(
        Arc::clone(&recovered),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,
            ..IngestConfig::new(&dir)
        },
        Arc::clone(&metrics2),
    )
    .unwrap();
    for r in &f.records {
        assert_ne!(ingestor.submit(r.clone()), SubmitOutcome::Shed);
    }
    ingestor.finish();

    // Every durably published record is recognized as a duplicate. Only
    // records that never reached the WAL (match failures) may be
    // re-admitted — and they fail identically, changing nothing.
    let readmitted = metrics2.records_in.load(Ordering::Relaxed);
    let duplicates = metrics2.records_duplicate.load(Ordering::Relaxed);
    assert_eq!(duplicates + readmitted, 10);
    assert!(
        readmitted <= failed1,
        "a published record was re-admitted after the restart"
    );
    assert_eq!(metrics2.match_failed.load(Ordering::Relaxed), readmitted);
    assert_eq!(metrics2.batches_published.load(Ordering::Relaxed), 0);
    assert_eq!(recovered.epoch(), pre_epoch, "redelivery forked the chain");
    assert_eq!(corpus_of(&recovered), pre_corpus, "corpus was duplicated");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// TTL lifecycle state is durable: trajectories ingested before a restart
/// still expire afterwards — the sliding window keeps sliding.
#[test]
fn ttl_window_keeps_sliding_across_restart() {
    let f = fixture(20, 12);
    let dir = wal_dir("ttl-restart");
    let store = base_store(&f);
    let cfg = || IngestConfig {
        match_workers: 1,
        max_batch_ops: 2,
        ttl_s: Some(3_000.0),
        ..IngestConfig::new(&dir)
    };
    let metrics1 = Arc::new(IngestMetrics::default());
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        cfg(),
        Arc::clone(&metrics1),
    )
    .unwrap();
    for r in &f.records[..6] {
        ingestor.submit(r.clone());
    }
    ingestor.finish();
    let matched1 = metrics1.records_matched.load(Ordering::Relaxed);
    assert!(matched1 > 0, "run 1 matched nothing");
    assert_eq!(
        metrics1.trajs_retired.load(Ordering::Relaxed),
        0,
        "the 3000 s TTL must not lapse within run 1's ~600 s of stream time"
    );

    let (recovered, _) = recover_store(
        f.net.clone(),
        TrajectorySet::for_network(&f.net),
        f.index.clone(),
        &dir,
        None,
    )
    .unwrap();
    let recovered = Arc::new(recovered);
    let metrics2 = Arc::new(IngestMetrics::default());
    let ingestor = Ingestor::start(
        Arc::clone(&recovered),
        Arc::clone(&f.grid),
        cfg(),
        Arc::clone(&metrics2),
    )
    .unwrap();
    // The same trips far in the stream future, from a fresh source:
    // every pre-restart trajectory's TTL lapses as they arrive.
    for (i, r) in f.records[..6].iter().enumerate() {
        ingestor.submit(StreamRecord {
            source: 40,
            seq: i as u64,
            trace: offset_trace(&r.trace, 100_000.0),
        });
    }
    ingestor.finish();
    let matched2 = metrics2.records_matched.load(Ordering::Relaxed);
    assert_eq!(matched2, matched1, "same traces must match identically");
    // Without the recovered expiry heap these retirements never happen
    // and the pre-restart trajectories live forever.
    assert_eq!(metrics2.trajs_retired.load(Ordering::Relaxed), matched1);
    assert_eq!(recovered.load().trajs().len() as u64, matched2);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A torn WAL tail (crash mid-append) must stay survivable forever: the
/// restart truncates it, later runs append cleanly, and cold replays keep
/// working — it must never turn into mid-log corruption.
#[test]
fn torn_wal_tail_survives_restart_and_recovery() {
    let f = fixture(21, 12);
    let dir = wal_dir("torn-e2e");
    let store = base_store(&f);
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,
            max_batch_ops: 2,
            ..IngestConfig::new(&dir)
        },
        Arc::new(IngestMetrics::default()),
    )
    .unwrap();
    for r in &f.records {
        ingestor.submit(r.clone());
    }
    ingestor.finish();
    let epoch1 = store.epoch();
    assert!(epoch1 >= 2);

    // Tear the last durable frame, as a crash mid-append would.
    let seg = last_segment(&dir);
    let data = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &data[..data.len() - 3]).unwrap();

    // Recovery repairs the tail and lands one epoch short — the torn
    // batch was never durable.
    let (recovered, report) = recover_store(
        f.net.clone(),
        TrajectorySet::for_network(&f.net),
        f.index.clone(),
        &dir,
        None,
    )
    .unwrap();
    assert!(report.truncated_tail);
    assert!(report.tail_repair.truncated_bytes > 0);
    assert_eq!(report.epoch, epoch1 - 1);

    // The restarted pipeline keeps publishing on the repaired log…
    let recovered = Arc::new(recovered);
    let ingestor = Ingestor::start(
        Arc::clone(&recovered),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,
            ..IngestConfig::new(&dir)
        },
        Arc::new(IngestMetrics::default()),
    )
    .unwrap();
    for (i, r) in f.records[..4].iter().enumerate() {
        ingestor.submit(StreamRecord {
            source: 50,
            seq: i as u64,
            trace: r.trace.clone(),
        });
    }
    ingestor.finish();
    let final_epoch = recovered.epoch();
    assert!(final_epoch > epoch1 - 1);

    // …and a cold replay of the whole log reproduces the final state.
    let (replayed, report2) = recover_store(
        f.net.clone(),
        TrajectorySet::for_network(&f.net),
        f.index.clone(),
        &dir,
        None,
    )
    .unwrap();
    assert!(!report2.truncated_tail);
    assert_eq!(report2.epoch, final_epoch);
    assert_eq!(corpus_of(&replayed), corpus_of(&recovered));
    assert_eq!(query_panel(&replayed), query_panel(&recovered));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// With parallel match workers, one source's records can finish matching
/// out of order. The publisher must still publish them in admission
/// order — otherwise a WAL mark could cover a still-in-flight lower seq
/// and a crash would drop that record's retry as a duplicate. Observable
/// invariant: the marks a single source leaves across WAL batches are
/// strictly increasing.
#[test]
fn parallel_workers_preserve_per_source_admission_order() {
    use netclus_ingest::read_wal;
    let f = fixture(24, 30);
    let dir = wal_dir("order");
    let store = base_store(&f);
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 4,
            max_batch_ops: 4,
            ..IngestConfig::new(&dir)
        },
        Arc::new(IngestMetrics::default()),
    )
    .unwrap();
    // One source, dense seqs — maximum opportunity for worker races.
    for (i, r) in f.records.iter().enumerate() {
        ingestor.submit(StreamRecord {
            source: 0,
            seq: i as u64,
            trace: r.trace.clone(),
        });
    }
    ingestor.finish();

    let log = read_wal(&dir).unwrap();
    let marks: Vec<u64> = log
        .batches
        .iter()
        .flat_map(|b| b.marks.iter().filter(|&&(s, _)| s == 0).map(|&(_, q)| q))
        .collect();
    assert!(!marks.is_empty());
    assert!(
        marks.windows(2).all(|w| w[0] < w[1]),
        "marks must be strictly increasing across batches, got {marks:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Starting a pipeline with a store that does not sit at the WAL's last
/// epoch would fork the epoch chain — it must be refused, not papered
/// over.
#[test]
fn start_rejects_store_that_does_not_match_the_wal() {
    let f = fixture(22, 6);
    let dir = wal_dir("mismatch");
    let store = base_store(&f);
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,
            ..IngestConfig::new(&dir)
        },
        Arc::new(IngestMetrics::default()),
    )
    .unwrap();
    for r in &f.records {
        ingestor.submit(r.clone());
    }
    ingestor.finish();
    assert!(store.epoch() >= 1);

    let result = Ingestor::start(
        base_store(&f), // fresh, unrecovered store on a non-empty WAL
        Arc::clone(&f.grid),
        IngestConfig::new(&dir),
        Arc::new(IngestMetrics::default()),
    );
    match result {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput),
        Ok(_) => panic!("a mismatched store must be rejected"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// With fsync batching (`sync_every_frames > 1`) a batch can be visible
/// before it is durable; a crash then loses it. `abort` simulates that
/// faithfully — the writer's buffer is discarded, so recovery genuinely
/// observes the lost-visible-batch window.
#[test]
fn unsynced_batches_are_lost_on_crash_as_documented() {
    let f = fixture(23, 10);
    let dir = wal_dir("unsynced");
    let store = base_store(&f);
    let metrics = Arc::new(IngestMetrics::default());
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,
            max_batch_ops: 2,
            wal: WalConfig {
                sync_every_frames: u32::MAX, // nothing is ever fsynced
                ..WalConfig::new(&dir)
            },
            ..IngestConfig::new(&dir)
        },
        Arc::clone(&metrics),
    )
    .unwrap();
    for r in &f.records {
        ingestor.submit(r.clone());
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while metrics.batches_published.load(Ordering::Relaxed) < 2 {
        assert!(std::time::Instant::now() < deadline, "no batches published");
        std::thread::sleep(Duration::from_millis(2));
    }
    ingestor.abort();
    let visible = store.epoch();
    assert!(visible >= 2);

    let (recovered, _) = recover_store(
        f.net.clone(),
        TrajectorySet::for_network(&f.net),
        f.index.clone(),
        &dir,
        None,
    )
    .unwrap();
    assert!(
        recovered.epoch() < visible,
        "buffered batches must be lost by the crash (visible {visible}, recovered {})",
        recovered.epoch()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Seed plumbing end to end: the same seed produces a byte-identical
/// encoded stream (the property ingest benches rely on).
#[test]
fn generated_streams_encode_byte_identically_per_seed() {
    use netclus_datagen::{generate_gps_stream, GpsStreamConfig};
    let mut rng = StdRng::seed_from_u64(1);
    let city = grid_city(
        &GridCityConfig {
            rows: 10,
            cols: 10,
            spacing_m: 200.0,
            jitter: 0.1,
            removal_fraction: 0.0,
        },
        &mut rng,
    );
    let grid = GridIndex::build(&city.net, 300.0);
    let cfg = GpsStreamConfig {
        trips: 15,
        ..Default::default()
    };
    let encode = |seed: u64| -> Vec<u8> {
        let mut bytes = Vec::new();
        for e in generate_gps_stream(&city.net, &grid, &city.hotspots, &cfg, seed) {
            StreamRecord {
                source: e.source,
                seq: e.seq,
                trace: e.trace,
            }
            .write_to(&mut bytes)
            .unwrap();
        }
        bytes
    };
    assert_eq!(
        encode(0xA5A5),
        encode(0xA5A5),
        "same seed must be byte-identical"
    );
    assert_ne!(
        encode(0xA5A5),
        encode(0x5A5A),
        "different seeds must diverge"
    );
}

/// A record shed by backpressure must stay retryable: the dedup watermark
/// advances only on admission, so the upstream retry the `Reject` policy
/// promises is never misclassified as a duplicate.
#[test]
fn shed_records_can_be_retried() {
    let f = fixture(18, 40);
    let store = base_store(&f);
    let dir = wal_dir("retry");
    let metrics = Arc::new(IngestMetrics::default());
    let ingestor = Ingestor::start(
        Arc::clone(&store),
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 1,
            queue_capacity: 1,
            policy: BackpressurePolicy::Reject,
            ..IngestConfig::new(&dir)
        },
        Arc::clone(&metrics),
    )
    .unwrap();
    for r in &f.records {
        let mut outcome = ingestor.submit(r.clone());
        // Retry shed records until admitted, as the policy contract
        // prescribes; a retry must never come back as Duplicate.
        while outcome == SubmitOutcome::Shed {
            std::thread::sleep(Duration::from_millis(1));
            outcome = ingestor.submit(r.clone());
        }
        assert_eq!(outcome, SubmitOutcome::Accepted, "retry misclassified");
    }
    ingestor.finish();
    // Every record was eventually admitted and processed (the property
    // holds whether or not backpressure actually triggered, but with a
    // capacity-1 queue it essentially always does).
    let matched = metrics.records_matched.load(Ordering::Relaxed);
    let failed = metrics.match_failed.load(Ordering::Relaxed);
    assert_eq!(metrics.records_in.load(Ordering::Relaxed), 40);
    assert_eq!(matched + failed, 40);
    assert_eq!(store.load().trajs().len() as u64, matched);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Backpressure accounting: whatever the policy does, every record is
/// accounted for exactly once.
#[test]
fn backpressure_accounting_is_conserved() {
    for policy in [
        BackpressurePolicy::Block,
        BackpressurePolicy::DropOldest,
        BackpressurePolicy::Reject,
    ] {
        let f = fixture(17, 25);
        let store = base_store(&f);
        let dir = wal_dir(&format!("bp-{policy:?}"));
        let metrics = Arc::new(IngestMetrics::default());
        let ingestor = Ingestor::start(
            Arc::clone(&store),
            Arc::clone(&f.grid),
            IngestConfig {
                match_workers: 1,
                queue_capacity: 2,
                policy,
                ..IngestConfig::new(&dir)
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        for r in &f.records {
            ingestor.submit(r.clone());
        }
        ingestor.finish();
        let record_count = f.records.len() as u64;
        let accepted = metrics.records_in.load(Ordering::Relaxed);
        let dropped = metrics.records_dropped.load(Ordering::Relaxed);
        let matched = metrics.records_matched.load(Ordering::Relaxed);
        let failed = metrics.match_failed.load(Ordering::Relaxed);
        match policy {
            // Blocking admits and processes everything.
            BackpressurePolicy::Block => {
                assert_eq!(accepted, record_count);
                assert_eq!(matched + failed, accepted);
            }
            // Drop-oldest admits everything but displaced records are
            // never matched.
            BackpressurePolicy::DropOldest => {
                assert_eq!(accepted, record_count);
                assert_eq!(matched + failed, accepted - dropped);
            }
            // Reject conserves: each record is either in or shed, and
            // everything admitted is processed.
            BackpressurePolicy::Reject => {
                assert_eq!(accepted + dropped, record_count);
                assert_eq!(matched + failed, accepted);
            }
        }
        assert_eq!(store.load().trajs().len() as u64, matched);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// An empty-corpus replicated router over the fixture net: two region
/// shards, two bit-identical replicas each (PR 10's replica sets).
fn replicated_router(f: &Fixture) -> ShardRouter {
    let net = Arc::new(f.net.clone());
    let trajs = TrajectorySet::for_network(&net);
    let sites: Vec<NodeId> = net.nodes().collect();
    let partition = RegionPartition::build(&net, 2);
    let sharded = ShardedNetClusIndex::build(
        &net,
        &trajs,
        &sites,
        &partition,
        NetClusConfig {
            tau_min: 300.0,
            tau_max: 2_500.0,
            threads: 1,
            ..Default::default()
        },
    );
    ShardRouter::start_replicated(net, sharded, 2, ShardRouterConfig::default())
        .expect("start replicated router")
}

/// The fixed query panel through the scatter-gather path, as comparable
/// data. Every answer must be full — replication means no degradation.
fn router_panel(router: &ShardRouter) -> Vec<(u64, Vec<NodeId>, u64, usize)> {
    [(1usize, 500.0f64), (3, 900.0), (5, 1_800.0)]
        .iter()
        .map(|&(k, tau)| {
            let a = router.query_blocking(TopsQuery::binary(k, tau)).unwrap();
            assert!(!a.degraded, "replicated router degraded an answer");
            (a.epoch, a.sites.clone(), a.utility.to_bits(), a.covered)
        })
        .collect()
}

/// The pipeline publishes straight into a *replicated sharded router*
/// through the [`UpdateSink`] seam — no monolithic store in the write
/// path — and after a mid-stream crash the WAL alone rebuilds a fresh
/// replica set to the same epoch with bit-identical scatter-gather
/// answers. The same log still drives the monolithic recovery path: the
/// WAL is sink-agnostic.
#[test]
fn crashed_pipeline_wal_replays_into_a_replicated_router() {
    let f = fixture(18, 40);
    let dir = wal_dir("router-crash");
    let metrics = Arc::new(IngestMetrics::default());
    let live = Arc::new(replicated_router(&f));
    let ingestor = Ingestor::start_with_sink(
        Arc::clone(&live) as Arc<dyn UpdateSink>,
        Arc::clone(&f.grid),
        IngestConfig {
            match_workers: 2,
            max_batch_ops: 4,
            wal: WalConfig {
                segment_max_bytes: 512, // force rotation mid-run
                sync_every_frames: 1,   // every batch durable before publish
                ..WalConfig::new(&dir)
            },
            ..IngestConfig::new(&dir)
        },
        Arc::clone(&metrics),
    )
    .unwrap();

    // Feed until at least five batches are durably published, then kill
    // the pipeline — genuinely mid-stream.
    for r in &f.records {
        ingestor.submit(r.clone());
        if metrics.batches_published.load(Ordering::Relaxed) >= 5 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while metrics.batches_published.load(Ordering::Relaxed) < 5 {
        assert!(std::time::Instant::now() < deadline, "no batches published");
        std::thread::sleep(Duration::from_millis(2));
    }
    ingestor.abort(); // crash: queued + pending-but-unappended work is lost

    let pre_epoch = live.epoch();
    assert!(pre_epoch >= 5);
    // Lockstep apply kept every replica of every shard current.
    assert_eq!(live.replica_lag_max(), 0);
    let pre_panel = router_panel(&live);

    // Replay the WAL into a fresh, empty replica set. Logged ops are the
    // *unrouted* `UpdateOp`s the pipeline published, so the router
    // re-routes them and re-assigns global ids exactly as the live run
    // did — batch order is the id sequence.
    let log = netclus_ingest::read_wal(&dir).unwrap();
    assert!(!log.truncated_tail, "abort happens between batches");
    assert_eq!(log.batches.len() as u64, pre_epoch);
    let replayed = replicated_router(&f);
    for batch in &log.batches {
        let receipt = replayed.apply_updates(batch.ops.clone());
        assert_eq!(receipt.epoch, batch.epoch, "epoch chain must not tear");
    }
    assert_eq!(replayed.epoch(), pre_epoch);
    assert_eq!(replayed.replica_lag_max(), 0);
    assert_eq!(router_panel(&replayed), pre_panel);

    // The monolithic recovery path reads the same log to the same epoch.
    let (recovered, report) = recover_store(
        f.net.clone(),
        TrajectorySet::for_network(&f.net),
        f.index.clone(),
        &dir,
        None,
    )
    .unwrap();
    assert_eq!(report.epoch, pre_epoch);
    assert_eq!(recovered.epoch(), pre_epoch);
    assert!(!corpus_of(&recovered).is_empty());

    live.shutdown();
    replayed.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
