//! The `netclus-shardd` shard-server crate: the standalone binary plus
//! the deterministic cluster corpus every process of a demo cluster
//! rebuilds.
//!
//! A cluster deployment has no shared filesystem in this codebase, so
//! the shard processes and the router agree on the corpus the same way
//! the benchmarks do: everything is a pure function of `(seed, scale,
//! shards)`. [`build_corpus`] reproduces the multi-region scenario, the
//! region partition and the sharded index bit-for-bit in every process;
//! a `netclus-shardd` process then keeps only its own shard's
//! trajectory view and index, while the router keeps only the network
//! and the partition (what it needs to route updates and merge
//! answers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use netclus::{NetClusConfig, NetClusShard, ReplicationStats, ShardedNetClusIndex};
use netclus_datagen::{multi_region, ScenarioConfig};
use netclus_roadnet::{RegionPartition, RoadNetwork};

/// The index configuration every cluster process builds with; one
/// definition so the router and the shard servers cannot drift.
pub fn cluster_index_config() -> NetClusConfig {
    NetClusConfig {
        tau_min: 400.0,
        tau_max: 3_200.0,
        threads: 1,
        ..Default::default()
    }
}

/// The deterministic cluster corpus: network, partition, per-shard
/// index views and the replication gauges, identical in every process
/// that builds it from the same `(seed, scale, shards)`.
pub struct ClusterCorpus {
    /// The shared road network.
    pub net: Arc<RoadNetwork>,
    /// The node partition updates are routed by.
    pub partition: RegionPartition,
    /// Per-shard corpus views + indexes, in shard-id order.
    pub shards: Vec<NetClusShard>,
    /// Replication bookkeeping of the initial corpus.
    pub replication: ReplicationStats,
    /// Global trajectory-id bound (seeds the router's id assignment).
    pub traj_id_bound: usize,
}

/// Builds the cluster corpus for `(seed, scale, shards)`.
pub fn build_corpus(seed: u64, scale: f64, shards: usize) -> ClusterCorpus {
    let scenario = multi_region(&ScenarioConfig { seed, scale }, shards);
    let partition = RegionPartition::build(&scenario.net, shards);
    let sharded = ShardedNetClusIndex::build(
        &scenario.net,
        &scenario.trajectories,
        &scenario.sites,
        &partition,
        cluster_index_config(),
    );
    let traj_id_bound = sharded.traj_id_bound();
    let (partition, shard_views, replication) = sharded.into_parts();
    ClusterCorpus {
        net: Arc::new(scenario.net),
        partition,
        shards: shard_views,
        replication,
        traj_id_bound,
    }
}
