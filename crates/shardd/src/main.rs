//! `netclus-shardd` — one shard of a NetClus cluster as a standalone
//! process.
//!
//! Rebuilds the deterministic cluster corpus for `(--seed, --scale,
//! --shards)`, keeps shard `--shard`'s trajectory view and index, and
//! serves the framed TCP shard protocol on `--listen`. With
//! `--telemetry`, the standard telemetry commands (`metrics`, `stages`,
//! `slow`, ...) are answered on a second port.
//!
//! Startup prints machine-readable lines on stdout:
//!
//! ```text
//! SHARD <id> LISTENING <addr>
//! SHARD <id> TELEMETRY <addr>      (only with --telemetry)
//! ```
//!
//! The process exits after a `Shutdown` RPC (or on SIGKILL — the
//! cluster example kills one shard mid-stream to demonstrate degraded
//! answers).

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use netclus_service::{ShardServer, ShardServerConfig, SnapshotStore, TelemetryServer};
use netclus_shardd::build_corpus;

struct Args {
    shard: usize,
    shards: usize,
    seed: u64,
    scale: f64,
    listen: String,
    telemetry: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: netclus-shardd --shard <i> [--shards <n>] [--seed <u64>] \
         [--scale <f64>] [--listen <addr>] [--telemetry <addr>]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        shard: usize::MAX,
        shards: 4,
        seed: 0xC1A5,
        scale: 0.08,
        listen: "127.0.0.1:0".to_string(),
        telemetry: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--shard" => args.shard = value().parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => args.scale = value().parse().unwrap_or_else(|_| usage()),
            "--listen" => args.listen = value(),
            "--telemetry" => args.telemetry = Some(value()),
            _ => usage(),
        }
    }
    if args.shard == usize::MAX || args.shard >= args.shards || args.shards == 0 {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let mut corpus = build_corpus(args.seed, args.scale, args.shards);
    let view = corpus.shards.swap_remove(args.shard);
    let store = SnapshotStore::with_shared_net(Arc::clone(&corpus.net), view.trajs, view.index);
    let mut server = ShardServer::start(
        &args.listen,
        args.shard as u32,
        store,
        ShardServerConfig::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("netclus-shardd: bind {}: {e}", args.listen);
        exit(1);
    });
    println!("SHARD {} LISTENING {}", args.shard, server.addr());
    let _telemetry = args.telemetry.as_deref().map(|addr| {
        let t = TelemetryServer::start(addr, server.telemetry_source()).unwrap_or_else(|e| {
            eprintln!("netclus-shardd: bind telemetry {addr}: {e}");
            exit(1);
        });
        println!("SHARD {} TELEMETRY {}", args.shard, t.addr());
        t
    });
    // Serve until a Shutdown RPC flips the flag, then join cleanly.
    while !server.is_stopping() {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}
