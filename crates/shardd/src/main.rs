//! `netclus-shardd` — one shard of a NetClus cluster as a standalone
//! process.
//!
//! Rebuilds the deterministic cluster corpus for `(--seed, --scale,
//! --shards)`, keeps shard `--shard`'s trajectory view and index, and
//! serves the framed TCP shard protocol on `--listen`. With
//! `--telemetry`, the standard telemetry commands (`metrics`, `stages`,
//! `slow`, ...) are answered on a second port.
//!
//! With `--join <peer_addr>`, the process catches up **before**
//! listening: it fetches a resync snapshot (epoch + full shard corpus)
//! from a healthy replica of the same shard and installs it over the
//! seed-built corpus, so a restarted replica rejoins at the live epoch
//! instead of epoch 0.
//!
//! Startup prints machine-readable lines on stdout:
//!
//! ```text
//! SHARD <id> RESYNCED <epoch>      (only with --join)
//! SHARD <id> LISTENING <addr>
//! SHARD <id> TELEMETRY <addr>      (only with --telemetry)
//! ```
//!
//! The process exits after a `Shutdown` RPC (or on SIGKILL — the
//! cluster example kills one replica per shard mid-stream to
//! demonstrate hedged failover).

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use netclus_service::{
    install_resync_snapshot, RemoteShard, RemoteShardConfig, ShardServer, ShardServerConfig,
    ShardTransport, SnapshotStore, TelemetryServer,
};
use netclus_shardd::build_corpus;

struct Args {
    shard: usize,
    shards: usize,
    seed: u64,
    scale: f64,
    listen: String,
    telemetry: Option<String>,
    join: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: netclus-shardd --shard <i> [--shards <n>] [--seed <u64>] \
         [--scale <f64>] [--listen <addr>] [--telemetry <addr>] \
         [--join <peer_addr>]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        shard: usize::MAX,
        shards: 4,
        seed: 0xC1A5,
        scale: 0.08,
        listen: "127.0.0.1:0".to_string(),
        telemetry: None,
        join: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--shard" => args.shard = value().parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => args.scale = value().parse().unwrap_or_else(|_| usage()),
            "--listen" => args.listen = value(),
            "--telemetry" => args.telemetry = Some(value()),
            "--join" => args.join = Some(value()),
            _ => usage(),
        }
    }
    if args.shard == usize::MAX || args.shard >= args.shards || args.shards == 0 {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let mut corpus = build_corpus(args.seed, args.scale, args.shards);
    let view = corpus.shards.swap_remove(args.shard);
    let store = SnapshotStore::with_shared_net(Arc::clone(&corpus.net), view.trajs, view.index);
    if let Some(peer) = args.join.as_deref() {
        let peer_addr: SocketAddr = peer
            .to_socket_addrs()
            .ok()
            .and_then(|mut it| it.next())
            .unwrap_or_else(|| {
                eprintln!("netclus-shardd: bad --join address {peer}");
                exit(1);
            });
        // Catch up to the live epoch from a healthy replica of the same
        // shard before accepting any traffic.
        let remote = RemoteShard::new(args.shard as u32, peer_addr, RemoteShardConfig::default());
        let snap = remote.fetch_resync().unwrap_or_else(|e| {
            eprintln!("netclus-shardd: resync from {peer_addr}: {e}");
            exit(1);
        });
        let epoch = snap.epoch;
        install_resync_snapshot(&store, &snap).unwrap_or_else(|e| {
            eprintln!("netclus-shardd: install resync snapshot: {e}");
            exit(1);
        });
        println!("SHARD {} RESYNCED {epoch}", args.shard);
    }
    let mut server = ShardServer::start(
        &args.listen,
        args.shard as u32,
        store,
        ShardServerConfig::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("netclus-shardd: bind {}: {e}", args.listen);
        exit(1);
    });
    println!("SHARD {} LISTENING {}", args.shard, server.addr());
    let _telemetry = args.telemetry.as_deref().map(|addr| {
        let t = TelemetryServer::start(addr, server.telemetry_source()).unwrap_or_else(|e| {
            eprintln!("netclus-shardd: bind telemetry {addr}: {e}");
            exit(1);
        });
        println!("SHARD {} TELEMETRY {}", args.shard, t.addr());
        t
    });
    // Serve until a Shutdown RPC flips the flag, then join cleanly.
    while !server.is_stopping() {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}
