//! Property-based tests for the FM sketch substrate.

use netclus_sketch::{FmSketch, FmSketchFamily};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insertion order and duplication never change the sketch.
    #[test]
    fn order_and_duplicates_irrelevant(
        mut items in prop::collection::vec(any::<u64>(), 1..200),
        seed in any::<u64>(),
    ) {
        let fam = FmSketchFamily::new(8, seed);
        let a = fam.sketch_of(items.iter().copied());
        items.reverse();
        let doubled: Vec<u64> = items.iter().chain(items.iter()).copied().collect();
        let b = fam.sketch_of(doubled);
        prop_assert_eq!(a, b);
    }

    /// Union is commutative, associative, idempotent; estimates are
    /// monotone under union.
    #[test]
    fn union_is_a_semilattice(
        xs in prop::collection::vec(any::<u64>(), 0..100),
        ys in prop::collection::vec(any::<u64>(), 0..100),
        zs in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let fam = FmSketchFamily::new(6, 99);
        let (a, b, c) = (fam.sketch_of(xs), fam.sketch_of(ys), fam.sketch_of(zs));
        prop_assert_eq!(FmSketch::union(&a, &b), FmSketch::union(&b, &a));
        prop_assert_eq!(
            FmSketch::union(&FmSketch::union(&a, &b), &c),
            FmSketch::union(&a, &FmSketch::union(&b, &c))
        );
        prop_assert_eq!(FmSketch::union(&a, &a), a.clone());
        let u = FmSketch::union(&a, &b);
        prop_assert!(fam.estimate(&u) + 1e-12 >= fam.estimate(&a).max(fam.estimate(&b)));
        prop_assert_eq!(fam.union_estimate(&a, &b), fam.estimate(&u));
    }

    /// Subset sketches estimate no more than their superset.
    #[test]
    fn subset_estimate_monotone(
        items in prop::collection::vec(any::<u64>(), 2..300),
        cut in 1usize..200,
    ) {
        let fam = FmSketchFamily::new(12, 5);
        let cut = cut.min(items.len() - 1);
        let small = fam.sketch_of(items[..cut].iter().copied());
        let big = fam.sketch_of(items.iter().copied());
        prop_assert!(fam.estimate(&small) <= fam.estimate(&big) + 1e-12);
    }

    /// With many copies, the estimate lands within a loose statistical band
    /// around the true distinct count.
    #[test]
    fn estimate_within_band(n in 64u64..4096, seed in any::<u64>()) {
        let fam = FmSketchFamily::new(128, seed);
        // Spread items to avoid accidental structure.
        let s = fam.sketch_of((0..n).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let est = fam.estimate(&s);
        let rel = (est - n as f64).abs() / n as f64;
        // stderr ≈ 0.78/√128 ≈ 6.9%; allow ~5σ for proptest stability.
        prop_assert!(rel < 0.35, "n={n}: estimate {est} ({rel:.2} rel err)");
    }
}
