//! Flajolet–Martin sketches with `f` independent copies.
//!
//! An FM sketch summarizes a set of item ids in a single 32-bit word: item
//! `x` sets bit `ρ(h(x))` where `ρ` is the least-significant-set-bit
//! position. The index of the lowest *unset* bit `R` satisfies
//! `E[R] ≈ log2(φ·n)` with `φ ≈ 0.77351`, giving the classic estimator
//! `n̂ = 2^R / φ`; averaging `R` over `f` independent copies shrinks the
//! standard error to `≈ 0.78/√f` [Flajolet & Martin 1985].
//!
//! Crucially for NetClus, the sketch of a *union* of sets is the bitwise OR
//! of their sketches — this is what makes marginal-coverage estimation O(f)
//! per candidate inside Inc-Greedy and Greedy-GDSP (paper Sec. 3.5, 4.1.2).
//! Sketches are plain `Box<[u32]>` payloads; the hashing state lives once in
//! a shared [`FmSketchFamily`], so storing one sketch per candidate site
//! costs `4·f` bytes (the paper's "32-bit words").

use crate::hash::{derive_seeds, hash_with_seed, rho};

/// Magic constant φ from Flajolet & Martin's analysis.
pub const FM_PHI: f64 = 0.77351;

/// Word width of each sketch copy, in bits. 32 bits handle ≈ 4·10⁹ distinct
/// items — far beyond any trajectory corpus (paper Sec. 3.5).
pub const FM_BITS: u32 = 32;

/// Shared parameters of a family of FM sketches: the number of copies `f`
/// and their hash seeds. All sketches that will ever be unioned together
/// must come from the same family.
#[derive(Clone, Debug)]
pub struct FmSketchFamily {
    seeds: Vec<u64>,
}

impl FmSketchFamily {
    /// Creates a family of `f ≥ 1` copies seeded from `master_seed`.
    ///
    /// # Panics
    /// Panics if `f == 0`.
    pub fn new(f: usize, master_seed: u64) -> Self {
        assert!(f >= 1, "need at least one sketch copy");
        FmSketchFamily {
            seeds: derive_seeds(master_seed, f),
        }
    }

    /// Number of copies `f`.
    #[inline]
    pub fn copies(&self) -> usize {
        self.seeds.len()
    }

    /// A fresh empty sketch of this family.
    pub fn empty(&self) -> FmSketch {
        FmSketch {
            words: vec![0u32; self.seeds.len()].into_boxed_slice(),
        }
    }

    /// Inserts `item` into `sketch` (idempotent).
    #[inline]
    pub fn insert(&self, sketch: &mut FmSketch, item: u64) {
        debug_assert_eq!(sketch.words.len(), self.seeds.len());
        for (word, &seed) in sketch.words.iter_mut().zip(&self.seeds) {
            let r = rho(hash_with_seed(item, seed), FM_BITS);
            *word |= 1u32 << r;
        }
    }

    /// Builds the sketch of an item iterator.
    pub fn sketch_of<I: IntoIterator<Item = u64>>(&self, items: I) -> FmSketch {
        let mut s = self.empty();
        for item in items {
            self.insert(&mut s, item);
        }
        s
    }

    /// Estimates the number of distinct items inserted into `sketch`.
    ///
    /// Uses the mean lowest-zero-bit index over all copies with the
    /// small-cardinality correction of Scheuermann & Mauve:
    /// `n̂ = (2^R̄ − 2^(−κ·R̄)) / φ`, `κ = 1.75`, which removes most of the
    /// bias below ≈ 10 items while converging to the classic estimator.
    pub fn estimate(&self, sketch: &FmSketch) -> f64 {
        let sum: u32 = sketch.words.iter().map(|&w| lowest_zero(w)).sum();
        let mean_r = f64::from(sum) / self.seeds.len() as f64;
        ((2f64.powf(mean_r) - 2f64.powf(-1.75 * mean_r)) / FM_PHI).max(0.0)
    }

    /// Estimates `|A ∪ B|` without materializing the union sketch.
    pub fn union_estimate(&self, a: &FmSketch, b: &FmSketch) -> f64 {
        debug_assert_eq!(a.words.len(), b.words.len());
        let sum: u32 = a
            .words
            .iter()
            .zip(b.words.iter())
            .map(|(&x, &y)| lowest_zero(x | y))
            .sum();
        let mean_r = f64::from(sum) / self.seeds.len() as f64;
        ((2f64.powf(mean_r) - 2f64.powf(-1.75 * mean_r)) / FM_PHI).max(0.0)
    }

    /// Expected relative standard error of [`FmSketchFamily::estimate`],
    /// `≈ 0.78 / √f` (Flajolet & Martin 1985, Theorem 2).
    pub fn standard_error(&self) -> f64 {
        0.78 / (self.seeds.len() as f64).sqrt()
    }
}

/// The payload of one FM sketch: `f` 32-bit words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FmSketch {
    words: Box<[u32]>,
}

impl FmSketch {
    /// Bitwise-ORs `other` into `self`, making `self` the sketch of the
    /// union of both underlying sets.
    ///
    /// # Panics
    /// Panics if the sketches have different copy counts.
    pub fn union_with(&mut self, other: &FmSketch) {
        assert_eq!(
            self.words.len(),
            other.words.len(),
            "sketches from different families"
        );
        for (w, &o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }

    /// Returns the union sketch of `a` and `b`.
    pub fn union(a: &FmSketch, b: &FmSketch) -> FmSketch {
        let mut out = a.clone();
        out.union_with(b);
        out
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of copies.
    pub fn copies(&self) -> usize {
        self.words.len()
    }

    /// Raw words (one per copy), little-endian bit significance.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Heap footprint in bytes.
    pub fn heap_size_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u32>()
    }
}

/// Index of the lowest zero bit of `w` (the FM statistic `R`).
#[inline]
fn lowest_zero(w: u32) -> u32 {
    (!w).trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_estimates_zero() {
        let fam = FmSketchFamily::new(30, 42);
        let s = fam.empty();
        assert!(s.is_empty());
        assert_eq!(fam.estimate(&s), 0.0);
    }

    #[test]
    fn insertion_is_idempotent() {
        let fam = FmSketchFamily::new(10, 1);
        let mut a = fam.empty();
        fam.insert(&mut a, 77);
        let snapshot = a.clone();
        fam.insert(&mut a, 77);
        fam.insert(&mut a, 77);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn estimate_tracks_cardinality() {
        let fam = FmSketchFamily::new(64, 9);
        for &n in &[10usize, 100, 1_000, 10_000] {
            let s = fam.sketch_of((0..n as u64).map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D)));
            let est = fam.estimate(&s);
            let rel = (est - n as f64).abs() / n as f64;
            // 64 copies → stderr ≈ 9.75%; allow 4 sigma.
            assert!(rel < 0.4, "n={n}: estimate {est}, rel err {rel}");
        }
    }

    #[test]
    fn more_copies_reduce_error() {
        assert!(
            FmSketchFamily::new(100, 0).standard_error()
                < FmSketchFamily::new(10, 0).standard_error()
        );
        let se30 = FmSketchFamily::new(30, 0).standard_error();
        assert!((se30 - 0.78 / 30f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn union_equals_sketch_of_union() {
        let fam = FmSketchFamily::new(16, 3);
        let a = fam.sketch_of(0..500);
        let b = fam.sketch_of(250..750);
        let direct = fam.sketch_of(0..750);
        assert_eq!(FmSketch::union(&a, &b), direct);
        let mut c = a.clone();
        c.union_with(&b);
        assert_eq!(c, direct);
    }

    #[test]
    fn union_estimate_matches_materialized_union() {
        let fam = FmSketchFamily::new(16, 3);
        let a = fam.sketch_of(0..300);
        let b = fam.sketch_of(200..600);
        let merged = FmSketch::union(&a, &b);
        assert_eq!(fam.union_estimate(&a, &b), fam.estimate(&merged));
    }

    #[test]
    fn union_estimate_is_monotone() {
        let fam = FmSketchFamily::new(32, 5);
        let a = fam.sketch_of(0..1000);
        let b = fam.sketch_of(1000..1400);
        // Estimate of the union can never be below either operand's estimate:
        // OR-ing words can only move lowest-zero indices up.
        let ua = fam.estimate(&a);
        let ub = fam.estimate(&b);
        let uu = fam.union_estimate(&a, &b);
        assert!(uu >= ua.max(ub) - 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let fam1 = FmSketchFamily::new(8, 123);
        let fam2 = FmSketchFamily::new(8, 123);
        assert_eq!(fam1.sketch_of(0..50), fam2.sketch_of(0..50));
    }

    #[test]
    #[should_panic(expected = "different families")]
    fn union_of_mismatched_sizes_panics() {
        let a = FmSketchFamily::new(4, 0).empty();
        let mut b = FmSketchFamily::new(8, 0).empty();
        b.union_with(&a);
    }

    #[test]
    fn heap_size_is_4f_bytes() {
        let fam = FmSketchFamily::new(30, 0);
        assert_eq!(fam.empty().heap_size_bytes(), 120);
    }

    #[test]
    fn lowest_zero_examples() {
        assert_eq!(lowest_zero(0b0), 0);
        assert_eq!(lowest_zero(0b1), 1);
        assert_eq!(lowest_zero(0b1011), 2);
        assert_eq!(lowest_zero(u32::MAX), 32);
    }
}
