//! Seeded 64-bit hashing for sketch families.
//!
//! Each FM sketch copy needs an independent hash function over item ids.
//! We use the SplitMix64 finalizer — a full-avalanche bijective mixer — over
//! `item ^ seed`, with per-copy seeds themselves drawn from a SplitMix64
//! stream. This is deterministic, dependency-free, and passes the geometric
//! bit-position distribution checks in the tests below.

/// SplitMix64 finalization mix: bijective, full avalanche.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes `item` under the function identified by `seed`.
#[inline]
pub fn hash_with_seed(item: u64, seed: u64) -> u64 {
    mix64(item ^ mix64(seed))
}

/// Generates `count` independent hash seeds from a master seed.
pub fn derive_seeds(master_seed: u64, count: usize) -> Vec<u64> {
    let mut state = master_seed;
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64(state)
        })
        .collect()
}

/// Position of the least-significant set bit (the FM "ρ" function), capped
/// at `cap − 1` so it always addresses a valid bit of a `cap`-bit word.
/// `ρ(h) = i` occurs with probability `2^-(i+1)` for uniform `h`.
#[inline]
pub fn rho(hash: u64, cap: u32) -> u32 {
    hash.trailing_zeros().min(cap - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), mix64(1));
        // Consecutive inputs should differ in roughly half the bits.
        let d = (mix64(41) ^ mix64(42)).count_ones();
        assert!((20..=44).contains(&d), "poor avalanche: {d} bits");
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds = derive_seeds(7, 100);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        // Deterministic given the master seed.
        assert_eq!(seeds, derive_seeds(7, 100));
        assert_ne!(seeds, derive_seeds(8, 100));
    }

    #[test]
    fn rho_is_geometric() {
        // Empirically: P(rho = i) ≈ 2^-(i+1).
        let n = 100_000u64;
        let mut counts = [0u64; 8];
        for i in 0..n {
            let r = rho(hash_with_seed(i, 12345), 32);
            if (r as usize) < counts.len() {
                counts[r as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate().take(6) {
            let expected = n as f64 / 2f64.powi(i as i32 + 1);
            let ratio = c as f64 / expected;
            assert!(
                (0.9..1.1).contains(&ratio),
                "rho={i}: observed {c}, expected {expected}"
            );
        }
    }

    #[test]
    fn rho_caps_at_word_size() {
        assert_eq!(rho(0, 32), 31);
        assert_eq!(rho(1 << 40, 32), 31);
        assert_eq!(rho(1, 32), 0);
        assert_eq!(rho(8, 32), 3);
    }

    #[test]
    fn different_seeds_hash_differently() {
        let a = hash_with_seed(99, 1);
        let b = hash_with_seed(99, 2);
        assert_ne!(a, b);
    }
}
