//! # netclus-sketch — Flajolet–Martin distinct-counting sketches
//!
//! Probabilistic distinct-counting used by the NetClus framework
//! (Mitra et al., ICDE 2017) to accelerate submodular greedy selection:
//!
//! * Inc-Greedy with binary preference keeps one sketch of covered
//!   trajectories per candidate site; the marginal utility of adding a site
//!   is estimated with a single O(f) word-wise OR (paper Sec. 3.5).
//! * Greedy-GDSP clustering keeps one sketch of dominated vertices per
//!   vertex (paper Sec. 4.1.2).
//!
//! See [`FmSketchFamily`] for construction and estimation, and [`FmSketch`]
//! for the 4·f-byte payload stored per site/vertex.
//!
//! ```
//! use netclus_sketch::FmSketchFamily;
//!
//! let family = FmSketchFamily::new(30, 0xC0FFEE);
//! let covered = family.sketch_of(0..5_000u64);
//! let est = family.estimate(&covered);
//! assert!((est - 5_000.0).abs() / 5_000.0 < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fm;
pub mod hash;

pub use fm::{FmSketch, FmSketchFamily, FM_BITS, FM_PHI};
pub use hash::{derive_seeds, hash_with_seed, mix64, rho};
