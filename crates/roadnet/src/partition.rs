//! Region-based road-network partitioning for sharded serving.
//!
//! The NetClus scale story (paper Sec. 8.4) ends where one process ends;
//! the serving layer shards the network into spatial regions and builds a
//! per-shard index over each region's sites and trajectories. The
//! partitioner here assigns every vertex of the frozen CSR graph to
//! exactly one shard by recursive median bisection over the node
//! coordinates (a kd-tree-style split on the wider axis), which yields
//!
//! * **balanced** shards: each split divides the node list proportionally
//!   to the number of leaf shards on either side, so shard sizes differ by
//!   at most a rounding node even for non-power-of-two shard counts;
//! * **spatially contiguous** regions: road networks embed in the plane,
//!   so coordinate bisection keeps the cut small — the classic
//!   geometric-partitioning argument behind METIS-style coordinate modes;
//! * **determinism**: splits sort by `(coordinate, node id)`, so the same
//!   network and shard count always produce the same assignment.
//!
//! The cut statistics ([`PartitionStats`]) report the vertex-cut frontier:
//! edges whose endpoints land in different shards and the boundary
//! vertices incident to them — the vertices a distributed deployment
//! replicates. Trajectory replication (a trajectory is replicated to every
//! shard its nodes touch) lives one layer up, in `netclus::shard`, which
//! consumes the node assignment exposed here.
//!
//! [`RegionPartition::from_assignment`] accepts an arbitrary external
//! assignment (e.g. one aligned with known city regions), so tests and
//! deployments are not tied to the geometric heuristic.

use crate::graph::RoadNetwork;
use crate::NodeId;

/// A complete assignment of network vertices to shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionPartition {
    shards: u32,
    /// Shard of each vertex, indexed by [`NodeId::index`].
    shard_of: Vec<u32>,
}

impl RegionPartition {
    /// Partitions `net` into `shards` regions by recursive median
    /// bisection over the node coordinates.
    ///
    /// # Panics
    /// Panics if `shards == 0` or `shards > net.node_count()`.
    pub fn build(net: &RoadNetwork, shards: usize) -> RegionPartition {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            shards <= net.node_count(),
            "cannot split {} nodes into {shards} shards",
            net.node_count()
        );
        let mut shard_of = vec![0u32; net.node_count()];
        let mut nodes: Vec<u32> = (0..net.node_count() as u32).collect();
        bisect(net, &mut nodes, shards as u32, 0, &mut shard_of);
        RegionPartition {
            shards: shards as u32,
            shard_of,
        }
    }

    /// Wraps an externally computed assignment. `shard_of[v]` is the shard
    /// of vertex `v`; `shards` is the total shard count (shards may be
    /// empty).
    ///
    /// # Panics
    /// Panics if `shards == 0` or any assignment is `>= shards`.
    pub fn from_assignment(shard_of: Vec<u32>, shards: usize) -> RegionPartition {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            shard_of.iter().all(|&s| (s as usize) < shards),
            "assignment references a shard >= {shards}"
        );
        RegionPartition {
            shards: shards as u32,
            shard_of,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// The shard vertex `v` is assigned to.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> u32 {
        self.shard_of[v.index()]
    }

    /// The raw assignment, indexed by [`NodeId::index`].
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.shard_of
    }

    /// Number of vertices assigned to each shard.
    pub fn node_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shards as usize];
        for &s in &self.shard_of {
            counts[s as usize] += 1;
        }
        counts
    }

    /// Vertices assigned to `shard`, ascending.
    pub fn nodes_in(&self, shard: u32) -> Vec<NodeId> {
        self.shard_of
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Cut statistics of this partition over `net` (which must be the
    /// network the assignment was built for).
    pub fn stats(&self, net: &RoadNetwork) -> PartitionStats {
        assert_eq!(
            self.shard_of.len(),
            net.node_count(),
            "partition built for a different network"
        );
        let mut cut_edges = 0usize;
        let mut boundary = vec![false; net.node_count()];
        for v in net.nodes() {
            let sv = self.shard_of[v.index()];
            for (u, _) in net.out_edges(v) {
                if self.shard_of[u.index()] != sv {
                    cut_edges += 1;
                    boundary[v.index()] = true;
                    boundary[u.index()] = true;
                }
            }
        }
        let node_counts = self.node_counts();
        let max = node_counts.iter().copied().max().unwrap_or(0);
        let mean = net.node_count() as f64 / self.shards as f64;
        PartitionStats {
            shards: self.shards as usize,
            node_counts,
            cut_edges,
            boundary_nodes: boundary.iter().filter(|&&b| b).count(),
            imbalance: if mean > 0.0 { max as f64 / mean } else { 0.0 },
        }
    }
}

/// Cut and balance statistics of a [`RegionPartition`].
#[derive(Clone, Debug)]
pub struct PartitionStats {
    /// Shard count.
    pub shards: usize,
    /// Vertices per shard.
    pub node_counts: Vec<usize>,
    /// Directed edges whose endpoints lie in different shards.
    pub cut_edges: usize,
    /// Vertices incident to at least one cut edge (the vertex-cut
    /// replication frontier of a distributed deployment).
    pub boundary_nodes: usize,
    /// `max shard size / mean shard size` (1.0 = perfectly balanced).
    pub imbalance: f64,
}

/// Recursively splits `nodes` into `shards` shards, assigning leaf labels
/// starting at `first_shard` into `out`.
fn bisect(net: &RoadNetwork, nodes: &mut [u32], shards: u32, first_shard: u32, out: &mut [u32]) {
    if shards == 1 {
        for &v in nodes.iter() {
            out[v as usize] = first_shard;
        }
        return;
    }
    // Wider axis of the sub-region's bounding box.
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in nodes.iter() {
        let p = net.point(NodeId(v));
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let use_x = (max_x - min_x) >= (max_y - min_y);
    // Deterministic order: coordinate, then node id for coincident points.
    nodes.sort_unstable_by(|&a, &b| {
        let (pa, pb) = (net.point(NodeId(a)), net.point(NodeId(b)));
        let (ka, kb) = if use_x { (pa.x, pb.x) } else { (pa.y, pb.y) };
        ka.total_cmp(&kb).then_with(|| a.cmp(&b))
    });
    // Split proportionally to the leaf count on each side so odd shard
    // counts stay balanced.
    let left_shards = shards / 2;
    let right_shards = shards - left_shards;
    let split = (nodes.len() as u64 * u64::from(left_shards) / u64::from(shards)) as usize;
    let (left, right) = nodes.split_at_mut(split);
    bisect(net, left, left_shards, first_shard, out);
    bisect(net, right, right_shards, first_shard + left_shards, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use crate::Point;

    /// A `cols × rows` grid mesh with unit spacing.
    fn mesh(cols: usize, rows: usize) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        for y in 0..rows {
            for x in 0..cols {
                b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        let id = |x: usize, y: usize| NodeId((y * cols + x) as u32);
        for y in 0..rows {
            for x in 0..cols {
                if x + 1 < cols {
                    b.add_two_way(id(x, y), id(x + 1, y), 100.0).unwrap();
                }
                if y + 1 < rows {
                    b.add_two_way(id(x, y), id(x, y + 1), 100.0).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn single_shard_assigns_everything_to_zero() {
        let net = mesh(4, 4);
        let p = RegionPartition::build(&net, 1);
        assert_eq!(p.shard_count(), 1);
        assert!(net.nodes().all(|v| p.shard_of(v) == 0));
        let stats = p.stats(&net);
        assert_eq!(stats.cut_edges, 0);
        assert_eq!(stats.boundary_nodes, 0);
        assert_eq!(stats.imbalance, 1.0);
    }

    #[test]
    fn shards_are_balanced_for_many_counts() {
        let net = mesh(12, 12);
        for shards in [2usize, 3, 4, 5, 7, 8] {
            let p = RegionPartition::build(&net, shards);
            let counts = p.node_counts();
            assert_eq!(counts.iter().sum::<usize>(), net.node_count());
            let (min, max) = (
                counts.iter().copied().min().unwrap(),
                counts.iter().copied().max().unwrap(),
            );
            // Proportional splits keep every shard within a couple of
            // nodes of the mean.
            assert!(
                max - min <= shards,
                "{shards} shards imbalanced: {counts:?}"
            );
            assert!(counts.iter().all(|&c| c > 0), "empty shard: {counts:?}");
        }
    }

    #[test]
    fn two_shards_split_the_wider_axis() {
        // 8 wide x 4 tall: the split must separate left from right.
        let net = mesh(8, 4);
        let p = RegionPartition::build(&net, 2);
        for y in 0..4u32 {
            for x in 0..8u32 {
                let v = NodeId(y * 8 + x);
                let expect = u32::from(x >= 4);
                assert_eq!(p.shard_of(v), expect, "node ({x},{y})");
            }
        }
        // The cut crosses 4 rows, two directed edges each.
        assert_eq!(p.stats(&net).cut_edges, 8);
        assert_eq!(p.stats(&net).boundary_nodes, 8);
    }

    #[test]
    fn partition_is_deterministic() {
        let net = mesh(9, 7);
        let a = RegionPartition::build(&net, 4);
        let b = RegionPartition::build(&net, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn nodes_in_returns_each_node_once() {
        let net = mesh(6, 6);
        let p = RegionPartition::build(&net, 4);
        let mut seen = vec![false; net.node_count()];
        for s in 0..4 {
            for v in p.nodes_in(s) {
                assert!(!seen[v.index()], "{v:?} in two shards");
                seen[v.index()] = true;
                assert_eq!(p.shard_of(v), s);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn from_assignment_roundtrips() {
        let assignment = vec![0u32, 1, 1, 0, 2];
        let p = RegionPartition::from_assignment(assignment.clone(), 3);
        assert_eq!(p.assignment(), &assignment[..]);
        assert_eq!(p.node_counts(), vec![2, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "references a shard")]
    fn from_assignment_rejects_out_of_range() {
        RegionPartition::from_assignment(vec![0, 3], 3);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let net = mesh(3, 3);
        RegionPartition::build(&net, 0);
    }

    #[test]
    fn far_separated_components_split_cleanly() {
        // Two 3x3 islands 100 km apart: a 2-shard partition must isolate
        // them (this is the property the shard-equivalence tests lean on).
        let mut b = RoadNetworkBuilder::new();
        for island in 0..2 {
            let x0 = island as f64 * 100_000.0;
            let base = b.node_count() as u32;
            for y in 0..3 {
                for x in 0..3 {
                    b.add_node(Point::new(x0 + x as f64 * 100.0, y as f64 * 100.0));
                }
            }
            let id = |x: u32, y: u32| NodeId(base + y * 3 + x);
            for y in 0..3 {
                for x in 0..3 {
                    if x + 1 < 3 {
                        b.add_two_way(id(x, y), id(x + 1, y), 100.0).unwrap();
                    }
                    if y + 1 < 3 {
                        b.add_two_way(id(x, y), id(x, y + 1), 100.0).unwrap();
                    }
                }
            }
        }
        let net = b.build().unwrap();
        let p = RegionPartition::build(&net, 2);
        for v in 0..9u32 {
            assert_eq!(p.shard_of(NodeId(v)), 0);
            assert_eq!(p.shard_of(NodeId(v + 9)), 1);
        }
        assert_eq!(p.stats(&net).cut_edges, 0);
    }
}
