//! Error types for road-network construction and queries.

use std::fmt;

use crate::NodeId;

/// Errors raised while building or querying a road network.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadNetError {
    /// An edge referenced a node id that was never added.
    UnknownNode(NodeId),
    /// An edge weight was not a finite positive number.
    InvalidWeight {
        /// Source node of the offending edge.
        from: NodeId,
        /// Target node of the offending edge.
        to: NodeId,
        /// The rejected weight.
        weight: f64,
    },
    /// A self-loop edge was supplied (`from == to`); these carry no routing
    /// information and are rejected to keep Dijkstra invariants simple.
    SelfLoop(NodeId),
    /// The requested edge does not exist.
    NoSuchEdge(NodeId, NodeId),
    /// The network contains no nodes.
    EmptyNetwork,
}

impl fmt::Display for RoadNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadNetError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            RoadNetError::InvalidWeight { from, to, weight } => write!(
                f,
                "edge {from:?}->{to:?} has invalid weight {weight}; weights must be finite and > 0"
            ),
            RoadNetError::SelfLoop(n) => write!(f, "self-loop at {n:?} rejected"),
            RoadNetError::NoSuchEdge(u, v) => write!(f, "no edge {u:?}->{v:?}"),
            RoadNetError::EmptyNetwork => write!(f, "road network has no nodes"),
        }
    }
}

impl std::error::Error for RoadNetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RoadNetError::InvalidWeight {
            from: NodeId(1),
            to: NodeId(2),
            weight: -3.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("n1"));
        assert!(msg.contains("-3"));
        assert!(RoadNetError::EmptyNetwork.to_string().contains("no nodes"));
        assert!(RoadNetError::SelfLoop(NodeId(4)).to_string().contains("n4"));
    }
}
