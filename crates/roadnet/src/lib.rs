//! # netclus-roadnet — road-network substrate for NetClus
//!
//! Directed, weighted road-network graphs with the shortest-path machinery
//! the NetClus framework (Mitra et al., ICDE 2017) is built on:
//!
//! * [`RoadNetworkBuilder`] / [`RoadNetwork`] — construction (including the
//!   paper's mid-edge candidate-site augmentation) and frozen CSR storage
//!   with forward *and* reverse adjacency.
//! * [`DijkstraEngine`] — reusable, version-stamped single-source Dijkstra
//!   with distance bounds and early exit; `O(ν log ν)` per bounded run.
//! * [`RoundTripEngine`] — round-trip distances `dr(u, v) = d(u,v) + d(v,u)`
//!   and round-trip balls (the `Λ(v)` dominance sets of Greedy-GDSP).
//! * [`GridIndex`] — uniform-grid nearest-vertex / radius queries for map
//!   matching and site placement.
//! * [`strongly_connected_components`] — connectivity checks for generated
//!   networks.
//! * [`RegionPartition`] — region-based vertex partitioning (recursive
//!   median bisection) for sharded index builds and scatter-gather
//!   serving.
//!
//! All coordinates are planar meters (see [`geometry`]); all edge weights
//! are meters of road length.
//!
//! ## Quick example
//! ```
//! use netclus_roadnet::{Point, RoadNetworkBuilder, RoundTripEngine};
//!
//! let mut b = RoadNetworkBuilder::new();
//! let a = b.add_node(Point::new(0.0, 0.0));
//! let c = b.add_node(Point::new(0.0, 800.0));
//! b.add_two_way(a, c, 800.0).unwrap();
//! let net = b.build().unwrap();
//!
//! let mut rt = RoundTripEngine::for_network(&net);
//! assert_eq!(rt.round_trip(&net, a, c), Some(1600.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod dijkstra;
pub mod error;
pub mod geometry;
pub mod graph;
pub mod ids;
pub mod partition;
pub mod roundtrip;
pub mod scc;
pub mod spatial;

pub use csr::Csr;
pub use dijkstra::DijkstraEngine;
pub use error::RoadNetError;
pub use geometry::{project_wgs84, BoundingBox, Point, EARTH_RADIUS_M, KM};
pub use graph::{RoadNetwork, RoadNetworkBuilder};
pub use ids::{EdgeId, NodeId};
pub use partition::{PartitionStats, RegionPartition};
pub use roundtrip::RoundTripEngine;
pub use scc::{is_strongly_connected, strongly_connected_components, SccDecomposition};
pub use spatial::GridIndex;
