//! Dijkstra shortest-path engine with reusable, version-stamped buffers.
//!
//! The NetClus offline phase runs *hundreds of thousands* of bounded Dijkstra
//! searches (one or two per vertex per index instance, plus one pair per
//! candidate site at query time). Allocating and clearing `O(N)` state per
//! search would dominate the cost, so [`DijkstraEngine`] keeps its distance
//! and parent arrays alive across runs and invalidates them with a version
//! stamp — a run over a ball of `ν` vertices costs `O(ν log ν)` regardless of
//! the network size.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::csr::Csr;
use crate::NodeId;

/// Min-heap entry ordered by distance (ties broken by node id for
/// determinism).
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want smallest dist on top.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

const NO_PARENT: u32 = u32::MAX;

/// Reusable single-source Dijkstra solver.
///
/// Per-node state is one distance plus one `u64` stamp encoding both the
/// run version and the tentative/settled phase (`2·version` = tentative,
/// `2·version + 1` = settled) — a single array walk per relaxation instead
/// of the two separate stamp arrays a naive layout needs. Heap and
/// reached-list capacity is carried over from the previous run's ball
/// size, so steady-state bounded runs (hundreds of thousands per index
/// build) allocate nothing.
///
/// # Example
/// ```
/// use netclus_roadnet::{DijkstraEngine, RoadNetworkBuilder, Point, NodeId};
///
/// let mut b = RoadNetworkBuilder::new();
/// let a = b.add_node(Point::new(0.0, 0.0));
/// let c = b.add_node(Point::new(1.0, 0.0));
/// let d = b.add_node(Point::new(2.0, 0.0));
/// b.add_edge(a, c, 10.0).unwrap();
/// b.add_edge(c, d, 5.0).unwrap();
/// let net = b.build().unwrap();
///
/// let mut engine = DijkstraEngine::new(net.node_count());
/// engine.run(net.forward(), a);
/// assert_eq!(engine.distance(d), Some(15.0));
/// // Running on the reverse CSR gives distances *to* the source:
/// engine.run(net.backward(), d);
/// assert_eq!(engine.distance(a), Some(15.0));
/// ```
#[derive(Clone, Debug)]
pub struct DijkstraEngine {
    dist: Vec<f64>,
    /// `2·version` = tentative this run, `2·version + 1` = settled this
    /// run, anything smaller = stale. A `u64` cannot overflow in practice
    /// (2⁶³ runs).
    stamp: Vec<u64>,
    parent: Vec<u32>,
    version: u64,
    heap: BinaryHeap<HeapEntry>,
    reached: Vec<NodeId>,
    /// Ball size of the previous run — the capacity hint for this one.
    prev_ball: usize,
    track_parents: bool,
}

impl DijkstraEngine {
    /// Creates an engine for graphs of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        DijkstraEngine {
            dist: vec![f64::INFINITY; n],
            stamp: vec![0; n],
            parent: vec![NO_PARENT; n],
            version: 0,
            heap: BinaryHeap::new(),
            reached: Vec::new(),
            prev_ball: 0,
            track_parents: false,
        }
    }

    /// Enables or disables parent tracking (needed for
    /// [`DijkstraEngine::path_to`]). Off by default; tracking costs one extra
    /// write per relaxation.
    pub fn set_track_parents(&mut self, on: bool) {
        self.track_parents = on;
    }

    /// Full single-source run: settles every node reachable from `source`.
    pub fn run(&mut self, csr: &Csr, source: NodeId) {
        self.run_bounded(csr, source, f64::INFINITY);
    }

    /// Bounded run: settles exactly the nodes `v` with `d(source, v) ≤ bound`.
    ///
    /// Settled nodes are recorded in [`DijkstraEngine::reached`] in
    /// non-decreasing distance order.
    pub fn run_bounded(&mut self, csr: &Csr, source: NodeId, bound: f64) {
        self.run_bounded_until(csr, source, bound, |_, _| false);
    }

    /// Bounded run with early exit: stops as soon as `stop(node, dist)`
    /// returns true for a newly settled node (that node is still settled and
    /// recorded). Used for point-to-point queries.
    pub fn run_bounded_until<F>(&mut self, csr: &Csr, source: NodeId, bound: f64, mut stop: F)
    where
        F: FnMut(NodeId, f64) -> bool,
    {
        assert!(
            csr.node_count() <= self.dist.len(),
            "engine sized for {} nodes, graph has {}",
            self.dist.len(),
            csr.node_count()
        );
        self.version += 1;
        let tentative = self.version << 1;
        let settled = tentative | 1;
        self.heap.clear();
        self.reached.clear();
        // Capacity hint from the previous run: bounded balls from nearby
        // sources have similar sizes, so steady state allocates nothing.
        if self.heap.capacity() < self.prev_ball {
            self.heap.reserve(self.prev_ball);
        }
        if self.reached.capacity() < self.prev_ball {
            self.reached.reserve(self.prev_ball);
        }

        let s = source.index();
        self.dist[s] = 0.0;
        self.stamp[s] = tentative;
        if self.track_parents {
            self.parent[s] = NO_PARENT;
        }
        self.heap.push(HeapEntry {
            dist: 0.0,
            node: source.0,
        });

        while let Some(HeapEntry { dist, node }) = self.heap.pop() {
            let u = node as usize;
            if self.stamp[u] == settled {
                continue; // stale entry
            }
            if dist > bound {
                break; // min-heap ⇒ everything left exceeds the bound
            }
            self.stamp[u] = settled;
            self.reached.push(NodeId(node));
            if stop(NodeId(node), dist) {
                break;
            }
            for (nbr, w) in csr.neighbors(NodeId(node)) {
                let t = nbr.index();
                if self.stamp[t] == settled {
                    continue;
                }
                let nd = dist + w;
                if nd > bound {
                    continue; // keep the heap small
                }
                // Pre-push check: a node whose tentative distance is
                // already at least as good never enters the heap again.
                if self.stamp[t] < tentative || nd < self.dist[t] {
                    self.dist[t] = nd;
                    self.stamp[t] = tentative;
                    if self.track_parents {
                        self.parent[t] = node;
                    }
                    self.heap.push(HeapEntry {
                        dist: nd,
                        node: nbr.0,
                    });
                }
            }
        }
        self.prev_ball = self.reached.len();
    }

    /// Distance to `v` from the last run's source, if `v` was settled.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<f64> {
        if self.stamp[v.index()] == (self.version << 1 | 1) {
            Some(self.dist[v.index()])
        } else {
            None
        }
    }

    /// Nodes settled by the last run, in non-decreasing distance order.
    #[inline]
    pub fn reached(&self) -> &[NodeId] {
        &self.reached
    }

    /// Reconstructs the shortest path from the last run's source to `v`
    /// (inclusive of both endpoints). Requires parent tracking; returns
    /// `None` if `v` was not settled.
    ///
    /// Note: when running on a *backward* CSR the returned sequence is the
    /// reversed path in the original graph.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        assert!(self.track_parents, "enable set_track_parents(true) first");
        self.distance(v)?;
        let mut path = vec![v];
        let mut cur = v.0;
        while self.parent[cur as usize] != NO_PARENT {
            cur = self.parent[cur as usize];
            path.push(NodeId(cur));
        }
        path.reverse();
        Some(path)
    }

    /// Approximate heap footprint in bytes of the engine's buffers.
    pub fn heap_size_bytes(&self) -> usize {
        self.dist.capacity() * 8 + self.stamp.capacity() * 8 + self.parent.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::RoadNetworkBuilder;
    use crate::RoadNetwork;

    /// 0 -> 1 -> 2 -> 3 line with weights 1, 2, 3 and a shortcut 0 -> 2 (w=5).
    fn line() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 3.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 5.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_run_distances() {
        let net = line();
        let mut e = DijkstraEngine::new(net.node_count());
        e.run(net.forward(), NodeId(0));
        assert_eq!(e.distance(NodeId(0)), Some(0.0));
        assert_eq!(e.distance(NodeId(1)), Some(1.0));
        assert_eq!(e.distance(NodeId(2)), Some(3.0)); // via 1, not shortcut
        assert_eq!(e.distance(NodeId(3)), Some(6.0));
    }

    #[test]
    fn backward_run_gives_distance_to_source() {
        let net = line();
        let mut e = DijkstraEngine::new(net.node_count());
        e.run(net.backward(), NodeId(3));
        assert_eq!(e.distance(NodeId(0)), Some(6.0)); // d(0 -> 3)
        assert_eq!(e.distance(NodeId(2)), Some(3.0));
        assert_eq!(e.distance(NodeId(3)), Some(0.0));
    }

    #[test]
    fn bounded_run_excludes_far_nodes() {
        let net = line();
        let mut e = DijkstraEngine::new(net.node_count());
        e.run_bounded(net.forward(), NodeId(0), 3.0);
        assert_eq!(e.distance(NodeId(2)), Some(3.0)); // exactly at bound: settled
        assert_eq!(e.distance(NodeId(3)), None);
        assert_eq!(e.reached(), &[NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn reached_is_sorted_by_distance() {
        let net = line();
        let mut e = DijkstraEngine::new(net.node_count());
        e.run(net.forward(), NodeId(0));
        let dists: Vec<f64> = e
            .reached()
            .iter()
            .map(|&v| e.distance(v).unwrap())
            .collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn unreachable_nodes_are_none() {
        // 0 -> 1, node 2 isolated.
        let mut b = RoadNetworkBuilder::new();
        for i in 0..3 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let net = b.build().unwrap();
        let mut e = DijkstraEngine::new(net.node_count());
        e.run(net.forward(), NodeId(0));
        assert_eq!(e.distance(NodeId(2)), None);
        // Direction matters: from node 1 nothing is reachable but itself.
        e.run(net.forward(), NodeId(1));
        assert_eq!(e.distance(NodeId(0)), None);
        assert_eq!(e.distance(NodeId(1)), Some(0.0));
    }

    #[test]
    fn version_stamps_isolate_runs() {
        let net = line();
        let mut e = DijkstraEngine::new(net.node_count());
        e.run(net.forward(), NodeId(0));
        assert_eq!(e.distance(NodeId(3)), Some(6.0));
        e.run(net.forward(), NodeId(3));
        // Previous run's results must be invisible now.
        assert_eq!(e.distance(NodeId(0)), None);
        assert_eq!(e.distance(NodeId(3)), Some(0.0));
    }

    #[test]
    fn path_reconstruction() {
        let net = line();
        let mut e = DijkstraEngine::new(net.node_count());
        e.set_track_parents(true);
        e.run(net.forward(), NodeId(0));
        assert_eq!(
            e.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(e.path_to(NodeId(0)).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn early_stop_halts_search() {
        let net = line();
        let mut e = DijkstraEngine::new(net.node_count());
        e.run_bounded_until(net.forward(), NodeId(0), f64::INFINITY, |v, _| {
            v == NodeId(1)
        });
        assert_eq!(e.distance(NodeId(1)), Some(1.0));
        assert_eq!(e.distance(NodeId(2)), None); // never settled
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-length paths to node 3: 0->1->3 and 0->2->3.
        let mut b = RoadNetworkBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0));
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let net = b.build().unwrap();
        let mut e = DijkstraEngine::new(net.node_count());
        let mut orders = Vec::new();
        for _ in 0..3 {
            e.run(net.forward(), NodeId(0));
            orders.push(e.reached().to_vec());
        }
        assert_eq!(orders[0], orders[1]);
        assert_eq!(orders[1], orders[2]);
    }
}
