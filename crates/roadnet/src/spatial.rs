//! Uniform-grid spatial index over network vertices.
//!
//! Map matching and site placement need fast "nearest vertex" and "vertices
//! within radius" queries. Road-network vertices are distributed densely and
//! near-uniformly over a city extent, which makes a flat uniform grid both
//! simpler and faster than tree structures: `build` is a counting sort and a
//! radius query touches only the overlapping cells.

use crate::geometry::{BoundingBox, Point};
use crate::graph::RoadNetwork;
use crate::NodeId;

/// A uniform grid over node coordinates (CSR-style cell buckets).
#[derive(Clone, Debug)]
pub struct GridIndex {
    bbox: BoundingBox,
    cell_size: f64,
    nx: usize,
    ny: usize,
    /// CSR offsets into `node_ids`, one slot per cell (+1).
    cell_offsets: Vec<u32>,
    /// Node ids grouped by cell.
    node_ids: Vec<u32>,
}

impl GridIndex {
    /// Builds a grid over all vertices of `net` with the given `cell_size`
    /// in meters. A cell size near the median nearest-neighbor spacing (e.g.
    /// 100–500 m for city networks) works well.
    ///
    /// # Panics
    /// Panics if `cell_size` is not finite and positive.
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive, got {cell_size}"
        );
        let points = net.points();
        let mut bbox = net.bounding_box();
        if bbox.is_empty() {
            bbox = BoundingBox {
                min: Point::new(0.0, 0.0),
                max: Point::new(0.0, 0.0),
            };
        }
        let nx = ((bbox.width() / cell_size).floor() as usize + 1).max(1);
        let ny = ((bbox.height() / cell_size).floor() as usize + 1).max(1);
        let n_cells = nx * ny;

        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - bbox.min.x) / cell_size) as usize).min(nx - 1);
            let cy = (((p.y - bbox.min.y) / cell_size) as usize).min(ny - 1);
            cy * nx + cx
        };

        let mut cell_offsets = vec![0u32; n_cells + 1];
        for p in points {
            cell_offsets[cell_of(p) + 1] += 1;
        }
        for i in 0..n_cells {
            cell_offsets[i + 1] += cell_offsets[i];
        }
        let mut cursor = cell_offsets.clone();
        let mut node_ids = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            node_ids[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        GridIndex {
            bbox,
            cell_size,
            nx,
            ny,
            cell_offsets,
            node_ids,
        }
    }

    /// Nearest vertex to `p` and its Euclidean distance, or `None` for an
    /// empty network. Uses an expanding ring search over grid cells.
    pub fn nearest(&self, net: &RoadNetwork, p: Point) -> Option<(NodeId, f64)> {
        if self.node_ids.is_empty() {
            return None;
        }
        let (cx, cy) = self.cell_coords(&p);
        let mut best: Option<(NodeId, f64)> = None;
        let max_ring = self.nx.max(self.ny);
        for ring in 0..=max_ring {
            // Once we have a candidate, stop when the ring's nearest possible
            // point is farther than the candidate.
            if let Some((_, d)) = best {
                let ring_min_dist = (ring as f64 - 1.0).max(0.0) * self.cell_size;
                if ring_min_dist > d {
                    break;
                }
            }
            self.for_ring_cells(cx, cy, ring, |cell| {
                for &id in self.cell_nodes(cell) {
                    let v = NodeId(id);
                    let d = net.point(v).distance(&p);
                    if best.is_none_or(|(bv, bd)| d < bd || (d == bd && v < bv)) {
                        best = Some((v, d));
                    }
                }
            });
        }
        best
    }

    /// All vertices within Euclidean `radius` of `p`, with their distances,
    /// sorted by distance (ties by id).
    pub fn within(&self, net: &RoadNetwork, p: Point, radius: f64) -> Vec<(NodeId, f64)> {
        let mut out = Vec::new();
        if self.node_ids.is_empty() || radius < 0.0 {
            return out;
        }
        let (cx, cy) = self.cell_coords(&p);
        let reach = (radius / self.cell_size).ceil() as isize + 1;
        let x0 = (cx as isize - reach).max(0) as usize;
        let x1 = ((cx as isize + reach) as usize).min(self.nx - 1);
        let y0 = (cy as isize - reach).max(0) as usize;
        let y1 = ((cy as isize + reach) as usize).min(self.ny - 1);
        for y in y0..=y1 {
            for x in x0..=x1 {
                for &id in self.cell_nodes(y * self.nx + x) {
                    let v = NodeId(id);
                    let d = net.point(v).distance(&p);
                    if d <= radius {
                        out.push((v, d));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size_bytes(&self) -> usize {
        self.cell_offsets.capacity() * 4 + self.node_ids.capacity() * 4
    }

    fn cell_coords(&self, p: &Point) -> (usize, usize) {
        let cx =
            ((p.x - self.bbox.min.x) / self.cell_size).clamp(0.0, (self.nx - 1) as f64) as usize;
        let cy =
            ((p.y - self.bbox.min.y) / self.cell_size).clamp(0.0, (self.ny - 1) as f64) as usize;
        (cx, cy)
    }

    #[inline]
    fn cell_nodes(&self, cell: usize) -> &[u32] {
        let lo = self.cell_offsets[cell] as usize;
        let hi = self.cell_offsets[cell + 1] as usize;
        &self.node_ids[lo..hi]
    }

    /// Visits all cells at Chebyshev distance exactly `ring` from `(cx, cy)`.
    fn for_ring_cells<F: FnMut(usize)>(&self, cx: usize, cy: usize, ring: usize, mut f: F) {
        let r = ring as isize;
        let (cx, cy) = (cx as isize, cy as isize);
        for dy in -r..=r {
            for dx in -r..=r {
                if dx.abs().max(dy.abs()) != r {
                    continue;
                }
                let x = cx + dx;
                let y = cy + dy;
                if x >= 0 && (x as usize) < self.nx && y >= 0 && (y as usize) < self.ny {
                    f(y as usize * self.nx + x as usize);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    fn grid_net(n: u32, spacing: f64) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        for y in 0..n {
            for x in 0..n {
                b.add_node(Point::new(x as f64 * spacing, y as f64 * spacing));
            }
        }
        // Connectivity irrelevant for spatial tests; add one edge for realism.
        b.add_edge(NodeId(0), NodeId(1), spacing).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn nearest_finds_closest_node() {
        let net = grid_net(5, 100.0);
        let idx = GridIndex::build(&net, 100.0);
        let (v, d) = idx.nearest(&net, Point::new(105.0, 95.0)).unwrap();
        // Closest grid point is (100, 100) = node index 1*5+1 = 6.
        assert_eq!(v, NodeId(6));
        assert!((d - 50f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn nearest_exact_hit() {
        let net = grid_net(3, 50.0);
        let idx = GridIndex::build(&net, 75.0);
        let (v, d) = idx.nearest(&net, Point::new(100.0, 100.0)).unwrap();
        assert_eq!(v, NodeId(8));
        assert_eq!(d, 0.0);
    }

    #[test]
    fn nearest_far_outside_bbox() {
        let net = grid_net(3, 100.0);
        let idx = GridIndex::build(&net, 100.0);
        let (v, _) = idx.nearest(&net, Point::new(-5000.0, -5000.0)).unwrap();
        assert_eq!(v, NodeId(0));
        let (v, _) = idx.nearest(&net, Point::new(5000.0, 5000.0)).unwrap();
        assert_eq!(v, NodeId(8));
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let net = grid_net(6, 80.0);
        let idx = GridIndex::build(&net, 120.0);
        let q = Point::new(200.0, 170.0);
        let r = 165.0;
        let got = idx.within(&net, q, r);
        let mut expected: Vec<(NodeId, f64)> = net
            .nodes()
            .map(|v| (v, net.point(v).distance(&q)))
            .filter(|&(_, d)| d <= r)
            .collect();
        expected.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn within_zero_radius() {
        let net = grid_net(3, 100.0);
        let idx = GridIndex::build(&net, 100.0);
        let hits = idx.within(&net, Point::new(100.0, 100.0), 0.0);
        assert_eq!(hits, vec![(NodeId(4), 0.0)]);
        assert!(idx.within(&net, Point::new(50.0, 50.0), 0.0).is_empty());
    }

    #[test]
    fn single_node_network() {
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(3.0, 4.0));
        b.add_node(Point::new(10.0, 4.0));
        b.add_edge(NodeId(0), NodeId(1), 7.0).unwrap();
        let net = b.build().unwrap();
        let idx = GridIndex::build(&net, 1000.0);
        assert_eq!(idx.cell_count(), 1);
        let (v, d) = idx.nearest(&net, Point::new(0.0, 0.0)).unwrap();
        assert_eq!(v, NodeId(0));
        assert_eq!(d, 5.0);
    }

    #[test]
    fn nearest_tie_breaks_by_id() {
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(-10.0, 0.0));
        b.add_node(Point::new(10.0, 0.0));
        b.add_edge(NodeId(0), NodeId(1), 20.0).unwrap();
        let net = b.build().unwrap();
        let idx = GridIndex::build(&net, 5.0);
        let (v, d) = idx.nearest(&net, Point::new(0.0, 0.0)).unwrap();
        assert_eq!(v, NodeId(0));
        assert_eq!(d, 10.0);
    }
}
