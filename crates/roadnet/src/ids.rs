//! Strongly-typed identifiers for road-network entities.
//!
//! Node and edge identifiers are thin `u32` newtypes: the NetClus paper works
//! with city-scale networks of a few hundred thousand vertices, so 32 bits is
//! ample while halving the memory footprint of the adjacency structures
//! compared to `usize` indices.

use std::fmt;

/// Identifier of a road-network vertex (a road intersection, or a candidate
/// site that was folded into the vertex set).
///
/// `NodeId`s are dense indices in `0..N` assigned by the
/// [`RoadNetworkBuilder`](crate::RoadNetworkBuilder) in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index overflows u32");
        NodeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of a directed road segment.
///
/// Edge ids are assigned densely by insertion order in the builder. After the
/// network is frozen into CSR form, edges are addressed positionally, so
/// `EdgeId` is primarily useful while constructing or mutating a network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the raw index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "edge index overflows u32");
        EdgeId(index as u32)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, NodeId(42));
        assert_eq!(format!("{id:?}"), "n42");
        assert_eq!(format!("{id}"), "42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id:?}"), "e7");
    }

    #[test]
    fn node_id_ordering_matches_indices() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::from(5u32), NodeId(5));
    }

    #[test]
    fn node_id_is_small() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<Option<EdgeId>>(), 8);
    }
}
