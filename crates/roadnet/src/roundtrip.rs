//! Round-trip distance primitives.
//!
//! NetClus is built on the *round-trip* distance
//! `dr(u, v) = d(u, v) + d(v, u)` (Sec. 2 of the paper): it is symmetric even
//! on directed networks and measures the true extra travel of a detour. This
//! module computes round-trip balls (all nodes within round-trip distance
//! `L` of a center — the dominance sets `Λ(v)` of Greedy-GDSP use `L = 2R`)
//! and point-to-point round-trip distances.

use crate::dijkstra::DijkstraEngine;
use crate::graph::RoadNetwork;
use crate::NodeId;

/// Reusable engine computing round-trip distances via one forward and one
/// backward bounded Dijkstra.
#[derive(Clone, Debug)]
pub struct RoundTripEngine {
    fwd: DijkstraEngine,
    bwd: DijkstraEngine,
}

impl RoundTripEngine {
    /// Creates an engine for networks of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        RoundTripEngine {
            fwd: DijkstraEngine::new(n),
            bwd: DijkstraEngine::new(n),
        }
    }

    /// Convenience constructor sized for `net`.
    pub fn for_network(net: &RoadNetwork) -> Self {
        Self::new(net.node_count())
    }

    /// Computes the round-trip ball of `center`: every node `v` with
    /// `d(center, v) + d(v, center) ≤ limit`, together with that round-trip
    /// distance. The center itself is included with distance 0. Results are
    /// sorted by round-trip distance (ties by node id).
    ///
    /// Both component distances are individually ≤ `limit`, so this costs two
    /// Dijkstra runs bounded by `limit`.
    pub fn ball(&mut self, net: &RoadNetwork, center: NodeId, limit: f64) -> Vec<(NodeId, f64)> {
        self.fwd.run_bounded(net.forward(), center, limit);
        self.bwd.run_bounded(net.backward(), center, limit);
        let mut out = Vec::new();
        for &v in self.fwd.reached() {
            let df = self.fwd.distance(v).expect("reached node has distance");
            if let Some(db) = self.bwd.distance(v) {
                let rt = df + db;
                if rt <= limit {
                    out.push((v, rt));
                }
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Exact round-trip distance between `u` and `v`, or `None` if one
    /// direction is unreachable. Unbounded (two full Dijkstra runs with early
    /// exit at the target).
    pub fn round_trip(&mut self, net: &RoadNetwork, u: NodeId, v: NodeId) -> Option<f64> {
        self.round_trip_bounded(net, u, v, f64::INFINITY)
    }

    /// Round-trip distance if it is ≤ `limit`, else `None`.
    pub fn round_trip_bounded(
        &mut self,
        net: &RoadNetwork,
        u: NodeId,
        v: NodeId,
        limit: f64,
    ) -> Option<f64> {
        self.fwd
            .run_bounded_until(net.forward(), u, limit, |n, _| n == v);
        let d_uv = self.fwd.distance(v)?;
        let remaining = limit - d_uv;
        self.bwd
            .run_bounded_until(net.backward(), u, remaining, |n, _| n == v);
        let d_vu = self.bwd.distance(v)?;
        let rt = d_uv + d_vu;
        (rt <= limit).then_some(rt)
    }

    /// Access the forward engine state from the most recent
    /// [`RoundTripEngine::ball`] call: `distance(v) = d(center, v)`.
    pub fn forward_engine(&self) -> &DijkstraEngine {
        &self.fwd
    }

    /// Access the backward engine state from the most recent
    /// [`RoundTripEngine::ball`] call: `distance(v) = d(v, center)`.
    pub fn backward_engine(&self) -> &DijkstraEngine {
        &self.bwd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::RoadNetworkBuilder;

    /// Directed ring 0 -> 1 -> 2 -> 3 -> 0, each edge weight 1.
    fn ring(n: u32) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as f64, 0.0));
        }
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn round_trip_on_directed_ring() {
        let net = ring(4);
        let mut e = RoundTripEngine::for_network(&net);
        // d(0,1) = 1, d(1,0) = 3 → round trip 4, regardless of direction.
        assert_eq!(e.round_trip(&net, NodeId(0), NodeId(1)), Some(4.0));
        assert_eq!(e.round_trip(&net, NodeId(1), NodeId(0)), Some(4.0));
        assert_eq!(e.round_trip(&net, NodeId(0), NodeId(2)), Some(4.0));
    }

    #[test]
    fn round_trip_symmetry_random() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 30u32;
        let mut b = RoadNetworkBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as f64, 0.0));
        }
        // Ring for strong connectivity plus random chords.
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n), 1.0 + rng.random::<f64>())
                .unwrap();
        }
        for _ in 0..40 {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v {
                b.add_edge(NodeId(u), NodeId(v), 0.5 + rng.random::<f64>() * 3.0)
                    .unwrap();
            }
        }
        let net = b.build().unwrap();
        let mut e = RoundTripEngine::for_network(&net);
        for _ in 0..30 {
            let u = NodeId(rng.random_range(0..n));
            let v = NodeId(rng.random_range(0..n));
            let a = e.round_trip(&net, u, v);
            let b2 = e.round_trip(&net, v, u);
            match (a, b2) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "dr({u},{v}) asymmetric"),
                (None, None) => {}
                _ => panic!("reachability asymmetric for round trip"),
            }
        }
    }

    #[test]
    fn ball_contains_exactly_nodes_within_limit() {
        let net = ring(6); // round trip between any two distinct nodes = 6
        let mut e = RoundTripEngine::for_network(&net);
        let ball = e.ball(&net, NodeId(0), 5.9);
        assert_eq!(ball, vec![(NodeId(0), 0.0)]);
        let ball = e.ball(&net, NodeId(0), 6.0);
        assert_eq!(ball.len(), 6);
        assert_eq!(ball[0], (NodeId(0), 0.0));
        for &(v, rt) in &ball[1..] {
            assert!(v != NodeId(0));
            assert_eq!(rt, 6.0);
        }
    }

    #[test]
    fn ball_limit_zero_is_self_only() {
        let net = ring(4);
        let mut e = RoundTripEngine::for_network(&net);
        assert_eq!(e.ball(&net, NodeId(2), 0.0), vec![(NodeId(2), 0.0)]);
    }

    #[test]
    fn bounded_round_trip_rejects_over_limit() {
        let net = ring(4);
        let mut e = RoundTripEngine::for_network(&net);
        assert_eq!(e.round_trip_bounded(&net, NodeId(0), NodeId(1), 3.9), None);
        assert_eq!(
            e.round_trip_bounded(&net, NodeId(0), NodeId(1), 4.0),
            Some(4.0)
        );
    }

    #[test]
    fn unreachable_round_trip_is_none() {
        // 0 -> 1 only; no way back.
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let net = b.build().unwrap();
        let mut e = RoundTripEngine::for_network(&net);
        assert_eq!(e.round_trip(&net, NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn ball_distances_match_pointwise_round_trips() {
        let net = ring(5);
        let mut e = RoundTripEngine::for_network(&net);
        let ball = e.ball(&net, NodeId(1), 10.0);
        let mut check = RoundTripEngine::for_network(&net);
        for &(v, rt) in &ball {
            if v == NodeId(1) {
                assert_eq!(rt, 0.0);
            } else {
                assert_eq!(check.round_trip(&net, NodeId(1), v), Some(rt));
            }
        }
    }
}
