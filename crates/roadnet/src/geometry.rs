//! Planar geometry primitives.
//!
//! Road networks are embedded in a local planar coordinate system measured in
//! **meters** (an azimuthal projection of the city region). Working in meters
//! keeps every distance in the library — edge weights, coverage thresholds
//! `τ`, cluster radii `R_p` — in one unit and avoids repeated geodesic math on
//! hot paths. A helper is provided to project WGS-84 coordinates into this
//! local frame for users starting from raw GPS data.

/// One kilometer, in the library's canonical meter unit.
pub const KM: f64 = 1000.0;

/// Mean Earth radius in meters (IUGG), used by the equirectangular projection.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A point in the local planar frame, in meters.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from easting/northing meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance; cheaper when only comparisons are needed.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

/// Projects a WGS-84 coordinate into the local planar frame anchored at
/// `origin` (an equirectangular projection, accurate to well under 0.5% over
/// city-scale extents of a few tens of kilometers).
///
/// `lat`/`lon` and the origin are in decimal degrees.
pub fn project_wgs84(lat: f64, lon: f64, origin_lat: f64, origin_lon: f64) -> Point {
    let lat_r = lat.to_radians();
    let origin_lat_r = origin_lat.to_radians();
    let mean_lat = 0.5 * (lat_r + origin_lat_r);
    let x = (lon - origin_lon).to_radians() * mean_lat.cos() * EARTH_RADIUS_M;
    let y = (lat - origin_lat).to_radians() * EARTH_RADIUS_M;
    Point { x, y }
}

/// An axis-aligned bounding box in the local planar frame.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BoundingBox {
    /// Minimum corner (south-west).
    pub min: Point,
    /// Maximum corner (north-east).
    pub max: Point,
}

impl BoundingBox {
    /// An inverted box that is the identity for [`BoundingBox::extend`].
    pub fn empty() -> Self {
        BoundingBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Returns true if no point has been added yet.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Grows the box to include `p`.
    pub fn extend(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Computes the tight box around `points`; empty box for an empty slice.
    pub fn around(points: &[Point]) -> Self {
        let mut bb = BoundingBox::empty();
        for p in points {
            bb.extend(*p);
        }
        bb
    }

    /// Width (east-west extent) in meters; zero for an empty box.
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (north-south extent) in meters; zero for an empty box.
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Smallest distance from `p` to the box (zero when inside).
    pub fn distance_to(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(b.distance(&a), 5.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert_eq!(mid, Point::new(5.0, 10.0));
    }

    #[test]
    fn projection_is_locally_metric() {
        // Beijing city center; one degree of latitude is ~111.2 km.
        let origin = (39.9042, 116.4074);
        let north = project_wgs84(39.9132, 116.4074, origin.0, origin.1);
        assert!((north.y - 1000.0).abs() < 5.0, "got {}", north.y);
        assert!(north.x.abs() < 1e-6);
        // One degree of longitude at 39.9° N is ~85.3 km.
        let east = project_wgs84(39.9042, 116.4191, origin.0, origin.1);
        assert!((east.x - 1000.0).abs() < 10.0, "got {}", east.x);
    }

    #[test]
    fn bbox_basics() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let bb = BoundingBox::around(&pts);
        assert_eq!(bb.min, Point::new(-2.0, -1.0));
        assert_eq!(bb.max, Point::new(4.0, 5.0));
        assert_eq!(bb.width(), 6.0);
        assert_eq!(bb.height(), 6.0);
        assert!(bb.contains(&Point::new(0.0, 0.0)));
        assert!(!bb.contains(&Point::new(10.0, 0.0)));
    }

    #[test]
    fn bbox_empty() {
        let bb = BoundingBox::empty();
        assert!(bb.is_empty());
        assert_eq!(bb.width(), 0.0);
        assert_eq!(bb.height(), 0.0);
        assert!(BoundingBox::around(&[]).is_empty());
    }

    #[test]
    fn bbox_distance_to_point() {
        let bb = BoundingBox::around(&[Point::new(0.0, 0.0), Point::new(10.0, 10.0)]);
        assert_eq!(bb.distance_to(&Point::new(5.0, 5.0)), 0.0);
        assert_eq!(bb.distance_to(&Point::new(13.0, 14.0)), 5.0);
        assert_eq!(bb.distance_to(&Point::new(-3.0, 5.0)), 3.0);
    }
}
