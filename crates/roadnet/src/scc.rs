//! Strongly connected components (iterative Tarjan).
//!
//! Synthetic and map-extracted road networks can contain dead-end one-way
//! stubs from which a round trip is impossible. The data generator uses this
//! module to verify (and the tests to assert) strong connectivity, which
//! keeps round-trip distances total on the main component.

use crate::graph::RoadNetwork;
use crate::NodeId;

/// The strongly-connected-component decomposition of a network.
#[derive(Clone, Debug)]
pub struct SccDecomposition {
    /// Component id per node (dense, `0..component_count`).
    comp: Vec<u32>,
    /// Number of components.
    count: usize,
}

impl SccDecomposition {
    /// Component id of `v`.
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.comp[v.index()]
    }

    /// Number of strongly connected components.
    pub fn component_count(&self) -> usize {
        self.count
    }

    /// Nodes of the largest component (ties broken by smallest component id).
    pub fn largest_component(&self) -> Vec<NodeId> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.comp {
            sizes[c as usize] += 1;
        }
        let best = sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        self.comp
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == best)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

/// Computes the SCC decomposition of `net` with an iterative Tarjan
/// algorithm (explicit stack; safe on 10⁵-node-deep graphs).
pub fn strongly_connected_components(net: &RoadNetwork) -> SccDecomposition {
    let n = net.node_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;

    // Explicit DFS frames: (node, edge iterator position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    // Materialized out-neighbor list per frame would cost memory; instead we
    // re-enumerate via nth(). Out-degrees are tiny (planar), so this is fine.
    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let next_edge = net.out_edges(NodeId(v)).nth(*ei);
            match next_edge {
                Some((w, _)) => {
                    *ei += 1;
                    let wi = w.index();
                    if index[wi] == UNVISITED {
                        index[wi] = next_index;
                        lowlink[wi] = next_index;
                        next_index += 1;
                        stack.push(w.0);
                        on_stack[wi] = true;
                        frames.push((w.0, 0));
                    } else if on_stack[wi] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[wi]);
                    }
                }
                None => {
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        lowlink[parent as usize] =
                            lowlink[parent as usize].min(lowlink[v as usize]);
                    }
                    if lowlink[v as usize] == index[v as usize] {
                        // v is a root; pop its component.
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp[w as usize] = comp_count;
                            if w == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                }
            }
        }
    }

    SccDecomposition {
        comp,
        count: comp_count as usize,
    }
}

/// True if every node can reach every other node.
pub fn is_strongly_connected(net: &RoadNetwork) -> bool {
    net.node_count() > 0 && strongly_connected_components(net).component_count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::RoadNetworkBuilder;

    fn net_from_edges(n: u32, edges: &[(u32, u32)]) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as f64, 0.0));
        }
        for &(u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_is_one_scc() {
        let net = net_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(is_strongly_connected(&net));
        let scc = strongly_connected_components(&net);
        assert_eq!(scc.component_count(), 1);
        assert_eq!(scc.largest_component().len(), 5);
    }

    #[test]
    fn chain_is_all_singletons() {
        let net = net_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(!is_strongly_connected(&net));
        let scc = strongly_connected_components(&net);
        assert_eq!(scc.component_count(), 4);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // Cycle {0,1,2} -> bridge -> cycle {3,4}.
        let net = net_from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]);
        let scc = strongly_connected_components(&net);
        assert_eq!(scc.component_count(), 2);
        let c012 = scc.component_of(NodeId(0));
        assert_eq!(scc.component_of(NodeId(1)), c012);
        assert_eq!(scc.component_of(NodeId(2)), c012);
        let c34 = scc.component_of(NodeId(3));
        assert_eq!(scc.component_of(NodeId(4)), c34);
        assert_ne!(c012, c34);
        assert_eq!(scc.largest_component().len(), 3);
    }

    #[test]
    fn isolated_nodes_are_components() {
        let net = net_from_edges(3, &[(0, 1), (1, 0)]);
        let scc = strongly_connected_components(&net);
        assert_eq!(scc.component_count(), 2);
        assert_eq!(scc.largest_component().len(), 2);
    }

    #[test]
    fn deep_cycle_does_not_overflow_stack() {
        // 50k-node directed ring: recursion would overflow, iteration must not.
        let n = 50_000u32;
        let mut b = RoadNetworkBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as f64, 0.0));
        }
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n), 1.0).unwrap();
        }
        let net = b.build().unwrap();
        assert!(is_strongly_connected(&net));
    }
}
