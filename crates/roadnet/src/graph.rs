//! Road-network construction and the frozen [`RoadNetwork`] type.
//!
//! Networks are built incrementally with [`RoadNetworkBuilder`] (which also
//! supports the paper's candidate-site augmentation: splitting an edge to
//! place a site mid-segment, Sec. 2) and then frozen into an immutable
//! [`RoadNetwork`] holding forward and reverse CSR adjacency plus node
//! coordinates.

use crate::csr::Csr;
use crate::error::RoadNetError;
use crate::geometry::{BoundingBox, Point};
use crate::{EdgeId, NodeId};

/// Incremental builder for a directed, weighted road network.
///
/// # Example
/// ```
/// use netclus_roadnet::{RoadNetworkBuilder, Point};
///
/// let mut b = RoadNetworkBuilder::new();
/// let a = b.add_node(Point::new(0.0, 0.0));
/// let c = b.add_node(Point::new(100.0, 0.0));
/// b.add_two_way(a, c, 100.0).unwrap();
/// let net = b.build().unwrap();
/// assert_eq!(net.node_count(), 2);
/// assert_eq!(net.edge_count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoadNetworkBuilder {
    points: Vec<Point>,
    edges: Vec<(u32, u32, f64)>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with reserved capacity for `nodes` and `edges`.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        RoadNetworkBuilder {
            points: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a vertex at `point` and returns its dense id.
    pub fn add_node(&mut self, point: Point) -> NodeId {
        let id = NodeId::from_index(self.points.len());
        self.points.push(point);
        id
    }

    /// Adds a directed edge `from -> to` of length `weight` meters.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: f64,
    ) -> Result<EdgeId, RoadNetError> {
        self.validate_edge(from, to, weight)?;
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push((from.0, to.0, weight));
        Ok(id)
    }

    /// Adds both `from -> to` and `to -> from` with the same weight
    /// (a two-way street).
    pub fn add_two_way(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: f64,
    ) -> Result<(EdgeId, EdgeId), RoadNetError> {
        let a = self.add_edge(from, to, weight)?;
        let b = self.add_edge(to, from, weight)?;
        Ok((a, b))
    }

    /// Adds a directed edge whose weight is the Euclidean distance between
    /// the endpoint coordinates.
    pub fn add_edge_euclidean(&mut self, from: NodeId, to: NodeId) -> Result<EdgeId, RoadNetError> {
        let (pf, pt) = (self.point_of(from)?, self.point_of(to)?);
        let w = pf.distance(&pt);
        self.add_edge(from, to, w)
    }

    /// Splits the directed edge `from -> to` at `fraction ∈ (0, 1)` of its
    /// length, inserting a new vertex `w` there. The original edge is removed
    /// and replaced by `from -> w` and `w -> to` (the paper's candidate-site
    /// augmentation, Sec. 2). Returns the new vertex id.
    ///
    /// If a reverse edge `to -> from` exists it is *not* touched; call this
    /// again in the other direction for two-way streets.
    pub fn insert_on_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        fraction: f64,
    ) -> Result<NodeId, RoadNetError> {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be strictly inside (0, 1), got {fraction}"
        );
        let pos = self
            .edges
            .iter()
            .position(|&(f, t, _)| f == from.0 && t == to.0)
            .ok_or(RoadNetError::NoSuchEdge(from, to))?;
        let (_, _, w) = self.edges[pos];
        let (pf, pt) = (self.point_of(from)?, self.point_of(to)?);
        let mid = pf.lerp(&pt, fraction);
        let new_node = self.add_node(mid);
        // Replace in place, then push the second half.
        self.edges[pos] = (from.0, new_node.0, w * fraction);
        self.edges.push((new_node.0, to.0, w * (1.0 - fraction)));
        Ok(new_node)
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Coordinates of an already-added node.
    pub fn point(&self, v: NodeId) -> Option<Point> {
        self.points.get(v.index()).copied()
    }

    /// Number of directed edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable [`RoadNetwork`].
    pub fn build(self) -> Result<RoadNetwork, RoadNetError> {
        if self.points.is_empty() {
            return Err(RoadNetError::EmptyNetwork);
        }
        let n = self.points.len();
        let forward = Csr::from_edges(n, &self.edges, false);
        let backward = Csr::from_edges(n, &self.edges, true);
        Ok(RoadNetwork {
            points: self.points,
            forward,
            backward,
        })
    }

    fn point_of(&self, v: NodeId) -> Result<Point, RoadNetError> {
        self.points
            .get(v.index())
            .copied()
            .ok_or(RoadNetError::UnknownNode(v))
    }

    fn validate_edge(&self, from: NodeId, to: NodeId, weight: f64) -> Result<(), RoadNetError> {
        if from.index() >= self.points.len() {
            return Err(RoadNetError::UnknownNode(from));
        }
        if to.index() >= self.points.len() {
            return Err(RoadNetError::UnknownNode(to));
        }
        if from == to {
            return Err(RoadNetError::SelfLoop(from));
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(RoadNetError::InvalidWeight { from, to, weight });
        }
        Ok(())
    }
}

/// An immutable directed, weighted road network.
///
/// Node set `V` = road intersections (plus any candidate sites folded in via
/// [`RoadNetworkBuilder::insert_on_edge`]); directed edges model the traffic
/// direction of each road segment, weighted by length in meters.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    points: Vec<Point>,
    forward: Csr,
    backward: Csr,
}

impl RoadNetwork {
    /// Number of vertices `N = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Number of directed edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.forward.edge_count()
    }

    /// Iterator over all node ids, in dense order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.points.len() as u32).map(NodeId)
    }

    /// Planar coordinates of `v`.
    #[inline]
    pub fn point(&self, v: NodeId) -> Point {
        self.points[v.index()]
    }

    /// All node coordinates, indexed by [`NodeId::index`].
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Outgoing `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.forward.neighbors(v)
    }

    /// Incoming `(source, weight)` pairs of `v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.backward.neighbors(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.forward.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.backward.degree(v)
    }

    /// Weight of edge `from -> to` if it exists (min over parallel edges).
    pub fn edge_weight(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.forward.edge_weight(from, to)
    }

    /// Forward (out-edge) CSR — the adjacency to run Dijkstra *from* a source.
    #[inline]
    pub fn forward(&self) -> &Csr {
        &self.forward
    }

    /// Backward (in-edge) CSR — running Dijkstra on this from `s` yields
    /// `d(v, s)` for all `v`.
    #[inline]
    pub fn backward(&self) -> &Csr {
        &self.backward
    }

    /// Tight bounding box around all node coordinates.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::around(&self.points)
    }

    /// Sum of all directed edge lengths, in meters.
    pub fn total_edge_length(&self) -> f64 {
        self.nodes()
            .flat_map(|v| self.out_edges(v).map(|(_, w)| w))
            .sum()
    }

    /// Approximate heap footprint in bytes (coordinates + both CSRs).
    pub fn heap_size_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<Point>()
            + self.forward.heap_size_bytes()
            + self.backward.heap_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(0.0, 100.0));
        b.add_edge(n0, n1, 100.0).unwrap();
        b.add_edge(n1, n2, 150.0).unwrap();
        b.add_edge(n2, n0, 120.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_and_query_triangle() {
        let net = triangle();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 3);
        assert_eq!(net.out_degree(NodeId(0)), 1);
        assert_eq!(net.in_degree(NodeId(0)), 1);
        assert_eq!(net.edge_weight(NodeId(0), NodeId(1)), Some(100.0));
        assert_eq!(net.edge_weight(NodeId(1), NodeId(0)), None);
        assert_eq!(net.total_edge_length(), 370.0);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        assert!(matches!(
            b.add_edge(n0, NodeId(9), 1.0),
            Err(RoadNetError::UnknownNode(_))
        ));
        assert!(matches!(
            b.add_edge(n0, n0, 1.0),
            Err(RoadNetError::SelfLoop(_))
        ));
        assert!(matches!(
            b.add_edge(n0, n1, 0.0),
            Err(RoadNetError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(n0, n1, f64::NAN),
            Err(RoadNetError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(n0, n1, f64::INFINITY),
            Err(RoadNetError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn empty_network_rejected() {
        assert!(matches!(
            RoadNetworkBuilder::new().build(),
            Err(RoadNetError::EmptyNetwork)
        ));
    }

    #[test]
    fn two_way_adds_both_directions() {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(3.0, 4.0));
        b.add_two_way(n0, n1, 5.0).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.edge_weight(n0, n1), Some(5.0));
        assert_eq!(net.edge_weight(n1, n0), Some(5.0));
    }

    #[test]
    fn euclidean_edge_weight() {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(3.0, 4.0));
        b.add_edge_euclidean(n0, n1).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.edge_weight(n0, n1), Some(5.0));
    }

    #[test]
    fn insert_on_edge_splits_segment() {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        b.add_edge(n0, n1, 100.0).unwrap();
        let w = b.insert_on_edge(n0, n1, 0.25).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 2);
        assert_eq!(net.edge_weight(n0, n1), None);
        assert_eq!(net.edge_weight(n0, w), Some(25.0));
        assert_eq!(net.edge_weight(w, n1), Some(75.0));
        assert_eq!(net.point(w), Point::new(25.0, 0.0));
    }

    #[test]
    fn insert_on_missing_edge_errors() {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        assert!(matches!(
            b.insert_on_edge(n0, n1, 0.5),
            Err(RoadNetError::NoSuchEdge(_, _))
        ));
    }

    #[test]
    fn bounding_box_covers_nodes() {
        let net = triangle();
        let bb = net.bounding_box();
        assert_eq!(bb.min, Point::new(0.0, 0.0));
        assert_eq!(bb.max, Point::new(100.0, 100.0));
    }

    #[test]
    fn heap_size_is_positive() {
        assert!(triangle().heap_size_bytes() > 0);
    }
}
