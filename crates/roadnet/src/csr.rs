//! Compressed sparse row (CSR) adjacency storage.
//!
//! City road networks are almost planar (|E| ≈ |V|), so adjacency is stored
//! in two flat CSR arrays — one for outgoing edges, one (reversed) for
//! incoming edges — giving cache-friendly scans in Dijkstra and O(1) degree
//! queries. All hot loops in the workspace run over these arrays.

use crate::NodeId;

/// One direction of adjacency in CSR form.
///
/// For node `v`, its neighbors live at `targets[offsets[v] .. offsets[v+1]]`
/// with parallel `weights`.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

impl Csr {
    /// Builds a CSR from an edge list over `n_nodes` vertices.
    ///
    /// If `reverse` is true the edges are transposed first (producing an
    /// in-edge adjacency). Uses a counting sort, O(|V| + |E|).
    pub fn from_edges(n_nodes: usize, edges: &[(u32, u32, f64)], reverse: bool) -> Csr {
        let mut offsets = vec![0u32; n_nodes + 1];
        for &(from, to, _) in edges {
            let src = if reverse { to } else { from };
            offsets[src as usize + 1] += 1;
        }
        for i in 0..n_nodes {
            offsets[i + 1] += offsets[i];
        }
        let m = edges.len();
        let mut targets = vec![0u32; m];
        let mut weights = vec![0f64; m];
        let mut cursor = offsets.clone();
        for &(from, to, w) in edges {
            let (src, dst) = if reverse { (to, from) } else { (from, to) };
            let slot = cursor[src as usize] as usize;
            targets[slot] = dst;
            weights[slot] = w;
            cursor[src as usize] += 1;
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates over `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let i = v.index();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&t, &w)| (NodeId(t), w))
    }

    /// Looks up the weight of the edge `from -> to`, if present. When
    /// parallel edges exist, returns the smallest weight.
    pub fn edge_weight(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.neighbors(from)
            .filter(|&(t, _)| t == to)
            .map(|(_, w)| w)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.targets.capacity() * std::mem::size_of::<u32>()
            + self.weights.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> Vec<(u32, u32, f64)> {
        vec![(0, 1, 1.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 4.0)]
    }

    #[test]
    fn forward_adjacency() {
        let csr = Csr::from_edges(3, &sample_edges(), false);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.degree(NodeId(0)), 2);
        assert_eq!(csr.degree(NodeId(1)), 1);
        assert_eq!(csr.degree(NodeId(2)), 1);
        let mut n0: Vec<_> = csr.neighbors(NodeId(0)).collect();
        n0.sort_by_key(|&(n, _)| n);
        assert_eq!(n0, vec![(NodeId(1), 1.0), (NodeId(2), 2.0)]);
    }

    #[test]
    fn reverse_adjacency_transposes() {
        let csr = Csr::from_edges(3, &sample_edges(), true);
        // In-edges of node 2 are 0->2 (w=2) and 1->2 (w=3).
        let mut n2: Vec<_> = csr.neighbors(NodeId(2)).collect();
        n2.sort_by_key(|&(n, _)| n);
        assert_eq!(n2, vec![(NodeId(0), 2.0), (NodeId(1), 3.0)]);
        assert_eq!(csr.degree(NodeId(0)), 1); // only 2->0
    }

    #[test]
    fn edge_weight_lookup() {
        let csr = Csr::from_edges(3, &sample_edges(), false);
        assert_eq!(csr.edge_weight(NodeId(0), NodeId(2)), Some(2.0));
        assert_eq!(csr.edge_weight(NodeId(2), NodeId(1)), None);
    }

    #[test]
    fn parallel_edges_take_min_weight() {
        let edges = vec![(0, 1, 5.0), (0, 1, 2.0)];
        let csr = Csr::from_edges(2, &edges, false);
        assert_eq!(csr.edge_weight(NodeId(0), NodeId(1)), Some(2.0));
        assert_eq!(csr.degree(NodeId(0)), 2);
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let csr = Csr::from_edges(5, &[(0, 1, 1.0)], false);
        for v in 2..5 {
            assert_eq!(csr.degree(NodeId(v)), 0);
            assert_eq!(csr.neighbors(NodeId(v)).count(), 0);
        }
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[], false);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }
}
