//! Property-based tests for the road-network substrate.
//!
//! Dijkstra is cross-checked against a naive Floyd–Warshall oracle on random
//! strongly-connected graphs, and the round-trip primitives are checked
//! against the metric identities the NetClus index relies on.

use netclus_roadnet::{
    is_strongly_connected, DijkstraEngine, NodeId, Point, RoadNetwork, RoadNetworkBuilder,
    RoundTripEngine,
};
use proptest::prelude::*;

/// A random strongly-connected directed graph: a ring (guaranteeing strong
/// connectivity) plus arbitrary chord edges with weights in [0.1, 10].
#[derive(Clone, Debug)]
struct RandomNet {
    n: usize,
    chords: Vec<(usize, usize, f64)>,
    ring_weights: Vec<f64>,
}

fn random_net_strategy(max_n: usize, max_chords: usize) -> impl Strategy<Value = RandomNet> {
    (3..=max_n)
        .prop_flat_map(move |n| {
            let chords = prop::collection::vec((0..n, 0..n, 0.1f64..10.0), 0..=max_chords);
            let ring = prop::collection::vec(0.1f64..10.0, n);
            (Just(n), chords, ring)
        })
        .prop_map(|(n, chords, ring_weights)| RandomNet {
            n,
            chords,
            ring_weights,
        })
}

fn build(rn: &RandomNet) -> RoadNetwork {
    let mut b = RoadNetworkBuilder::new();
    for i in 0..rn.n {
        b.add_node(Point::new(i as f64, 0.0));
    }
    for i in 0..rn.n {
        b.add_edge(
            NodeId(i as u32),
            NodeId(((i + 1) % rn.n) as u32),
            rn.ring_weights[i],
        )
        .unwrap();
    }
    for &(u, v, w) in &rn.chords {
        if u != v {
            b.add_edge(NodeId(u as u32), NodeId(v as u32), w).unwrap();
        }
    }
    b.build().unwrap()
}

/// O(n³) all-pairs oracle.
#[allow(clippy::needless_range_loop)] // index symmetry mirrors the textbook algorithm
fn floyd_warshall(net: &RoadNetwork) -> Vec<Vec<f64>> {
    let n = net.node_count();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for u in net.nodes() {
        for (v, w) in net.out_edges(u) {
            let e = &mut d[u.index()][v.index()];
            if w < *e {
                *e = w;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[i][k];
            if !dik.is_finite() {
                continue;
            }
            for j in 0..n {
                let alt = dik + d[k][j];
                if alt < d[i][j] {
                    d[i][j] = alt;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_floyd_warshall(rn in random_net_strategy(24, 40)) {
        let net = build(&rn);
        let oracle = floyd_warshall(&net);
        let mut e = DijkstraEngine::new(net.node_count());
        for s in net.nodes() {
            e.run(net.forward(), s);
            for t in net.nodes() {
                let got = e.distance(t).unwrap_or(f64::INFINITY);
                let want = oracle[s.index()][t.index()];
                prop_assert!((got - want).abs() < 1e-9,
                    "d({s},{t}): dijkstra {got} vs oracle {want}");
            }
        }
    }

    #[test]
    fn backward_dijkstra_is_transposed_forward(rn in random_net_strategy(20, 30)) {
        let net = build(&rn);
        let oracle = floyd_warshall(&net);
        let mut e = DijkstraEngine::new(net.node_count());
        for t in net.nodes() {
            e.run(net.backward(), t);
            for s in net.nodes() {
                let got = e.distance(s).unwrap_or(f64::INFINITY);
                let want = oracle[s.index()][t.index()];
                prop_assert!((got - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn bounded_dijkstra_settles_exactly_ball(rn in random_net_strategy(20, 30), bound in 0.5f64..20.0) {
        let net = build(&rn);
        let oracle = floyd_warshall(&net);
        let mut e = DijkstraEngine::new(net.node_count());
        for s in net.nodes() {
            e.run_bounded(net.forward(), s, bound);
            for t in net.nodes() {
                let want = oracle[s.index()][t.index()];
                match e.distance(t) {
                    Some(d) => {
                        prop_assert!((d - want).abs() < 1e-9);
                        prop_assert!(d <= bound);
                    }
                    None => prop_assert!(want > bound,
                        "node {t} at distance {want} missing from ball of bound {bound}"),
                }
            }
        }
    }

    #[test]
    fn round_trip_is_symmetric_and_metric(rn in random_net_strategy(16, 24)) {
        let net = build(&rn);
        prop_assert!(is_strongly_connected(&net));
        let mut e = RoundTripEngine::for_network(&net);
        let oracle = floyd_warshall(&net);
        for u in net.nodes() {
            for v in net.nodes() {
                let rt = e.round_trip(&net, u, v).expect("strongly connected");
                let want = oracle[u.index()][v.index()] + oracle[v.index()][u.index()];
                prop_assert!((rt - want).abs() < 1e-9);
                let rev = e.round_trip(&net, v, u).unwrap();
                prop_assert!((rt - rev).abs() < 1e-9, "round trip must be symmetric");
                if u == v {
                    prop_assert!(rt == 0.0);
                } else {
                    prop_assert!(rt > 0.0);
                }
            }
        }
    }

    #[test]
    fn ball_equals_brute_force_ball(rn in random_net_strategy(16, 24), limit in 0.5f64..25.0) {
        let net = build(&rn);
        let oracle = floyd_warshall(&net);
        let mut e = RoundTripEngine::for_network(&net);
        for c in net.nodes() {
            let ball = e.ball(&net, c, limit);
            let got: std::collections::BTreeMap<NodeId, u64> =
                ball.iter().map(|&(v, d)| (v, d.to_bits())).collect();
            for v in net.nodes() {
                let rt = oracle[c.index()][v.index()] + oracle[v.index()][c.index()];
                if rt <= limit {
                    let d = got.get(&v).copied().map(f64::from_bits);
                    prop_assert!(d.is_some(), "missing {v} (rt {rt}) in ball({c}, {limit})");
                    prop_assert!((d.unwrap() - rt).abs() < 1e-9);
                } else {
                    prop_assert!(!got.contains_key(&v));
                }
            }
        }
    }

    #[test]
    fn triangle_inequality_on_shortest_paths(rn in random_net_strategy(14, 20)) {
        let net = build(&rn);
        let d = floyd_warshall(&net);
        let mut e = DijkstraEngine::new(net.node_count());
        for u in net.nodes() {
            e.run(net.forward(), u);
            for v in net.nodes() {
                for w in net.nodes() {
                    let duv = d[u.index()][v.index()];
                    let dvw = d[v.index()][w.index()];
                    let duw = d[u.index()][w.index()];
                    prop_assert!(duw <= duv + dvw + 1e-9);
                }
            }
        }
    }
}
