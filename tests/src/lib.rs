//! Integration-test crate for the NetClus workspace.
//!
//! The library target is intentionally empty; all content lives in
//! `tests/tests/*.rs` which exercise the public APIs of every workspace crate
//! together (GPS → map-match → index build → query → update pipelines).
