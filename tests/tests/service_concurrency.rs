//! Snapshot-consistency under concurrency: many query threads race a
//! writer publishing update batches; every answer must be internally
//! consistent with exactly one published epoch — never a torn mix of two.
//!
//! The check works because [`netclus_service::ServiceAnswer`] carries three
//! values read from the *same* pinned snapshot — `epoch`, `corpus_len`
//! and `site_count` — and the writer records the true `(corpus_len,
//! site_count)` pair of every epoch it publishes. The update batches are
//! constructed so that **every epoch has a distinct pair**; an answer
//! assembled from two different epochs (index of one, corpus of another)
//! would therefore produce a pair that was never published.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use netclus::prelude::*;
use netclus_datagen::{grid_city, GridCityConfig};
use netclus_roadnet::NodeId;
use netclus_service::{NetClusService, ServiceConfig, ServiceRequest, UpdateOp};
use netclus_trajectory::{TrajId, Trajectory, TrajectorySet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn build_service() -> NetClusService {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let city = grid_city(
        &GridCityConfig {
            rows: 8,
            cols: 8,
            spacing_m: 150.0,
            jitter: 0.1,
            removal_fraction: 0.0,
        },
        &mut rng,
    );
    let net = city.net;
    let mut trajs = TrajectorySet::for_network(&net);
    let n = net.node_count() as u32;
    for s in 0..40u32 {
        let a = (s * 7) % n;
        let b = (s * 13 + 5) % n;
        if a != b {
            // Straight-line node pairs are not paths; use per-node stubs.
            trajs.add(Trajectory::new(vec![NodeId(a)]));
            trajs.add(Trajectory::new(vec![NodeId(b)]));
        }
    }
    let sites: Vec<NodeId> = net.nodes().collect();
    let index = NetClusIndex::build(
        &net,
        &trajs,
        &sites,
        NetClusConfig {
            tau_min: 300.0,
            tau_max: 2_400.0,
            threads: 1,
            ..Default::default()
        },
    );
    NetClusService::start(
        net,
        trajs,
        index,
        ServiceConfig {
            workers: 4,
            queue_capacity: 256,
            max_batch: 8,
            cache_capacity: 512,
            cache_shards: 8,
            ..Default::default()
        },
    )
    .expect("start service")
}

#[test]
fn concurrent_queries_see_exactly_one_published_epoch() {
    let service = Arc::new(build_service());
    // epoch → (corpus_len, site_count); distinct per epoch by construction.
    let history: Arc<Mutex<HashMap<u64, (usize, usize)>>> = Arc::new(Mutex::new(HashMap::new()));
    {
        let snap = service.snapshot();
        history.lock().unwrap().insert(
            snap.epoch(),
            (snap.trajs().len(), snap.index().site_count()),
        );
    }
    let writer_done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Writer: publish 12 batches; each adds trajectories AND removes a
        // site, so both components change every epoch.
        {
            let service = Arc::clone(&service);
            let history = Arc::clone(&history);
            let writer_done = Arc::clone(&writer_done);
            scope.spawn(move || {
                for round in 0..12u32 {
                    let mut batch: Vec<UpdateOp> = (0..3)
                        .map(|i| {
                            UpdateOp::AddTrajectory(Trajectory::new(vec![NodeId(
                                (round * 3 + i) % 64,
                            )]))
                        })
                        .collect();
                    batch.push(UpdateOp::RemoveSite(NodeId(round)));
                    if round % 4 == 3 {
                        batch.push(UpdateOp::RemoveTrajectory(TrajId(round)));
                    }
                    let receipt = service.apply_updates(batch);
                    let snap = service.snapshot();
                    assert_eq!(snap.epoch(), receipt.epoch, "single writer");
                    history.lock().unwrap().insert(
                        snap.epoch(),
                        (snap.trajs().len(), snap.index().site_count()),
                    );
                    std::thread::sleep(Duration::from_millis(3));
                }
                writer_done.store(true, Ordering::Release);
            });
        }

        // Query threads: mixed parameters with heavy repetition (cache
        // food), racing the writer the whole time.
        let mut collectors = Vec::new();
        for t in 0..4u64 {
            let service = Arc::clone(&service);
            let writer_done = Arc::clone(&writer_done);
            collectors.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let mut answers = Vec::new();
                while !writer_done.load(Ordering::Acquire) || answers.len() < 50 {
                    let k = [1usize, 2, 3][rng.random_range(0usize..3)];
                    let tau = [400.0f64, 600.0, 900.0][rng.random_range(0usize..3)];
                    let req = if rng.random::<f64>() < 0.25 {
                        ServiceRequest::fm(TopsQuery::binary(k, tau), 20, 7)
                    } else {
                        ServiceRequest::greedy(TopsQuery::binary(k, tau))
                    };
                    if let Some(answer) = service.query_blocking(req) {
                        answers.push(answer);
                    }
                    if answers.len() > 5_000 {
                        break; // safety valve
                    }
                }
                answers
            }));
        }

        let history_now = history;
        let mut all = Vec::new();
        for c in collectors {
            all.extend(c.join().expect("query thread panicked"));
        }
        let history = history_now.lock().unwrap();

        // Sanity: distinct pairs per epoch, otherwise the check is vacuous.
        let mut pairs: Vec<_> = history.values().collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), history.len(), "epochs must be distinguishable");

        let mut violations = 0usize;
        let mut epochs_seen = std::collections::BTreeSet::new();
        for answer in &all {
            epochs_seen.insert(answer.epoch);
            match history.get(&answer.epoch) {
                Some(&(corpus, sites)) => {
                    if answer.corpus_len != corpus || answer.site_count != sites {
                        violations += 1;
                    }
                }
                None => violations += 1,
            }
        }
        assert_eq!(
            violations,
            0,
            "torn reads detected across {} answers",
            all.len()
        );
        assert!(all.len() >= 200, "too few answers: {}", all.len());
        assert!(
            epochs_seen.len() >= 2,
            "answers never spanned an epoch advance: {epochs_seen:?}"
        );
    });

    let report = service.metrics_report();
    assert_eq!(
        report.completed, report.submitted,
        "every admitted request completes"
    );
    assert!(report.cache.hits > 0, "repetitive mix must hit the cache");
    assert_eq!(report.epoch_advances, 12);
    service.shutdown();
}

#[test]
fn cache_is_invalidated_on_epoch_advance_under_load() {
    let service = build_service();
    let q = TopsQuery::binary(2, 600.0);
    let a = service.query_blocking(ServiceRequest::greedy(q)).unwrap();
    let b = service.query_blocking(ServiceRequest::greedy(q)).unwrap();
    assert!(Arc::ptr_eq(&a, &b), "same epoch answers must be shared");

    service.apply_updates(vec![UpdateOp::AddTrajectory(Trajectory::new(vec![
        NodeId(10),
    ]))]);
    let c = service.query_blocking(ServiceRequest::greedy(q)).unwrap();
    assert!(
        !Arc::ptr_eq(&a, &c),
        "stale answer served after epoch advance"
    );
    assert_eq!(c.epoch, 1);
    assert_eq!(c.corpus_len, a.corpus_len + 1);
    let stats = service.metrics_report().cache;
    assert!(
        stats.invalidated > 0,
        "epoch advance must purge stale entries"
    );
    service.shutdown();
}
