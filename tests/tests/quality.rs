//! Quality guarantees across the solver stack, checked on real (generated)
//! road-network coverage rather than mock tables:
//!
//! * Inc-Greedy ≥ (1 − 1/e) · OPT (paper Th. 3) and ≥ (k/n) · U(S) (Lem. 2);
//! * U is monotone submodular on actual coverage data (Th. 2);
//! * NetClus quality tracks Inc-Greedy (Sec. 8.4) and respects the
//!   Th. 7 lower bound; FM variants track their exact counterparts.

use netclus::prelude::*;
use netclus_datagen::{
    beijing_small, grid_city, GridCityConfig, WorkloadConfig, WorkloadGenerator,
};
use netclus_roadnet::GridIndex;
use netclus_trajectory::TrajectorySet;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn coverage_fixture(
    seed: u64,
    traj_count: usize,
    tau: f64,
) -> (netclus_roadnet::RoadNetwork, TrajectorySet, CoverageIndex) {
    let mut rng = StdRng::seed_from_u64(seed);
    let city = grid_city(
        &GridCityConfig {
            rows: 9,
            cols: 9,
            spacing_m: 200.0,
            ..Default::default()
        },
        &mut rng,
    );
    let grid = GridIndex::build(&city.net, 250.0);
    let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
    let routes = gen.generate(
        &WorkloadConfig {
            count: traj_count,
            ..Default::default()
        },
        &mut rng,
    );
    let trajs = TrajectorySet::from_trajectories(city.net.node_count(), routes);
    let sites: Vec<_> = city.net.nodes().collect();
    let coverage = CoverageIndex::build(&city.net, &trajs, &sites, tau, DetourModel::RoundTrip, 2);
    (city.net, trajs, coverage)
}

#[test]
fn greedy_respects_both_approximation_bounds() {
    let (_, _, coverage) = coverage_fixture(10, 30, 500.0);
    // Sub-sample 12 sites so the exact solver is instant.
    let sub_sites: Vec<_> = (0..coverage.site_count()).step_by(7).take(12).collect();
    // Build a sub-provider by re-building coverage over those nodes only.
    let nodes: Vec<_> = sub_sites.iter().map(|&i| coverage.sites()[i]).collect();
    let (net2, trajs2, _) = coverage_fixture(10, 30, 500.0);
    let sub = CoverageIndex::build(&net2, &trajs2, &nodes, 500.0, DetourModel::RoundTrip, 1);

    for k in [1, 2, 3, 4] {
        let greedy = inc_greedy(&sub, &GreedyConfig::binary(k, 500.0));
        let exact = exact_optimal(
            &sub,
            &ExactConfig {
                k,
                tau: 500.0,
                preference: PreferenceFunction::Binary,
                node_limit: None,
            },
        );
        assert!(exact.proved_optimal);
        let bound1 = (1.0 - 1.0 / std::f64::consts::E) * exact.solution.utility;
        assert!(
            greedy.utility >= bound1 - 1e-9,
            "k={k}: greedy {} < (1-1/e)·OPT {}",
            greedy.utility,
            bound1
        );
        // Lemma 2: U(Q_k) ≥ (k/n)·U(S).
        let all = inc_greedy(&sub, &GreedyConfig::binary(sub.site_count(), 500.0));
        let bound2 = k as f64 / sub.site_count() as f64 * all.utility;
        assert!(greedy.utility >= bound2 - 1e-9);
    }
}

#[test]
fn utility_is_monotone_submodular_on_real_coverage() {
    let (_, _, coverage) = coverage_fixture(21, 40, 600.0);
    let mut rng = StdRng::seed_from_u64(7);
    let n = coverage.site_count();

    let utility_of = |set: &[usize]| -> f64 {
        let mut best = vec![0.0f64; coverage.traj_id_bound()];
        for &i in set {
            for &tj in coverage.covered(i).ids {
                best[tj as usize] = 1.0;
            }
        }
        best.iter().sum()
    };

    for _ in 0..30 {
        // Random nested pair Q ⊂ R and a site s ∉ R.
        let mut r_set: Vec<usize> = (0..n).filter(|_| rng.random::<f64>() < 0.08).collect();
        if r_set.len() < 2 {
            continue;
        }
        let q_set: Vec<usize> = r_set[..r_set.len() / 2].to_vec();
        let s = loop {
            let c = rng.random_range(0..n);
            if !r_set.contains(&c) {
                break c;
            }
        };
        // Monotonicity.
        assert!(utility_of(&r_set) >= utility_of(&q_set) - 1e-9);
        // Submodularity (diminishing returns, paper Ineq. 3).
        let mut q_s = q_set.clone();
        q_s.push(s);
        let gain_q = utility_of(&q_s) - utility_of(&q_set);
        r_set.push(s);
        let with_s = utility_of(&r_set);
        r_set.pop();
        let gain_r = with_s - utility_of(&r_set);
        assert!(
            gain_q >= gain_r - 1e-9,
            "submodularity violated: gain_q {gain_q} < gain_r {gain_r}"
        );
    }
}

#[test]
fn fm_greedy_tracks_exact_greedy_at_paper_default_f() {
    let (_, _, coverage) = coverage_fixture(33, 80, 700.0);
    let exact = inc_greedy(&coverage, &GreedyConfig::binary(5, 700.0));
    let fm = fm_greedy(
        &coverage,
        &FmGreedyConfig {
            k: 5,
            copies: 30,
            seed: 77,
        },
    );
    // Paper Table 8 at f=30: ≈ 4.8% relative error. Allow 25% on this small
    // instance.
    assert!(
        fm.utility >= 0.75 * exact.utility,
        "fm {} vs exact {}",
        fm.utility,
        exact.utility
    );
}

#[test]
fn netclus_theorem7_lower_bound_holds() {
    // Th. 7 (binary, all nodes candidate sites): utility ≥ (k/η_p)·m.
    let s = beijing_small(55);
    // All nodes as sites for the theorem's premise.
    let sites: Vec<_> = s.net.nodes().collect();
    let index = NetClusIndex::build(
        &s.net,
        &s.trajectories,
        &sites,
        NetClusConfig {
            tau_min: 400.0,
            tau_max: 2_400.0,
            threads: 2,
            ..Default::default()
        },
    );
    let q = TopsQuery::binary(5, 1_200.0);
    let answer = index.query(&s.trajectories, &q);
    let eval = evaluate_sites(
        &s.net,
        &s.trajectories,
        &answer.solution.sites,
        q.tau,
        q.preference,
        DetourModel::RoundTrip,
    );
    let eta = index.instance(answer.instance).cluster_count() as f64;
    let m = s.trajectory_count() as f64;
    let bound = (q.k as f64 / eta).min(1.0) * m;
    assert!(
        eval.utility >= bound - 1e-9,
        "Th.7 violated: utility {} < (k/η)·m = {}",
        eval.utility,
        bound
    );
}

#[test]
fn netclus_estimated_utility_is_conservative() {
    // The solver's own utility (under d̂r) never exceeds the exact utility
    // of the same sites, because T̂C ⊆ TC for every preference that is
    // non-increasing in distance.
    let s = beijing_small(66);
    let index = NetClusIndex::build(
        &s.net,
        &s.trajectories,
        &s.sites,
        NetClusConfig {
            tau_min: 400.0,
            tau_max: 2_400.0,
            threads: 2,
            ..Default::default()
        },
    );
    for pref in [
        PreferenceFunction::Binary,
        PreferenceFunction::LinearDecay,
        PreferenceFunction::ConvexProbability { alpha: 2.0 },
    ] {
        let q = TopsQuery {
            k: 4,
            tau: 1_000.0,
            preference: pref,
        };
        let answer = index.query(&s.trajectories, &q);
        let eval = evaluate_sites(
            &s.net,
            &s.trajectories,
            &answer.solution.sites,
            q.tau,
            pref,
            DetourModel::RoundTrip,
        );
        assert!(
            answer.solution.utility <= eval.utility + 1e-9,
            "{pref:?}: estimate {} exceeds exact {}",
            answer.solution.utility,
            eval.utility
        );
    }
}
