//! Determinism: every stage of the pipeline — generation, clustering,
//! indexing, queries — must be bit-reproducible under a fixed seed, and
//! sensitive to seed changes. Reproducibility underpins every experiment
//! in EXPERIMENTS.md.

use netclus::prelude::*;
use netclus_datagen::{beijing_small, Scenario, ScenarioConfig};
use netclus_roadnet::NodeId;

fn build_index(s: &Scenario) -> NetClusIndex {
    NetClusIndex::build(
        &s.net,
        &s.trajectories,
        &s.sites,
        NetClusConfig {
            tau_min: 300.0,
            tau_max: 2_000.0,
            threads: 4,
            ..Default::default()
        },
    )
}

#[test]
fn whole_pipeline_is_reproducible() {
    let s1 = beijing_small(1234);
    let s2 = beijing_small(1234);
    assert_eq!(s1.net.node_count(), s2.net.node_count());
    assert_eq!(s1.net.edge_count(), s2.net.edge_count());
    assert_eq!(s1.sites, s2.sites);

    let i1 = build_index(&s1);
    let i2 = build_index(&s2);
    assert_eq!(i1.instances().len(), i2.instances().len());
    for (a, b) in i1.instances().iter().zip(i2.instances()) {
        assert_eq!(a.cluster_count(), b.cluster_count());
        let ca: Vec<NodeId> = a.clusters.iter().map(|c| c.center).collect();
        let cb: Vec<NodeId> = b.clusters.iter().map(|c| c.center).collect();
        assert_eq!(ca, cb, "cluster centers diverged");
    }

    for (k, tau) in [(1, 400.0), (5, 800.0), (10, 1500.0)] {
        let q = TopsQuery::binary(k, tau);
        let a1 = i1.query(&s1.trajectories, &q);
        let a2 = i2.query(&s2.trajectories, &q);
        assert_eq!(a1.solution.sites, a2.solution.sites);
        assert_eq!(a1.solution.utility, a2.solution.utility);
        // FM variant too (seeded).
        let f1 = i1.query_fm(&s1.trajectories, &q, &FmGreedyConfig::default());
        let f2 = i2.query_fm(&s2.trajectories, &q, &FmGreedyConfig::default());
        assert_eq!(f1.solution.sites, f2.solution.sites);
    }
}

#[test]
fn different_seeds_differ() {
    let s1 = beijing_small(1);
    let s2 = beijing_small(2);
    // Same shape...
    assert_eq!(s1.trajectory_count(), s2.trajectory_count());
    assert_eq!(s1.site_count(), s2.site_count());
    // ...different content (sites are a random 50-subset; astronomically
    // unlikely to coincide).
    assert_ne!(s1.sites, s2.sites);
}

#[test]
fn scenario_scale_knob_scales() {
    let small = netclus_datagen::beijing_like(&ScenarioConfig {
        seed: 9,
        scale: 0.01,
    });
    let larger = netclus_datagen::beijing_like(&ScenarioConfig {
        seed: 9,
        scale: 0.04,
    });
    assert!(larger.net.node_count() > small.net.node_count());
    assert!(larger.trajectory_count() > small.trajectory_count());
    assert_eq!(larger.trajectory_count(), 4 * small.trajectory_count());
}

#[test]
fn exact_solver_is_deterministic_on_scenario() {
    let s = beijing_small(321);
    let tau = 600.0;
    let coverage = CoverageIndex::build(
        &s.net,
        &s.trajectories,
        &s.sites,
        tau,
        DetourModel::RoundTrip,
        4,
    );
    let cfg = ExactConfig {
        k: 2,
        tau,
        preference: PreferenceFunction::Binary,
        node_limit: Some(2_000_000),
    };
    let a = exact_optimal(&coverage, &cfg);
    let b = exact_optimal(&coverage, &cfg);
    assert_eq!(a.solution.site_indices, b.solution.site_indices);
    assert_eq!(a.nodes_explored, b.nodes_explored);
}
