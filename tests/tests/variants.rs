//! Integration tests for the TOPS extensions (paper Sec. 7) over real
//! coverage data from generated cities.

use netclus::prelude::*;
use netclus_datagen::{
    assign_capacities_normal, assign_costs_normal, beijing_small, grid_city, GridCityConfig,
    WorkloadConfig, WorkloadGenerator,
};
use netclus_roadnet::GridIndex;
use netclus_trajectory::TrajectorySet;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    net: netclus_roadnet::RoadNetwork,
    trajs: TrajectorySet,
    coverage: CoverageIndex,
}

fn fixture(tau: f64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(99);
    let city = grid_city(
        &GridCityConfig {
            rows: 10,
            cols: 10,
            spacing_m: 200.0,
            ..Default::default()
        },
        &mut rng,
    );
    let grid = GridIndex::build(&city.net, 250.0);
    let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
    let routes = gen.generate(
        &WorkloadConfig {
            count: 50,
            ..Default::default()
        },
        &mut rng,
    );
    let trajs = TrajectorySet::from_trajectories(city.net.node_count(), routes);
    let sites: Vec<_> = city.net.nodes().collect();
    let coverage = CoverageIndex::build(&city.net, &trajs, &sites, tau, DetourModel::RoundTrip, 2);
    Fixture {
        net: city.net,
        trajs,
        coverage,
    }
}

#[test]
fn cost_constraint_reduces_to_tops_with_unit_costs() {
    let f = fixture(600.0);
    let k = 4usize;
    let costs = vec![1.0; f.coverage.site_count()];
    let cost_sol = tops_cost(
        &f.coverage,
        &CostConfig {
            budget: k as f64,
            tau: 600.0,
            preference: PreferenceFunction::Binary,
        },
        &costs,
    );
    let greedy_sol = inc_greedy(&f.coverage, &GreedyConfig::binary(k, 600.0));
    assert!((cost_sol.utility - greedy_sol.utility).abs() < 1e-9);
    assert!(cost_sol.site_indices.len() <= k);
}

#[test]
fn lower_cost_variance_means_fewer_sites() {
    // Fig. 7a logic: with σ = 0 every site costs 1.0 → exactly B sites fit;
    // with σ large, cheaper sites exist → more sites fit the same budget.
    let f = fixture(600.0);
    let n = f.coverage.site_count();
    let mut rng = StdRng::seed_from_u64(5);
    let budget = 5.0;
    let flat = vec![1.0; n];
    let sol_flat = tops_cost(
        &f.coverage,
        &CostConfig {
            budget,
            tau: 600.0,
            preference: PreferenceFunction::Binary,
        },
        &flat,
    );
    let varied = assign_costs_normal(n, 1.0, 0.9, 0.1, &mut rng);
    let sol_varied = tops_cost(
        &f.coverage,
        &CostConfig {
            budget,
            tau: 600.0,
            preference: PreferenceFunction::Binary,
        },
        &varied,
    );
    assert!(sol_flat.site_indices.len() <= 5);
    assert!(
        sol_varied.site_indices.len() >= sol_flat.site_indices.len(),
        "variance should admit at least as many sites ({} vs {})",
        sol_varied.site_indices.len(),
        sol_flat.site_indices.len()
    );
    // More sites under the same budget ⇒ at least as much utility here.
    assert!(sol_varied.utility >= sol_flat.utility * 0.9);
}

#[test]
fn capacity_sweep_matches_paper_trend() {
    // Fig. 7b: utility grows with mean capacity and converges to
    // unconstrained TOPS.
    let f = fixture(600.0);
    let n = f.coverage.site_count();
    let m = f.trajs.len() as f64;
    let unconstrained = inc_greedy(&f.coverage, &GreedyConfig::binary(5, 600.0));
    let mut rng = StdRng::seed_from_u64(11);
    let mut last = -1.0f64;
    for mean_pct in [0.02, 0.1, 0.5, 1.0] {
        let caps = assign_capacities_normal(n, m * mean_pct, m * mean_pct * 0.1, &mut rng);
        let sol = tops_capacity(
            &f.coverage,
            &CapacityConfig {
                k: 5,
                tau: 600.0,
                preference: PreferenceFunction::Binary,
            },
            &caps,
        );
        // Allow small non-monotonic wiggles from tie-breaking, but the
        // trend must rise.
        assert!(
            sol.utility >= last * 0.9,
            "utility collapsed at capacity {mean_pct}"
        );
        last = last.max(sol.utility);
        assert!(sol.utility <= unconstrained.utility + 1e-9);
    }
    assert!(
        last >= 0.95 * unconstrained.utility,
        "full capacity should recover TOPS ({last} vs {})",
        unconstrained.utility
    );
}

#[test]
fn existing_services_never_hurt_total_coverage() {
    let f = fixture(600.0);
    let plain = inc_greedy(&f.coverage, &GreedyConfig::binary(3, 600.0));
    // Deploy the plain solution as "existing", then ask for 3 more.
    let extra = inc_greedy_from(
        &f.coverage,
        &GreedyConfig::binary(3, 600.0),
        &plain.site_indices,
    );
    // The extra sites must be disjoint from the existing ones.
    for s in &extra.site_indices {
        assert!(!plain.site_indices.contains(s));
    }
    // Combined exact coverage ≥ plain coverage.
    let mut all_sites = plain.sites.clone();
    all_sites.extend_from_slice(&extra.sites);
    let eval_all = evaluate_sites(
        &f.net,
        &f.trajs,
        &all_sites,
        600.0,
        PreferenceFunction::Binary,
        DetourModel::RoundTrip,
    );
    let eval_plain = evaluate_sites(
        &f.net,
        &f.trajs,
        &plain.sites,
        600.0,
        PreferenceFunction::Binary,
        DetourModel::RoundTrip,
    );
    assert!(eval_all.utility >= eval_plain.utility);
    // Marginal accounting: existing coverage + reported extra gain equals
    // the combined coverage.
    assert!((eval_plain.utility + extra.utility - eval_all.utility).abs() < 1e-9);
}

#[test]
fn market_share_needs_more_sites_for_more_share() {
    let f = fixture(600.0);
    let mut last_sites = 0usize;
    for beta in [0.25, 0.5, 0.75, 1.0] {
        let r = tops_market_share(
            &f.coverage,
            &MarketShareConfig {
                beta,
                of_total: false,
            },
        );
        assert!(r.target_met, "β={beta} infeasible against coverable set");
        assert!(
            r.solution.site_indices.len() >= last_sites,
            "site count must grow with β"
        );
        last_sites = r.solution.site_indices.len();
    }
}

#[test]
fn tops2_convex_preference_orders_with_binary() {
    // TOPS2's convex ψ values are ≤ binary ψ pointwise, so the achieved
    // utility is bounded by the binary utility at the same (k, τ).
    let f = fixture(800.0);
    let binary = inc_greedy(&f.coverage, &GreedyConfig::binary(5, 800.0));
    let convex = inc_greedy(
        &f.coverage,
        &GreedyConfig {
            k: 5,
            tau: 800.0,
            preference: PreferenceFunction::ConvexProbability { alpha: 2.0 },
            lazy: false,
        },
    );
    assert!(convex.utility <= binary.utility + 1e-9);
    assert!(convex.utility > 0.0);
}

#[test]
fn combined_cost_and_existing_services() {
    // Paper Sec. 7.5: extensions compose. Deploy 2 existing sites, then run
    // TOPS-COST for the rest of the budget by pricing existing sites out.
    let f = fixture(600.0);
    let existing = inc_greedy(&f.coverage, &GreedyConfig::binary(2, 600.0));
    let mut rng = StdRng::seed_from_u64(3);
    let mut costs = assign_costs_normal(f.coverage.site_count(), 1.0, 0.3, 0.1, &mut rng);
    // Existing services consume no budget but cannot be re-bought: model by
    // pricing them above the budget and pre-raising utilities via a
    // combined run on the remaining sites.
    for &i in &existing.site_indices {
        costs[i] = f64::INFINITY.min(1e12);
    }
    let sol = tops_cost(
        &f.coverage,
        &CostConfig {
            budget: 3.0,
            tau: 600.0,
            preference: PreferenceFunction::Binary,
        },
        &costs,
    );
    for i in &sol.site_indices {
        assert!(!existing.site_indices.contains(i));
    }
}

#[test]
fn beijing_small_scenario_supports_exact_comparison() {
    // The Fig. 4 setting end-to-end: OPT ≥ greedy ≥ (1 − 1/e)·OPT.
    let s = beijing_small(42);
    let tau = 800.0;
    let coverage = CoverageIndex::build(
        &s.net,
        &s.trajectories,
        &s.sites,
        tau,
        DetourModel::RoundTrip,
        2,
    );
    let greedy = inc_greedy(&coverage, &GreedyConfig::binary(3, tau));
    let exact = exact_optimal(
        &coverage,
        &ExactConfig {
            k: 3,
            tau,
            preference: PreferenceFunction::Binary,
            node_limit: Some(5_000_000),
        },
    );
    assert!(exact.proved_optimal);
    assert!(exact.solution.utility >= greedy.utility - 1e-9);
    assert!(greedy.utility >= (1.0 - 1.0 / std::f64::consts::E) * exact.solution.utility - 1e-9);
}
