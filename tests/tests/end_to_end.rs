//! Full-pipeline integration test: synthetic city → routes → noisy GPS →
//! map matching → NetClus index → TOPS query (the complete flow of the
//! paper's Fig. 2).

use netclus::prelude::*;
use netclus_datagen::{
    grid_city, synthesize_gps, GridCityConfig, WorkloadConfig, WorkloadGenerator,
};
use netclus_roadnet::GridIndex;
use netclus_trajectory::{MapMatcher, TrajectorySet};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn gps_to_query_pipeline() {
    // 1. City and ground-truth routes.
    let mut rng = StdRng::seed_from_u64(2024);
    let city = grid_city(
        &GridCityConfig {
            rows: 14,
            cols: 14,
            spacing_m: 200.0,
            jitter: 0.15,
            removal_fraction: 0.05,
        },
        &mut rng,
    );
    let grid = GridIndex::build(&city.net, 250.0);
    let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
    let routes = gen.generate(
        &WorkloadConfig {
            count: 40,
            ..Default::default()
        },
        &mut rng,
    );
    assert_eq!(routes.len(), 40);

    // 2. Noisy GPS traces from the routes, then map-match them back.
    let matcher = MapMatcher {
        sigma: 20.0,
        candidate_radius: 150.0,
        ..Default::default()
    };
    let mut matched = TrajectorySet::for_network(&city.net);
    let mut exact_node_matches = 0usize;
    for route in &routes {
        let trace = synthesize_gps(&city.net, route, 12.0, 4.0, 12.0, &mut rng);
        let traj = matcher
            .match_trace(&city.net, &grid, &trace)
            .expect("matching a synthesized trace must succeed");
        if traj.nodes() == route.nodes() {
            exact_node_matches += 1;
        }
        matched.add(traj);
    }
    // With 12 m noise on a 200 m grid, most matches recover the route
    // exactly; all must at least be plausible (similar length).
    assert!(
        exact_node_matches * 10 >= routes.len() * 7,
        "only {exact_node_matches}/40 exact matches"
    );

    // 3. Offline index over the matched trajectories.
    let sites: Vec<_> = city.net.nodes().collect();
    let index = NetClusIndex::build(
        &city.net,
        &matched,
        &sites,
        NetClusConfig {
            tau_min: 400.0,
            tau_max: 4_000.0,
            threads: 2,
            ..Default::default()
        },
    );

    // 4. Online query + exact evaluation.
    let q = TopsQuery::binary(3, 800.0);
    let answer = index.query(&matched, &q);
    assert_eq!(answer.solution.sites.len(), 3);
    let eval = evaluate_sites(
        &city.net,
        &matched,
        &answer.solution.sites,
        q.tau,
        q.preference,
        DetourModel::RoundTrip,
    );
    // 3 sites at τ=800 m on a 2.6 km-wide city with hotspot traffic must
    // cover a decent share of the 40 trips.
    assert!(
        eval.covered >= 15,
        "NetClus covered only {}/40 trajectories",
        eval.covered
    );
    // The estimated utility can never exceed the exact one (d̂r ≥ dr for
    // binary coverage means estimated covers are subsets).
    assert!(answer.solution.utility <= eval.utility + 1e-9);
}

#[test]
fn netclus_vs_incgreedy_on_pipeline_data() {
    let mut rng = StdRng::seed_from_u64(77);
    let city = grid_city(
        &GridCityConfig {
            rows: 12,
            cols: 12,
            spacing_m: 200.0,
            ..Default::default()
        },
        &mut rng,
    );
    let grid = GridIndex::build(&city.net, 250.0);
    let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
    let routes = gen.generate(
        &WorkloadConfig {
            count: 60,
            ..Default::default()
        },
        &mut rng,
    );
    let trajs = TrajectorySet::from_trajectories(city.net.node_count(), routes);
    let sites: Vec<_> = city.net.nodes().collect();
    let tau = 600.0;

    // Exact Inc-Greedy baseline.
    let coverage = CoverageIndex::build(&city.net, &trajs, &sites, tau, DetourModel::RoundTrip, 2);
    let greedy = inc_greedy(&coverage, &GreedyConfig::binary(4, tau));

    // NetClus.
    let index = NetClusIndex::build(
        &city.net,
        &trajs,
        &sites,
        NetClusConfig {
            tau_min: 300.0,
            tau_max: 3_000.0,
            threads: 2,
            ..Default::default()
        },
    );
    let answer = index.query(&trajs, &TopsQuery::binary(4, tau));
    let nc_eval = evaluate_sites(
        &city.net,
        &trajs,
        &answer.solution.sites,
        tau,
        PreferenceFunction::Binary,
        DetourModel::RoundTrip,
    );

    // Paper Sec. 8.4: NetClus utilities within ~93% of Inc-Greedy on
    // average; we allow a generous 60% floor for this small instance.
    assert!(
        nc_eval.utility >= 0.6 * greedy.utility,
        "NetClus {} too far below greedy {}",
        nc_eval.utility,
        greedy.utility
    );
    // And NetClus must touch far fewer candidates than Inc-Greedy.
    assert!(answer.representatives < sites.len());
}
