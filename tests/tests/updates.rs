//! Dynamic-update integration tests: an incrementally updated index must be
//! observationally equivalent to a fresh rebuild (paper Sec. 6), at
//! scenario scale and through the query interface.

use netclus::prelude::*;
use netclus_datagen::{grid_city, GridCityConfig, WorkloadConfig, WorkloadGenerator};
use netclus_roadnet::{GridIndex, NodeId};
use netclus_trajectory::{TrajId, Trajectory, TrajectorySet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (
    netclus_roadnet::RoadNetwork,
    TrajectorySet,
    Vec<Trajectory>,
    Vec<NodeId>,
) {
    let mut rng = StdRng::seed_from_u64(404);
    let city = grid_city(
        &GridCityConfig {
            rows: 10,
            cols: 10,
            spacing_m: 180.0,
            ..Default::default()
        },
        &mut rng,
    );
    let grid = GridIndex::build(&city.net, 250.0);
    let mut gen = WorkloadGenerator::new(&city.net, &grid, &city.hotspots);
    let mut routes = gen.generate(
        &WorkloadConfig {
            count: 60,
            ..Default::default()
        },
        &mut rng,
    );
    let later = routes.split_off(40);
    let trajs = TrajectorySet::from_trajectories(city.net.node_count(), routes);
    let sites: Vec<_> = city.net.nodes().collect();
    (city.net, trajs, later, sites)
}

fn config() -> NetClusConfig {
    NetClusConfig {
        tau_min: 300.0,
        tau_max: 2_500.0,
        threads: 2,
        ..Default::default()
    }
}

/// Queries on the updated and rebuilt indexes must return identical
/// solutions for a spread of (k, τ).
fn assert_query_equivalent(a: &NetClusIndex, b: &NetClusIndex, trajs: &TrajectorySet) {
    for (k, tau) in [(1, 400.0), (3, 800.0), (5, 1600.0)] {
        let qa = a.query(trajs, &TopsQuery::binary(k, tau));
        let qb = b.query(trajs, &TopsQuery::binary(k, tau));
        assert_eq!(
            qa.solution.sites, qb.solution.sites,
            "k={k} τ={tau}: site sets diverged"
        );
        assert!((qa.solution.utility - qb.solution.utility).abs() < 1e-9);
    }
}

#[test]
fn trajectory_additions_match_rebuild_through_queries() {
    let (net, mut trajs, later, sites) = setup();
    let mut index = NetClusIndex::build(&net, &trajs, &sites, config());
    for t in later {
        let id = trajs.add(t.clone());
        index.add_trajectory(id, &t);
    }
    let rebuilt = NetClusIndex::build(&net, &trajs, &sites, config());
    assert_query_equivalent(&index, &rebuilt, &trajs);
}

#[test]
fn trajectory_removals_match_rebuild_through_queries() {
    let (net, mut trajs, _, sites) = setup();
    let mut index = NetClusIndex::build(&net, &trajs, &sites, config());
    for id in [0u32, 7, 13, 22, 39] {
        trajs.remove(TrajId(id));
        index.remove_trajectory(TrajId(id));
    }
    let rebuilt = NetClusIndex::build(&net, &trajs, &sites, config());
    assert_query_equivalent(&index, &rebuilt, &trajs);
}

#[test]
fn site_churn_matches_rebuild_through_queries() {
    let (net, trajs, _, all_sites) = setup();
    // Start with half the sites, add/remove a batch.
    let initial: Vec<NodeId> = all_sites.iter().copied().step_by(2).collect();
    let mut index = NetClusIndex::build(&net, &trajs, &initial, config());
    let mut current: Vec<NodeId> = initial.clone();
    for &v in all_sites.iter().skip(1).step_by(7) {
        if index.add_site(&trajs, v) {
            current.push(v);
        }
    }
    for &v in initial.iter().step_by(5) {
        if index.remove_site(&trajs, v) {
            current.retain(|&s| s != v);
        }
    }
    current.sort_unstable();
    let rebuilt = NetClusIndex::build(&net, &trajs, &current, config());
    assert_eq!(index.site_count(), current.len());
    assert_query_equivalent(&index, &rebuilt, &trajs);
}

#[test]
fn interleaved_updates_stay_consistent() {
    let (net, mut trajs, later, sites) = setup();
    let mut index = NetClusIndex::build(&net, &trajs, &sites, config());
    // Interleave trajectory adds, removes, and site churn.
    let mut later_iter = later.into_iter();
    for step in 0..12 {
        match step % 3 {
            0 => {
                if let Some(t) = later_iter.next() {
                    let id = trajs.add(t.clone());
                    index.add_trajectory(id, &t);
                }
            }
            1 => {
                let id = TrajId(step as u32);
                if trajs.remove(id).is_some() {
                    index.remove_trajectory(id);
                }
            }
            _ => {
                let v = sites[step * 3 % sites.len()];
                index.remove_site(&trajs, v);
                index.add_site(&trajs, v);
            }
        }
    }
    // Site flags must be back to the full set.
    assert_eq!(index.site_count(), sites.len());
    let rebuilt = NetClusIndex::build(&net, &trajs, &sites, config());
    assert_query_equivalent(&index, &rebuilt, &trajs);
}

#[test]
fn update_cost_is_far_below_rebuild_cost() {
    // Table 10's rationale: absorbing a batch of trajectories must be much
    // cheaper than rebuilding the index.
    let (net, mut trajs, later, sites) = setup();
    let mut index = NetClusIndex::build(&net, &trajs, &sites, config());
    let rebuild_start = std::time::Instant::now();
    let _rebuilt = NetClusIndex::build(&net, &trajs, &sites, config());
    let rebuild_time = rebuild_start.elapsed();

    let update_start = std::time::Instant::now();
    let mut batch = Vec::new();
    for t in later {
        let id = trajs.add(t.clone());
        batch.push((id, t));
    }
    index.add_trajectories(batch.iter().map(|(id, t)| (*id, t)));
    let update_time = update_start.elapsed();
    assert!(
        update_time < rebuild_time,
        "update {update_time:?} not faster than rebuild {rebuild_time:?}"
    );
}
